#!/usr/bin/env python3
"""A UAV mission scenario: hand-built MC² workload with a sensor storm.

The paper's motivating example (Sec. 1) is an unmanned aerial vehicle:
flight-surface control is safety-critical while long-term
decision-making is mission-critical.  This example builds such a system
explicitly rather than generating it:

* level A (per-CPU tables): attitude control and motor commutation;
* level B (partitioned EDF): sensor fusion and altitude hold;
* level C (global GEL-v): path planning, vision, telemetry, mapping;
* level D (best effort): logging.

Mid-flight a "sensor storm" makes the perception-related jobs overrun
their level-C provisioning for 800 ms.  We compare flying through it
with no recovery mechanism vs. the SIMPLE monitor, reporting the
mission-task response times an operator would care about.

Run:  python examples/uav_mission.py
"""

from repro import (
    CriticalityLevel,
    KernelConfig,
    MC2Kernel,
    NullMonitor,
    OverloadWindow,
    SimpleMonitor,
    Task,
    TaskSet,
    WindowedOverloadBehavior,
    assign_tolerances,
    check_level_c,
)
from repro.util.timeunits import from_ms

L = CriticalityLevel


def build_uav_taskset() -> TaskSet:
    """Two CPUs; times in seconds (periods in the 5-200 ms range)."""

    def pw(c_ms):
        c = from_ms(c_ms)
        return {L.A: 20 * c, L.B: 10 * c, L.C: c}

    def pw_b(c_ms):
        c = from_ms(c_ms)
        return {L.B: 10 * c, L.C: c}

    def pw_c(c_ms):
        c = from_ms(c_ms)
        return {L.B: 10 * c, L.C: c}

    tasks = [
        # Level A: one flight-critical loop per CPU.
        Task(0, L.A, from_ms(5), pw(0.12), cpu=0, name="attitude"),
        Task(1, L.A, from_ms(10), pw(0.25), cpu=1, name="motors"),
        # Level B: safety-relevant but schedulable by EDF.
        Task(2, L.B, from_ms(20), pw_b(0.5), cpu=0, name="fusion"),
        Task(3, L.B, from_ms(40), pw_b(1.0), cpu=1, name="althold"),
        # Level C: the mission software (global GEL with G-FL-ish PPs).
        Task(4, L.C, from_ms(50), pw_c(9.0), relative_pp=from_ms(45), name="planner"),
        Task(5, L.C, from_ms(40), pw_c(10.0), relative_pp=from_ms(35), name="vision"),
        Task(6, L.C, from_ms(100), pw_c(22.0), relative_pp=from_ms(90), name="mapping"),
        Task(7, L.C, from_ms(200), pw_c(18.0), relative_pp=from_ms(190), name="telemetry"),
        # Level D: background logging, no guarantees.
        Task(8, L.D, from_ms(100), {L.D: from_ms(3.0)}, name="logger"),
    ]
    return TaskSet(tasks, m=2)


def fly(ts, monitor_factory, storm, until=8.0):
    kernel = MC2Kernel(ts, behavior=storm, config=KernelConfig())
    monitor = monitor_factory(kernel)
    kernel.attach_monitor(monitor)
    trace = kernel.run(until)
    return trace, monitor


def report(tag, ts, trace, monitor):
    print(f"{tag}")
    for t in ts.level(L.C):
        rs = [j.response_time for j in trace.jobs_of(t.task_id)
              if j.completion is not None]
        print(f"  {t.label:<10} max response {max(rs) * 1e3:7.2f} ms "
              f"(period {t.period * 1e3:5.1f} ms)")
    print(f"  tolerance misses: {monitor.miss_count}; "
          f"recovery episodes: {len(monitor.episodes)}")
    if monitor.episodes:
        ep = monitor.episodes[-1]
        print(f"  last episode: [{ep.start:.3f}, {ep.end if ep.end else '...'}] s")
    print()


def main() -> None:
    ts = assign_tolerances(build_uav_taskset())
    print("UAV mission workload:")
    print(check_level_c(ts).explain())
    print()

    # The sensor storm: 800 ms during which every job (A, B and C) runs
    # at its level-B provisioning — perception outputs flood the system.
    storm = WindowedOverloadBehavior(
        [OverloadWindow(2.0, 2.8)], overload_level=L.B
    )

    trace_null, mon_null = fly(ts, NullMonitor, storm)
    report("Without recovery (NullMonitor):", ts, trace_null, mon_null)

    trace_rec, mon_rec = fly(ts, lambda k: SimpleMonitor(k, s=0.6), storm)
    report("With SIMPLE(s=0.6) recovery:", ts, trace_rec, mon_rec)

    worst_null = max(trace_null.response_times(L.C))
    worst_rec = max(trace_rec.response_times(L.C))
    print(f"Worst mission-task response: {worst_null * 1e3:.1f} ms without "
          f"recovery vs {worst_rec * 1e3:.1f} ms with recovery.")
    if mon_rec.episodes and mon_rec.episodes[-1].end is not None:
        diss = mon_rec.episodes[-1].end - 2.8
        print(f"Dissipation after the storm: {max(0.0, diss) * 1e3:.1f} ms.")


if __name__ == "__main__":
    main()
