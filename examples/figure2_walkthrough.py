#!/usr/bin/env python3
"""Walk through the paper's Fig. 2 and Fig. 3 example schedules.

Renders ASCII schedules for the reconstructed 2-CPU example systems
(DESIGN.md, substitution 5) in all three variants of Fig. 2:

  (a) no overload           — bounded response times;
  (b) overload at t = 12    — responses permanently degraded (zero slack);
  (c) overload + recovery   — SIMPLE with s = 0.5 restores normality;

plus Fig. 3's single-task bottleneck, and checks the virtual-time
arithmetic the paper states in prose (v(25) = 22, tau1's stretched
releases).

Run:  python examples/figure2_walkthrough.py [--svg DIR]

With ``--svg DIR`` the five schedules are additionally written as SVG
diagrams (repro.viz) into DIR.
"""

import argparse
import pathlib

from repro import SpeedProfile
from repro.viz import svg_gantt
from repro.experiments.examples_fig2 import (
    figure2_taskset,
    figure3_taskset,
    run_example,
)
from repro.model.task import CriticalityLevel


def show(title, run, ts, until):
    print(f"--- {title} " + "-" * max(0, 60 - len(title)))
    print(run.trace.render_ascii(list(ts), until, resolution=1.0))
    if run.trace.speed_changes:
        changes = ", ".join(f"s={s:g}@{t:g}" for t, s in run.trace.speed_changes)
        print(f"    speed changes: {changes}")
    print()


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--svg", metavar="DIR", default=None,
                    help="also write the schedules as SVG diagrams into DIR")
    args = ap.parse_args()
    svg_dir = pathlib.Path(args.svg) if args.svg else None
    if svg_dir:
        svg_dir.mkdir(parents=True, exist_ok=True)

    def save_svg(name, run, ts, until, title):
        if svg_dir:
            path = svg_dir / f"{name}.svg"
            path.write_text(svg_gantt(run.trace, list(ts), until, title=title))
            print(f"    wrote {path}")

    print("Virtual-time arithmetic (paper Sec. 3 worked example):")
    prof = SpeedProfile.from_segments(0.0, [(19.0, 0.5), (29.0, 1.0)])
    print(f"  with s = 0.5 on [19, 29): v(25) = {prof.v(25.0):g}   (paper: 22)")
    print(f"  tau1 (T=4, Y=3): v(r_1,5)=20 -> release at {prof.inverse(20.0):g} "
          "(paper: 21)")
    print(f"                   PP at v=23 -> actual {prof.inverse(23.0):g} (paper: 27)")
    print(f"                   r_1,6 at v=24 -> actual {prof.inverse(24.0):g} (paper: 29)")
    print()

    ts2 = figure2_taskset()
    until = 48.0
    a = run_example(ts2, overloaded=False, until=until)
    b = run_example(ts2, overloaded=True, until=until)
    c = run_example(ts2, overloaded=True, recovery_speed=0.5, until=until)
    show("Fig. 2(a): no overload", a, ts2, until)
    save_svg("fig2a", a, ts2, until, "Fig. 2(a): no overload")
    show("Fig. 2(b): overload at t=12, no recovery", b, ts2, until)
    save_svg("fig2b", b, ts2, until, "Fig. 2(b): overload, no recovery")
    show("Fig. 2(c): overload + SIMPLE(s=0.5) recovery", c, ts2, until)
    save_svg("fig2c", c, ts2, until, "Fig. 2(c): overload + SIMPLE(s=0.5)")

    for name, run in (("(a)", a), ("(b)", b), ("(c)", c)):
        j = run.trace.job(2, 6)
        print(f"  {name} tau2,6: released {j.release:5.1f}, completes "
              f"{j.completion:5.1f}, response {j.response_time:4.1f}")
    print("  (paper: (a) 36/43/7, (b) 36/46/10, (c) 41/47/6)")
    print()

    ts3 = figure3_taskset()
    b3 = run_example(ts3, overloaded=True, until=60.0)
    c3 = run_example(ts3, overloaded=True, recovery_speed=0.5, until=60.0)
    show("Fig. 3(b): single high-utilization task, overload, no recovery",
         b3, ts3, 60.0)
    save_svg("fig3b", b3, ts3, 60.0, "Fig. 3(b): overload, no recovery")
    show("Fig. 3 + recovery: virtual time creates per-task slack", c3, ts3, 60.0)
    save_svg("fig3c", c3, ts3, 60.0, "Fig. 3 + SIMPLE(s=0.5) recovery")

    def tail_lateness(run):
        y = 5.0
        xs = [j.completion - (j.release + y)
              for j in run.trace.completed(CriticalityLevel.C)
              if j.release > 36.0]
        return max(xs) if xs else float("nan")

    print(f"  Fig. 3(b) late-schedule worst lateness: {tail_lateness(b3):.1f} "
          "(stuck above the normal pattern's 3.0)")
    print(f"  Fig. 3(c) late-schedule worst lateness: {tail_lateness(c3):.1f} "
          "(back to the normal pattern)")


if __name__ == "__main__":
    main()
