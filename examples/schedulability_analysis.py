#!/usr/bin/env python3
"""Analysis-only tour: GEL bounds, G-FL vs G-EDF, and dissipation bounds.

No simulation here — this example exercises the analytical side of the
library, the part a system designer would use at provisioning time:

1. response-time bounds for a generated level-C workload under G-FL and
   under G-EDF PPs, showing why the paper uses G-FL ("provides better
   response time bounds than G-EDF [9]");
2. how the bounds react to level-A/B interference (the supply model);
3. analytical dissipation bounds vs. the recovery speed s, the knob the
   paper sweeps in Fig. 6.

Run:  python examples/schedulability_analysis.py
"""

from repro import (
    CriticalityLevel,
    SupplyModel,
    check_level_c,
    dissipation_bound,
    gedf_relative_pps,
    gel_response_bounds,
    generate_taskset,
    gfl_relative_pps,
)

L = CriticalityLevel


def main() -> None:
    ts = generate_taskset(seed=2015)
    cs = ts.level(L.C)
    print(f"Workload: {len(cs)} level-C tasks on m={ts.m} CPUs, "
          f"U_C={ts.utilization(L.C, level=L.C):.2f}")
    print(check_level_c(ts).explain())
    print()

    # --- 1. G-FL vs G-EDF --------------------------------------------
    gfl = gel_response_bounds(ts, pps=gfl_relative_pps(ts.tasks, ts.m))
    gedf = gel_response_bounds(ts, pps=gedf_relative_pps(ts.tasks))
    lateness_gfl = max(gfl.absolute[t.task_id] - t.period for t in cs)
    lateness_gedf = max(gedf.absolute[t.task_id] - t.period for t in cs)
    print("Relative priority points: G-FL vs G-EDF")
    print(f"  max lateness bound under G-FL : {lateness_gfl * 1e3:8.2f} ms")
    print(f"  max lateness bound under G-EDF: {lateness_gedf * 1e3:8.2f} ms")
    print(f"  G-FL improvement: {(1 - lateness_gfl / lateness_gedf) * 100:.1f}%")
    print()

    # --- 2. Sensitivity to A/B interference --------------------------
    print("Effect of level-A/B interference on the shared delay term x:")
    own = gel_response_bounds(ts)
    clean = gel_response_bounds(ts, supply=SupplyModel.unrestricted(ts.m))
    print(f"  with the task set's A/B partitions: x = {own.x * 1e3:7.2f} ms")
    print(f"  pure level-C platform             : x = {clean.x * 1e3:7.2f} ms")
    print()

    # --- 3. Dissipation bounds over s --------------------------------
    print("Analytical dissipation bounds (SHORT-style 500 ms overload, 10x):")
    print(f"  {'s':>5} {'drain rate':>12} {'backlog':>10} {'bound':>10}")
    for s in (0.2, 0.4, 0.6, 0.8, 1.0):
        b = dissipation_bound(ts, overload_length=0.5, speed=s)
        print(f"  {s:5.1f} {b.drain_rate:12.3f} {b.backlog:9.2f}s "
              f"{b.bound:9.2f}s")
    print()
    print("Smaller s buys drain rate (recovery speed) at the cost of")
    print("throttled releases — exactly the Fig. 6 trade-off.")


if __name__ == "__main__":
    main()
