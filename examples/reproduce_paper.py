#!/usr/bin/env python3
"""Full-scale reproduction of the paper's evaluation (Sec. 5).

Runs every figure at the paper's scale — 20 generated task sets on a
4-CPU platform, SIMPLE s and ADAPTIVE a swept from 0.2 to 1.0 in 0.2
steps, scenarios SHORT/LONG/DOUBLE — and prints the series each figure
plots, with 95 % confidence intervals.  The results recorded in
EXPERIMENTS.md come from this script.

Usage:
    python examples/reproduce_paper.py                 # everything
    python examples/reproduce_paper.py --figure 6      # one figure
    python examples/reproduce_paper.py --tasksets 5    # quicker pass
    python examples/reproduce_paper.py --jobs 8        # parallel sweeps
    python examples/reproduce_paper.py --cache-dir .repro-cache  # warm re-runs
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.examples_fig2 import (
    figure2_taskset,
    figure3_taskset,
    run_example,
)
from repro.experiments.figures import (
    DEFAULT_SWEEP_VALUES,
    adaptive_sweep,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.overhead import measure_overheads
from repro.model.task import CriticalityLevel as L
from repro.runtime.executor import make_executor
from repro.runtime.spec import TaskSetSpec
from repro.workload.generator import generate_tasksets, taskset_seeds
from repro.workload.scenarios import standard_scenarios


def reproduce_fig2_fig3() -> None:
    print("=" * 72)
    print("Figs. 2-3: example schedules (reconstruction; see DESIGN.md #5)")
    print("=" * 72)
    ts2 = figure2_taskset()
    runs = {
        "(a) no overload": run_example(ts2, overloaded=False, until=72.0),
        "(b) overload": run_example(ts2, overloaded=True, until=72.0),
        "(c) overload+recovery s=0.5": run_example(
            ts2, overloaded=True, recovery_speed=0.5, until=72.0
        ),
    }
    for tag, run in runs.items():
        j = run.trace.job(2, 6)
        extra = ""
        if run.trace.speed_changes:
            t0, s0 = run.trace.speed_changes[0]
            t1, _ = run.trace.speed_changes[-1]
            extra = f"; clock: s={s0:g} at {t0:g}, normal at {t1:g}"
        print(f"  Fig. 2{tag}: tau2,6 r={j.release:g} c={j.completion:g} "
              f"R={j.response_time:g}{extra}")
    print("  paper waypoints: (a) 36/43/7, (b) 36/46/10, (c) 41/47/6; "
          "clock s=0.5 on [19,29)")

    ts3 = figure3_taskset()
    b3 = run_example(ts3, overloaded=True, until=240.0)
    c3 = run_example(ts3, overloaded=True, recovery_speed=0.5, until=240.0)

    def tail(run):
        xs = [j.completion - (j.release + 5.0)
              for j in run.trace.completed(L.C) if j.release > 120.0]
        return (min(xs), max(xs))

    print(f"  Fig. 3(b): tail lateness range {tail(b3)} (normal pattern <= 3: "
          "permanently degraded)")
    print(f"  Fig. 3(c): tail lateness range {tail(c3)} (recovered)")
    print()


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--figure", choices=["2", "3", "6", "7", "8", "9", "all"],
                    default="all")
    ap.add_argument("--tasksets", type=int, default=20,
                    help="number of generated task sets (paper: 20)")
    ap.add_argument("--seed", type=int, default=2015)
    ap.add_argument("--json-dir", default=None,
                    help="also archive each figure as JSON into this directory")
    ap.add_argument("--jobs", type=int, default=1,
                    help="worker processes for the Fig. 6-8 sweeps")
    ap.add_argument("--cache-dir", default=None,
                    help="content-addressed result cache (re-runs only "
                         "simulate cells whose spec changed)")
    args = ap.parse_args()

    t0 = time.time()
    if args.figure in ("2", "3", "all"):
        reproduce_fig2_fig3()
        if args.figure in ("2", "3"):
            return 0

    # The sweeps ship seed-carrying specs to the executor (workers
    # regenerate task sets on their side); Fig. 9 needs the materialized
    # sets in-process to time the scheduler.
    refs = [TaskSetSpec.generated(seed)
            for seed in taskset_seeds(args.tasksets, args.seed)]
    executor = make_executor(jobs=args.jobs, cache_dir=args.cache_dir)
    scenarios = standard_scenarios()
    archive = {}

    if args.figure in ("6", "all"):
        print()
        print(f"Running the SIMPLE sweep ({args.tasksets} task sets, "
              f"jobs={args.jobs})...")
        fig = figure6(refs, s_values=DEFAULT_SWEEP_VALUES, scenarios=scenarios,
                      executor=executor)
        archive["fig6"] = fig
        print(fig.render(unit_scale=1e3, unit="ms"))

    if args.figure in ("7", "8", "all"):
        print()
        print("Running the ADAPTIVE sweep (shared by Figs. 7 and 8)...")
        sweep = adaptive_sweep(refs, a_values=DEFAULT_SWEEP_VALUES,
                               scenarios=scenarios, executor=executor)
        if args.figure in ("7", "all"):
            print()
            fig = figure7(sweep)
            archive["fig7"] = fig
            print(fig.render(unit_scale=1e3, unit="ms"))
        if args.figure in ("8", "all"):
            print()
            fig = figure8(sweep)
            archive["fig8"] = fig
            print(fig.render(unit_scale=1.0, unit="virtual speed"))

    if args.figure in ("9", "all"):
        print()
        print("Measuring scheduler overheads (Fig. 9; always serial)...")
        tasksets = generate_tasksets(min(5, args.tasksets), base_seed=args.seed)
        res = measure_overheads(tasksets, horizon=3.0,
                                trim_max_quantile=0.999)
        print(res.render())

    if args.json_dir and archive:
        import pathlib

        from repro.io.results_json import figure_to_json

        out_dir = pathlib.Path(args.json_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name, fig in archive.items():
            (out_dir / f"{name}.json").write_text(figure_to_json(fig) + "\n")
        print(f"archived {sorted(archive)} to {out_dir}/")

    print()
    stats = executor.total
    if stats.cells_total:
        print(f"Executor: {stats.cells_total} cells, "
              f"{stats.cells_simulated} simulated, {stats.cache_hits} from cache")
    print(f"Total wall time: {time.time() - t0:.1f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
