#!/usr/bin/env python3
"""Writing your own monitor policy (the plugin surface).

The monitor base class carries all of Algorithm 2 — pending-set
tracking, miss detection, candidate idle instants, Theorem-1 exit — so a
custom policy only decides *how hard to slow down* (``handle_miss``) and
optionally *how to restore* (``_exit_recovery``).  This example builds a
simple additive-decrease policy:

    every miss outside recovery slows the clock to ``s``;
    every further miss *inside* recovery subtracts ``delta`` (down to a
    floor), so a persistent overload provokes an increasingly firm
    response while a one-off miss costs only the initial slowdown.

It then **registers** the policy in the monitor registry — the plugin
surface of :mod:`repro.runtime.registry` — so plain
``MonitorSpec("additive", ...)`` specs work everywhere a built-in kind
does (``run_overload_experiment``, figure sweeps, the CLI's
``--monitor additive:0.8:0.1``, the result cache) without editing any
core file.  Finally it races the custom policy against SIMPLE on the
same workload through the standard runner.

Run:  python examples/custom_monitor.py
"""

from repro import (
    SHORT,
    CompletionReport,
    Monitor,
    MonitorSpec,
    generate_taskset,
    run_overload_experiment,
)
from repro.runtime.registry import MonitorKind, monitor_registry


class AdditiveDecreaseMonitor(Monitor):
    """Slow to ``s`` on the first miss, then ``-delta`` per further miss."""

    def __init__(self, controller, s=0.8, delta=0.1, floor=0.3):
        super().__init__(controller)
        self.s, self.delta, self.floor = s, delta, floor
        self.current = 1.0

    def handle_miss(self, report: CompletionReport) -> None:
        if not self.recovery_mode:
            self.current = self.s
            self._change_speed(self.current, report.comp_time)
            self._open_episode(report)
            self.init_recovery(report.comp_time, report.queue_empty)
        else:
            lower = max(self.floor, self.current - self.delta)
            if lower < self.current:
                self.current = lower
                self._change_speed(lower, report.comp_time)

    def _exit_recovery(self, report: CompletionReport) -> None:
        self.current = 1.0
        super()._exit_recovery(report)


# ----------------------------------------------------------------------
# The plugin registration: one entry supplies builder AND label, so
# MonitorSpec("additive", s, delta) is a first-class monitor kind.
# ``param`` is the initial slowdown s, ``extra`` the per-miss decrement
# delta (default 0.1); the floor stays a policy constant here.
# ----------------------------------------------------------------------
FLOOR = 0.3

monitor_registry.register(
    "additive",
    MonitorKind(
        kind="additive",
        build=lambda kernel, param, extra: AdditiveDecreaseMonitor(
            kernel, s=param, delta=extra, floor=FLOOR
        ),
        label=lambda param, extra: f"ADDITIVE(s={param:g},-{extra:g},>={FLOOR:g})",
        default_extra=0.1,
    ),
    override=True,  # keep the example re-runnable in one interpreter
)


def main() -> None:
    ts = generate_taskset(seed=2015)
    print("Custom AdditiveDecreaseMonitor vs SIMPLE under SHORT:\n")
    for spec in (MonitorSpec("simple", 0.6), MonitorSpec("additive", 0.8, 0.1)):
        out = run_overload_experiment(ts, SHORT, spec, horizon=20.0,
                                      keep_artifacts=True)
        r, monitor = out.result, out.monitor
        speeds = sorted({round(s, 2) for _, s in monitor.speed_requests if s < 1.0})
        print(f"  {r.monitor}")
        print(f"    dissipation: {r.dissipation * 1e3:8.1f} ms")
        print(f"    speeds used: {speeds}")
        print(f"    misses: {r.miss_count}, episodes: {r.episodes}")
        print()
    print("The additive policy starts gently (0.8) and firms up only if")
    print("misses keep arriving — a middle ground between SIMPLE's single")
    print("choice and ADAPTIVE's immediate drastic response.  Because it")
    print("is registered, the same spec string works in sweeps and the")
    print("CLI: repro-mc2 simulate --monitor additive:0.8:0.1 (after an")
    print("import of this module registers the kind).")


if __name__ == "__main__":
    main()
