#!/usr/bin/env python3
"""Writing your own monitor policy (the plugin surface).

The monitor base class carries all of Algorithm 2 — pending-set
tracking, miss detection, candidate idle instants, Theorem-1 exit — so a
custom policy only decides *how hard to slow down* (``handle_miss``) and
optionally *how to restore* (``_exit_recovery``).  This example builds a
simple additive-decrease policy:

    every miss outside recovery slows the clock to ``s``;
    every further miss *inside* recovery subtracts ``delta`` (down to a
    floor), so a persistent overload provokes an increasingly firm
    response while a one-off miss costs only the initial slowdown.

It then races the custom policy against SIMPLE on the same workload.

Run:  python examples/custom_monitor.py
"""

from repro import (
    SHORT,
    CompletionReport,
    Monitor,
    MC2Kernel,
    generate_taskset,
)
from repro.sim.budgets import BudgetEnforcedBehavior


class AdditiveDecreaseMonitor(Monitor):
    """Slow to ``s`` on the first miss, then ``-delta`` per further miss."""

    def __init__(self, controller, s=0.8, delta=0.1, floor=0.3):
        super().__init__(controller)
        self.s, self.delta, self.floor = s, delta, floor
        self.current = 1.0

    def handle_miss(self, report: CompletionReport) -> None:
        if not self.recovery_mode:
            self.current = self.s
            self._change_speed(self.current, report.comp_time)
            self._open_episode(report)
            self.init_recovery(report.comp_time, report.queue_empty)
        else:
            lower = max(self.floor, self.current - self.delta)
            if lower < self.current:
                self.current = lower
                self._change_speed(lower, report.comp_time)

    def _exit_recovery(self, report: CompletionReport) -> None:
        self.current = 1.0
        super()._exit_recovery(report)


def run(ts, monitor_factory, horizon=20.0):
    behavior = BudgetEnforcedBehavior(SHORT.behavior(), enforce_c=True)
    kernel = MC2Kernel(ts, behavior=behavior)
    monitor = monitor_factory(kernel)
    kernel.attach_monitor(monitor)
    kernel.run(horizon)
    ep = monitor.episodes[-1] if monitor.episodes else None
    diss = max(0.0, ep.end - SHORT.last_overload_end) if ep and ep.end else None
    return monitor, diss


def main() -> None:
    from repro import SimpleMonitor

    ts = generate_taskset(seed=2015)
    print("Custom AdditiveDecreaseMonitor vs SIMPLE under SHORT:\n")
    for name, factory in (
        ("SIMPLE(s=0.6)", lambda k: SimpleMonitor(k, s=0.6)),
        ("AdditiveDecrease(0.8, -0.1, >=0.3)",
         lambda k: AdditiveDecreaseMonitor(k, s=0.8, delta=0.1, floor=0.3)),
    ):
        monitor, diss = run(ts, factory)
        speeds = sorted({round(s, 2) for _, s in monitor.speed_requests if s < 1.0})
        print(f"  {name}")
        print(f"    dissipation: {diss * 1e3:8.1f} ms")
        print(f"    speeds used: {speeds}")
        print(f"    misses: {monitor.miss_count}, episodes: {len(monitor.episodes)}")
        print()
    print("The additive policy starts gently (0.8) and firms up only if")
    print("misses keep arriving — a middle ground between SIMPLE's single")
    print("choice and ADAPTIVE's immediate drastic response.")


if __name__ == "__main__":
    main()
