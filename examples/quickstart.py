#!/usr/bin/env python3
"""Quickstart: build an MC² workload, inject an overload, watch recovery.

Walks through the library's main moving parts in ~40 lines of client
code:

1. generate a Sec.-5-style avionics task set (levels A/B/C, G-FL PPs,
   analytical response-time tolerances);
2. check level-C schedulability and print the response-time bounds;
3. run the SHORT transient-overload scenario under the SIMPLE monitor;
4. print what happened: when the virtual clock slowed, when the idle
   normal instant was detected, and the dissipation time.

Run:  python examples/quickstart.py
"""

from repro import (
    SHORT,
    CriticalityLevel,
    MonitorSpec,
    check_level_c,
    gel_response_bounds,
    generate_taskset,
    run_overload_experiment,
)


def main() -> None:
    # 1. A quad-core avionics-like workload (paper Sec. 5 methodology).
    ts = generate_taskset(seed=2015)
    n_by_level = {
        lvl.name: len(ts.level(lvl)) for lvl in CriticalityLevel if ts.level(lvl)
    }
    print(f"Generated task set: m={ts.m} CPUs, {len(ts)} tasks {n_by_level}")
    print(f"  level-C utilization: {ts.utilization(CriticalityLevel.C, level=CriticalityLevel.C):.3f}")
    print(f"  level-C supply from A/B interference: {ts.level_c_supply()}")

    # 2. Analysis: schedulability and response-time bounds.
    print()
    print(check_level_c(ts).explain())
    bounds = gel_response_bounds(ts)
    print(f"  shared delay term x = {bounds.x * 1e3:.2f} ms")
    print(f"  largest absolute response bound = {bounds.max_absolute() * 1e3:.2f} ms")

    # 3. Transient overload (SHORT: all jobs at 10x provisioning for
    #    500 ms) with the SIMPLE monitor at s = 0.6 — the paper's
    #    recommended configuration.
    out = run_overload_experiment(
        ts, SHORT, MonitorSpec("simple", 0.6), keep_artifacts=True
    )
    r = out.result

    # 4. Report.
    print()
    print(f"Scenario {r.scenario} under {r.monitor}:")
    for t, s in out.trace.speed_changes:
        what = "slowed to" if s < 1.0 else "restored to"
        print(f"  t = {t * 1e3:7.1f} ms: virtual clock {what} s = {s:g}")
    print(f"  tolerance misses observed: {r.miss_count}")
    print(f"  recovery episodes: {r.episodes}")
    print(f"  dissipation time: {r.dissipation * 1e3:.1f} ms "
          f"(overload lasted {SHORT.total_overload_length * 1e3:.0f} ms)")
    print(f"  largest level-C response time: {r.max_response_c * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
