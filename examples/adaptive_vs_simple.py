#!/usr/bin/env python3
"""Compare the SIMPLE and ADAPTIVE monitors (paper Sec. 5's trade-off).

Runs every scenario under both monitors across their parameter sweeps on
one generated task set and prints the paper's two decision metrics side
by side: dissipation time and the minimum virtual-clock speed (how hard
job releases were throttled).

The paper's conclusion — reproduced here — is that ADAPTIVE achieves
smaller dissipation times but only by choosing drastically lower speeds,
so SIMPLE with s = 0.6 is the better engineering choice under these
pessimistic scenarios (s = 0.8 if gentler throttling is preferred).

Run:  python examples/adaptive_vs_simple.py [seed]
"""

import sys

from repro import MonitorSpec, generate_taskset, run_overload_experiment, standard_scenarios

SWEEP = (0.2, 0.4, 0.6, 0.8, 1.0)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2015
    ts = generate_taskset(seed)
    print(f"Task set seed {seed}: {len(ts)} tasks on {ts.m} CPUs\n")

    header = f"{'scenario':<8} {'monitor':<18} {'dissipation':>12} {'min speed':>10} {'misses':>8}"
    for scenario in standard_scenarios():
        print(header)
        print("-" * len(header))
        for kind, values in (("simple", SWEEP), ("adaptive", SWEEP)):
            for v in values:
                r = run_overload_experiment(ts, scenario, MonitorSpec(kind, v))
                print(
                    f"{scenario.name:<8} {r.monitor:<18} "
                    f"{r.dissipation * 1e3:9.1f} ms {r.min_speed:10.3f} "
                    f"{r.miss_count:8d}"
                )
        print()

    print("Reading the table the paper's way:")
    print(" * SIMPLE: smaller s => faster recovery, but releases throttled")
    print("   harder; below s = 0.6 the returns diminish.")
    print(" * ADAPTIVE: dissipation barely depends on a or on the overload")
    print("   length, but the minimum chosen speed is far below SIMPLE's —")
    print("   job releases get drastically less frequent during recovery.")


if __name__ == "__main__":
    main()
