#!/usr/bin/env python3
"""Degradation and recovery as a timeline (the quantitative Fig. 2 view).

Plots (as Unicode sparklines) the worst normalized level-C response time
per release-time bin for a generated avionics workload under the SHORT
overload, in three variants:

* no recovery mechanism — the degradation persists;
* SIMPLE(s = 0.6) — the spike dissipates within ~2x the overload length;
* ADAPTIVE(a = 0.6) — faster dissipation, harder throttle.

Run:  python examples/response_timeline.py
"""

from repro import (
    SHORT,
    MonitorSpec,
    generate_taskset,
    run_overload_experiment,
)
from repro.experiments.timeline import render_sparkline, response_timeline

HORIZON = 6.0
BIN = 0.1


def main() -> None:
    ts = generate_taskset(seed=2015)
    print(f"Workload: {len(ts)} tasks on {ts.m} CPUs; SHORT overload "
          f"(jobs released in [0, 0.5) run 10x provisioning)\n")
    print(f"Each character = {BIN * 1e3:.0f} ms of releases; height = worst "
          "response/period in the bin\n")

    # Overload-free reference: the normal-behaviour baseline level.
    from repro.model.behavior import ConstantBehavior
    from repro.sim.kernel import MC2Kernel

    ref_trace = MC2Kernel(ts, behavior=ConstantBehavior()).run(HORIZON)
    ref_bins = response_timeline(ref_trace, ts, bin_width=BIN, horizon=HORIZON)
    baseline = max(b.max_normalized for b in ref_bins)

    for spec in (MonitorSpec("none"), MonitorSpec("simple", 0.6),
                 MonitorSpec("adaptive", 0.6)):
        out = run_overload_experiment(
            ts, SHORT, spec, horizon=HORIZON, keep_artifacts=True
        )
        bins = response_timeline(out.trace, ts, bin_width=BIN, horizon=HORIZON)
        print(f"{spec.label:<18} {render_sparkline(bins)}")
        # First bin after the overload whose worst response is back at the
        # normal-behaviour baseline, and stays there.
        settle = next(
            (b.start for i, b in enumerate(bins)
             if b.start >= 0.5 and all(x.max_normalized <= baseline * 1.05
                                       for x in bins[i:] if x.jobs)),
            None,
        )
        r = out.result
        extras = f"misses={r.miss_count}"
        if spec.kind != "none":
            extras += (f", dissipation={r.dissipation * 1e3:.0f} ms, "
                       f"min s={r.min_speed:.2f}")
        settle_s = f"{(settle - 0.5) * 1e3:.0f} ms after overload" if settle else "never"
        print(f"{'':<18} back to baseline: {settle_s}; {extras}\n")

    print("This workload has slack (U_C = 2.6 on effective capacity 3.6), so")
    print("even the unmanaged system eventually drains — the paper's point is")
    print("that it takes much longer ('could take significant time to settle")
    print("back to normal'), and at full utilization (Fig. 2/3, see")
    print("figure2_walkthrough.py) it never does. The mechanism cuts the")
    print("settle time and certifies recovery via the idle normal instant.")


if __name__ == "__main__":
    main()
