#!/usr/bin/env python3
"""Plan the recovery speed from a dissipation requirement, then verify.

A designer's workflow around Fig. 6, run end to end:

1. state a requirement — "after a 500 ms provisioning-scale overload the
   system must be back to normal within D seconds";
2. compute the gentlest recovery speed s* whose analytical dissipation
   bound meets D (:func:`repro.analysis.select_recovery_speed`);
3. *verify by simulation*: run the SHORT scenario under SIMPLE(s*) and
   confirm the measured dissipation is within the requirement (it should
   be well within — the bound is conservative).

Run:  python examples/recovery_planning.py
"""

from repro import (
    SHORT,
    MonitorSpec,
    generate_taskset,
    run_overload_experiment,
    select_recovery_speed,
)


def main() -> None:
    ts = generate_taskset(seed=2015)
    overload = SHORT.total_overload_length
    print(f"Workload: {len(ts)} tasks on {ts.m} CPUs; overload length "
          f"{overload * 1e3:.0f} ms\n")

    print(f"  {'target D':>10} {'chosen s*':>10} {'bound':>10} "
          f"{'measured':>10} {'ok?':>5}")
    for target in (4.8, 5.0, 6.0, 8.0, 12.0):
        choice = select_recovery_speed(ts, overload, target_dissipation=target)
        if not choice.feasible:
            print(f"  {target:>9.1f}s {'—':>10} {'infeasible':>10}")
            continue
        result = run_overload_experiment(
            ts, SHORT, MonitorSpec("simple", choice.speed)
        )
        ok = result.dissipation <= target
        print(f"  {target:>9.1f}s {choice.speed:>10.3f} "
              f"{choice.guaranteed_dissipation:>9.2f}s "
              f"{result.dissipation:>9.2f}s {'yes' if ok else 'NO':>5}")

    print()
    print("Tighter targets force slower recovery speeds (harder release")
    print("throttling); targets below the bound's s->0 limit are reported")
    print("infeasible rather than silently missed.  Measured dissipation")
    print("sits far below the guarantee — the bound charges the overload")
    print("for the full 10x demand of every job released in the window,")
    print("while the budget-enforced system sheds most of it.")


if __name__ == "__main__":
    main()
