"""Setuptools shim for environments without wheel/build isolation.

The project metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation`` (and ``python setup.py
develop``) on offline machines whose setuptools cannot build wheels.
"""
from setuptools import setup

setup()
