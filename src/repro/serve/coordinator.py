"""The ``repro-serve`` coordinator: an asyncio service over campaign dirs.

One coordinator process owns a campaign *root* (the same layout
``prepare_campaign`` builds for the file queue) and speaks
:mod:`repro.serve.protocol` to any number of workers and clients:

* ``submit`` registers a content-addressed campaign — literally
  :func:`repro.runtime.shard.prepare_campaign` under the root, so the
  on-disk truth is identical to a file-queue campaign and every
  file-based tool (``sweep status``, ``status``, ``top``, ``resume``)
  keeps working against the serve root;
* ``lease`` grants shards in campaign order with an in-memory
  (monotonic-clock) TTL, mirrored into the directory's lease files so
  file-based observers see ownership;
* streamed ``cell_result`` messages are buffered per shard **and
  journaled** (``<root>/coordinator.journal``, one ``O_APPEND`` NDJSON
  line per cell) so a coordinator crash mid-stream loses nothing a
  restart can't reassemble;
* ``shard_done`` commits the shard through the existing atomic
  :meth:`~repro.runtime.shard.CampaignStore.write_manifest`, and the
  last manifest triggers the streaming merge
  (:func:`~repro.runtime.shard.write_merged_results` /
  :func:`~repro.runtime.shard.write_merged_scorecard`) — so the merged
  artifact is byte-identical to an uninterrupted serial run no matter
  how many workers, reconnects, or restarts happened in between.

Correctness never depends on the lease bookkeeping: cells are
deterministic, so a lease lost to a network partition or TTL expiry
costs at most a redundant execution that writes the same bytes.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.io.canonical import doc_digest
from repro.runtime.shard import (
    CampaignStore,
    ShardedCampaign,
    ShardSpec,
    get_kind,
    iter_campaign_dirs,
    prepare_campaign,
    write_merged_results,
    write_merged_scorecard,
)
from repro.serve import protocol as wire
from repro.util.atomicio import append_line

__all__ = ["JOURNAL_NAME", "Coordinator", "serve"]

JOURNAL_NAME = "coordinator.journal"

_CANON = dict(sort_keys=True, separators=(",", ":"), allow_nan=False)


@dataclass
class _Lease:
    owner: str
    deadline: float  # monotonic


def _provenance_sibling(state: "_CampaignState") -> pathlib.Path:
    from repro.provenance import provenance_path

    return provenance_path(state.store.merged_path)


def _provenance_doc(state: "_CampaignState") -> Dict[str, Any]:
    """The merged artifact's provenance document, or ``{}`` if absent."""
    try:
        doc = json.loads(_provenance_sibling(state).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return doc if isinstance(doc, dict) else {}


@dataclass
class _CampaignState:
    """One registered campaign: durable store + volatile lease/buffer state."""

    campaign: ShardedCampaign
    cdir: pathlib.Path
    store: CampaignStore
    done: Set[str] = field(default_factory=set)
    leases: Dict[str, _Lease] = field(default_factory=dict)
    #: shard_id -> {campaign cell position -> (doc, cached, wall_ns)}.
    buffers: Dict[str, Dict[int, Tuple[Dict[str, Any], bool, int]]] = field(
        default_factory=dict
    )
    #: Shard submissions rejected by the verification spot-check.
    quarantined: int = 0
    #: Lazily-created coordinator-side TelemetryWriter (verify counters).
    telemetry: Any = None

    @property
    def complete(self) -> bool:
        return len(self.done) == len(self.campaign.shards)

    def shard_by_id(self, shard_id: str) -> Optional[ShardSpec]:
        for shard in self.campaign.shards:
            if shard.shard_id == shard_id:
                return shard
        return None


class Coordinator:
    """Protocol state machine + asyncio server (see the module docstring).

    Message handling is synchronous inside the event loop, so per-message
    state transitions are atomic without locks; the durable transitions
    (journal append, manifest write, merge) are the same atomic-IO
    primitives the file queue uses.
    """

    def __init__(
        self,
        root: "str | pathlib.Path",
        host: str = "127.0.0.1",
        port: int = 0,
        lease_ttl: float = 60.0,
        mono=time.monotonic,
        verify_fraction: float = 0.0,
        verify_seed: int = 0,
    ) -> None:
        if not 0.0 <= verify_fraction <= 1.0:
            raise ValueError(
                f"verify_fraction must be in [0, 1], got {verify_fraction}"
            )
        self.root = pathlib.Path(root)
        self.host = host
        self.port = port
        self.lease_ttl = lease_ttl
        self._mono = mono
        #: Fraction of each committed shard's cells the coordinator
        #: re-executes before accepting it (0 disables the spot-check).
        self.verify_fraction = verify_fraction
        self.verify_seed = verify_seed
        #: Workers that failed a spot-check; they are never granted work
        #: again and their streamed frames are dropped.
        self.quarantined_owners: Set[str] = set()
        self.campaigns: Dict[str, _CampaignState] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self.recovered_shards = 0

    # ------------------------------------------------------------------
    # Durability: journal + recovery
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> pathlib.Path:
        return self.root / JOURNAL_NAME

    def _journal(self, event: Dict[str, Any]) -> None:
        append_line(self.journal_path, json.dumps(event, **_CANON))

    def recover(self) -> None:
        """Rebuild state from the root: manifests first, then the journal.

        Shard manifests are the durable truth; the journal only
        re-seeds the in-memory cell buffers of shards that were still
        streaming when the coordinator died.  A shard whose every cell
        made it into the journal is committed to its manifest right
        here (owner ``"recovered"`` — owners never enter merged
        artifacts), so a crash between the last ``cell_result`` and the
        manifest write costs nothing.
        """
        for cdir in iter_campaign_dirs(self.root):
            store = CampaignStore(cdir)
            campaign = store.load()
            state = _CampaignState(campaign=campaign, cdir=cdir, store=store)
            state.done = {
                s.shard_id for s in campaign.shards if store.shard_done(s)
            }
            self.campaigns[campaign.campaign_key] = state
        try:
            fh = open(self.journal_path, "r", encoding="utf-8")
        except OSError:
            fh = None
        if fh is not None:
            with fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except ValueError:
                        continue  # torn final line of a killed coordinator
                    ev = event.get("ev")
                    if ev == "quarantine":
                        owner = str(event.get("owner", ""))
                        if owner:
                            self.quarantined_owners.add(owner)
                        qstate = self.campaigns.get(event.get("c", ""))
                        if qstate is not None:
                            qstate.quarantined += 1
                            # The rejected cells were journaled before
                            # the verdict; drop them so recovery can't
                            # commit a shard verification refused.
                            qstate.buffers.pop(str(event.get("s", "")), None)
                        continue
                    if ev != "cell":
                        continue
                    state = self.campaigns.get(event.get("c", ""))
                    if state is None:
                        continue
                    shard_id = str(event.get("s", ""))
                    if shard_id in state.done:
                        continue
                    try:
                        pos = int(event["p"])
                        doc = event["doc"]
                    except (KeyError, TypeError, ValueError):
                        continue
                    state.buffers.setdefault(shard_id, {})[pos] = (
                        doc,
                        bool(event.get("cached", False)),
                        int(event.get("w", 0)),
                    )
        for state in self.campaigns.values():
            for shard in state.campaign.shards:
                if shard.shard_id in state.done:
                    continue
                buf = state.buffers.get(shard.shard_id, {})
                if all(p in buf for p in range(shard.start, shard.stop)):
                    self._commit_shard(state, shard, "recovered", 0)
                    self.recovered_shards += 1
            if state.complete:
                self._merge(state)

    def _commit_shard(
        self, state: _CampaignState, shard: ShardSpec, owner: str, shard_wall_ns: int
    ) -> None:
        buf = state.buffers.get(shard.shard_id, {})
        rows = [buf[p] for p in range(shard.start, shard.stop)]
        state.store.write_manifest(
            state.campaign,
            shard,
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
            owner,
            shard_wall_ns,
        )
        self._journal({"ev": "shard", "c": state.campaign.campaign_key,
                       "s": shard.shard_id})
        state.done.add(shard.shard_id)
        state.buffers.pop(shard.shard_id, None)
        lease = state.leases.pop(shard.shard_id, None)
        if lease is not None:
            state.store.release(shard.shard_id, lease.owner)

    def _merge(self, state: _CampaignState) -> pathlib.Path:
        if state.campaign.kind == "faults":
            return write_merged_scorecard(state.cdir)
        return write_merged_results(state.cdir)

    # ------------------------------------------------------------------
    # Verification spot-check (untrusted workers)
    # ------------------------------------------------------------------
    def _writer(self, state: _CampaignState):
        """The campaign's coordinator-side telemetry stream (lazy)."""
        if state.telemetry is None:
            from repro.obs.telemetry import TelemetryWriter, telemetry_path

            state.telemetry = TelemetryWriter(
                telemetry_path(state.cdir, "coordinator"),
                owner="coordinator",
                campaign=state.campaign.campaign_key,
            )
        return state.telemetry

    def _spot_check(self, state: _CampaignState, shard: ShardSpec) -> List[int]:
        """Re-execute a seeded sample of a buffered shard's cells.

        Returns the campaign positions whose streamed result document
        does not digest to what a fresh execution produces.  The sample
        is deterministic per (seed, shard), so a re-submitted shard is
        checked at the same positions — a dishonest worker cannot win by
        resubmitting until the sample misses its corruption.
        """
        buf = state.buffers.get(shard.shard_id, {})
        n = shard.stop - shard.start
        if self.verify_fraction >= 1.0:
            k = n
        else:
            k = min(n, max(1, round(self.verify_fraction * n)))
        rng = random.Random(f"{self.verify_seed}:{shard.shard_id}")
        positions = sorted(rng.sample(range(shard.start, shard.stop), k))
        kind = get_kind(state.campaign.kind)
        writer = self._writer(state)
        divergent: List[int] = []
        for pos in positions:
            expected = doc_digest(kind.execute(state.campaign.cells[pos]))
            ok = doc_digest(buf[pos][0]) == expected
            writer.cell_verified(ok)
            if not ok:
                divergent.append(pos)
        # Flush at every verification verdict (shard boundary) so the
        # stream's tail always reflects the full verified-cell count.
        writer.sample(force=True)
        return divergent

    def _quarantine(
        self, state: _CampaignState, shard: ShardSpec, owner: str, bad: List[int]
    ) -> wire.Message:
        """Reject a shard that failed verification and bar its worker.

        The buffered results are dropped and the lease released, so the
        shard goes back into the grantable pool for honest workers; the
        quarantine is journaled so a coordinator restart keeps the
        worker barred.
        """
        self._journal({
            "ev": "quarantine", "c": state.campaign.campaign_key,
            "s": shard.shard_id, "owner": owner, "p": bad,
        })
        state.buffers.pop(shard.shard_id, None)
        lease = state.leases.pop(shard.shard_id, None)
        if lease is not None:
            state.store.release(shard.shard_id, lease.owner)
        if owner:
            self.quarantined_owners.add(owner)
        state.quarantined += 1
        self._writer(state).shard_quarantined()
        return wire.ShardOk(
            accepted=False,
            quarantined=True,
            reason=f"verification failed at cell(s) "
                   f"{bad[:8]}{'...' if len(bad) > 8 else ''}; "
                   f"shard re-queued, owner {owner!r} quarantined",
        )

    # ------------------------------------------------------------------
    # Message handlers (one per request type)
    # ------------------------------------------------------------------
    def handle(self, msg: wire.Message) -> List[wire.Message]:
        """Map one request to its reply (or reply stream, for fetch)."""
        if isinstance(msg, wire.Hello):
            if msg.format != wire.PROTOCOL_FORMAT or msg.version != wire.PROTOCOL_VERSION:
                return [wire.ErrorReply(
                    reason=f"protocol mismatch: want {wire.PROTOCOL_FORMAT} "
                           f"v{wire.PROTOCOL_VERSION}, got {msg.format} v{msg.version}"
                )]
            return [wire.HelloOk()]
        if isinstance(msg, wire.Submit):
            return [self._on_submit(msg)]
        if isinstance(msg, wire.LeaseRequest):
            return [self._on_lease(msg)]
        if isinstance(msg, wire.CellResult):
            return [self._on_cell(msg)]
        if isinstance(msg, wire.ShardDone):
            return [self._on_shard_done(msg)]
        if isinstance(msg, wire.Heartbeat):
            return [self._on_heartbeat(msg)]
        if isinstance(msg, wire.Telemetry):
            return [self._on_telemetry(msg)]
        if isinstance(msg, wire.JobsRequest):
            return [self._on_jobs()]
        if isinstance(msg, wire.StatusRequest):
            return [self._on_status()]
        if isinstance(msg, wire.FetchRequest):
            return self._on_fetch(msg)
        return [wire.ErrorReply(reason=f"unexpected message type {msg.TYPE!r}")]

    def _on_submit(self, msg: wire.Submit) -> wire.Message:
        try:
            campaign = ShardedCampaign.from_dict(dict(msg.campaign))
        except (KeyError, TypeError, ValueError) as exc:
            return wire.ErrorReply(reason=f"bad campaign document: {exc}")
        created = campaign.campaign_key not in self.campaigns
        if created:
            cdir = prepare_campaign(self.root, campaign)
            store = CampaignStore(cdir)
            state = _CampaignState(campaign=campaign, cdir=cdir, store=store)
            state.done = {
                s.shard_id for s in campaign.shards if store.shard_done(s)
            }
            self.campaigns[campaign.campaign_key] = state
            self._journal({"ev": "campaign", "key": campaign.campaign_key,
                           "dir": cdir.name})
            if state.complete:
                self._merge(state)
        state = self.campaigns[campaign.campaign_key]
        return wire.SubmitOk(
            key=campaign.campaign_key,
            shards=len(campaign.shards),
            shards_done=len(state.done),
            created=created,
        )

    def _grantable(self, state: _CampaignState, now: float) -> Optional[ShardSpec]:
        for shard in state.campaign.shards:
            if shard.shard_id in state.done:
                continue
            lease = state.leases.get(shard.shard_id)
            if lease is not None and lease.deadline > now:
                continue
            return shard
        return None

    def _on_lease(self, msg: wire.LeaseRequest) -> wire.Message:
        if msg.owner and msg.owner in self.quarantined_owners:
            return wire.NoWork(active=0, drained=False, quarantined=True)
        now = self._mono()
        active = 0
        for key in sorted(self.campaigns):
            state = self.campaigns[key]
            if state.complete:
                continue
            active += 1
            shard = self._grantable(state, now)
            if shard is None:
                continue
            stolen = state.leases.get(shard.shard_id)
            if stolen is not None:
                state.store.release(shard.shard_id, stolen.owner)
            state.leases[shard.shard_id] = _Lease(
                owner=msg.owner, deadline=now + self.lease_ttl
            )
            # Mirror into the directory's lease file so file-based
            # status/top show ownership; best-effort only.
            state.store.try_acquire(shard.shard_id, msg.owner, self.lease_ttl)
            campaign = state.campaign
            kind = campaign.kind
            to_dict = get_kind(kind).cell_to_dict
            return wire.LeaseGrant(
                campaign=campaign.campaign_key,
                shard=shard.shard_id,
                index=shard.index,
                start=shard.start,
                stop=shard.stop,
                kind=kind,
                cells=[to_dict(campaign.cells[p])
                       for p in range(shard.start, shard.stop)],
                cell_keys=list(campaign.cell_keys[shard.start:shard.stop]),
                meta=dict(campaign.meta),
                ttl=self.lease_ttl,
            )
        return wire.NoWork(active=active, drained=active == 0)

    def _on_cell(self, msg: wire.CellResult) -> wire.Message:
        state = self.campaigns.get(msg.campaign)
        if state is None:
            return wire.ErrorReply(reason=f"unknown campaign {msg.campaign[:12]}")
        if msg.owner and msg.owner in self.quarantined_owners:
            # Acknowledge but drop: a quarantined worker's frames must
            # never reach the journal or buffers, and an error reply
            # would just crash its stream loop mid-shard.
            return wire.CellOk()
        if msg.shard in state.done:
            return wire.CellOk()  # duplicate delivery after a re-grant
        shard = state.shard_by_id(msg.shard)
        if shard is None:
            return wire.ErrorReply(reason=f"unknown shard {msg.shard[:12]}")
        if not shard.start <= msg.pos < shard.stop:
            return wire.ErrorReply(
                reason=f"cell {msg.pos} outside shard slice "
                       f"[{shard.start}, {shard.stop})"
            )
        self._journal({
            "ev": "cell", "c": msg.campaign, "s": msg.shard, "p": msg.pos,
            "doc": msg.doc, "cached": msg.cached, "w": msg.wall_ns,
        })
        state.buffers.setdefault(msg.shard, {})[msg.pos] = (
            dict(msg.doc), msg.cached, msg.wall_ns,
        )
        return wire.CellOk()

    def _on_shard_done(self, msg: wire.ShardDone) -> wire.Message:
        state = self.campaigns.get(msg.campaign)
        if state is None:
            return wire.ErrorReply(reason=f"unknown campaign {msg.campaign[:12]}")
        if msg.shard in state.done:
            return wire.ShardOk(accepted=True)
        shard = state.shard_by_id(msg.shard)
        if shard is None:
            return wire.ErrorReply(reason=f"unknown shard {msg.shard[:12]}")
        if msg.owner and msg.owner in self.quarantined_owners:
            return wire.ShardOk(
                accepted=False,
                quarantined=True,
                reason=f"owner {msg.owner!r} is quarantined",
            )
        buf = state.buffers.get(msg.shard, {})
        missing = [p for p in range(shard.start, shard.stop) if p not in buf]
        if missing:
            # A restarted coordinator may have lost nothing (journal) or
            # everything before the journal existed; either way the
            # worker just re-streams the listed cells and retries.
            return wire.ShardOk(
                accepted=False,
                reason=f"missing {len(missing)} cell(s): "
                       f"{missing[:8]}{'...' if len(missing) > 8 else ''}",
            )
        if self.verify_fraction > 0.0 and msg.owner not in ("", "recovered"):
            bad = self._spot_check(state, shard)
            if bad:
                return self._quarantine(state, shard, msg.owner, bad)
        self._commit_shard(state, shard, msg.owner, msg.shard_wall_ns)
        if state.complete:
            self._merge(state)
        return wire.ShardOk(accepted=True)

    def _on_heartbeat(self, msg: wire.Heartbeat) -> wire.Message:
        state = self.campaigns.get(msg.campaign)
        if state is None:
            return wire.HeartbeatOk(valid=False)
        lease = state.leases.get(msg.shard)
        now = self._mono()
        if lease is None or lease.owner != msg.owner or lease.deadline <= now:
            return wire.HeartbeatOk(valid=False)
        lease.deadline = now + self.lease_ttl
        state.store.heartbeat(msg.shard, msg.owner)
        return wire.HeartbeatOk(valid=True)

    def _on_telemetry(self, msg: wire.Telemetry) -> wire.Message:
        from repro.obs.telemetry import telemetry_path

        state = self.campaigns.get(msg.campaign)
        if state is None:
            return wire.ErrorReply(reason=f"unknown campaign {msg.campaign[:12]}")
        append_line(
            telemetry_path(state.cdir, msg.owner),
            json.dumps(msg.record, **_CANON),
        )
        return wire.TelemetryOk()

    def _on_jobs(self) -> wire.Message:
        now = self._mono()
        docs = []
        for key in sorted(self.campaigns):
            state = self.campaigns[key]
            docs.append({
                "key": key,
                "kind": state.campaign.kind,
                "cells": len(state.campaign.cells),
                "shards": len(state.campaign.shards),
                "shards_done": len(state.done),
                "leased": sum(
                    1 for lease in state.leases.values() if lease.deadline > now
                ),
                "merged": state.store.merged_path.is_file(),
                "quarantined": state.quarantined,
                "manifest": _provenance_sibling(state).is_file(),
                "dir": state.cdir.name,
            })
        return wire.JobsReply(campaigns=docs)

    def _on_status(self) -> wire.Message:
        from repro.obs.telemetry import TelemetryAggregator, render_status

        agg = TelemetryAggregator()
        blocks = []
        for key in sorted(self.campaigns):
            state = self.campaigns[key]
            agg.add_campaign(state.cdir)
            blocks.append(str(state.cdir))
            blocks.append(render_status(state.cdir))
        return wire.StatusReply(aggregate=agg.aggregate(), text="\n".join(blocks))

    def _on_fetch(self, msg: wire.FetchRequest) -> List[wire.Message]:
        state = self.campaigns.get(msg.campaign)
        if state is None:
            return [wire.ErrorReply(reason=f"unknown campaign {msg.campaign[:12]}")]
        if not state.complete:
            return [wire.ErrorReply(
                reason=f"campaign incomplete: "
                       f"{len(state.done)}/{len(state.campaign.shards)} shards"
            )]
        out: List[wire.Message] = []
        for shard in state.campaign.shards:
            manifest = state.store.read_manifest(shard)
            if manifest is None:
                return [wire.ErrorReply(
                    reason=f"shard manifest {shard.shard_id[:12]} vanished"
                )]
            cached = manifest.get("cached", [False] * shard.cells)
            wall = manifest.get("wall_ns", [0] * shard.cells)
            for off, doc in enumerate(manifest["results"]):
                out.append(wire.FetchCell(
                    pos=shard.start + off,
                    doc=doc,
                    cached=bool(cached[off]),
                    wall_ns=int(wall[off]),
                ))
        out.append(wire.FetchDone(
            cells=len(state.campaign.cells),
            manifest=_provenance_doc(state),
        ))
        return out

    # ------------------------------------------------------------------
    # asyncio server
    # ------------------------------------------------------------------
    async def _client_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = wire.LineDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for msg in decoder.feed(data):
                    for reply in self.handle(msg):
                        writer.write(wire.encode_message(reply))
                await writer.drain()
        except (ConnectionError, wire.ProtocolError):
            pass  # a worker died or sent garbage; its lease will expire
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def start(self, port_file: Optional[str] = None) -> int:
        """Bind and start serving; returns the bound port."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.recover()
        self._server = await asyncio.start_server(
            self._client_loop, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if port_file:
            from repro.util.atomicio import atomic_write_text

            atomic_write_text(port_file, f"{self.port}\n")
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


async def _serve_async(
    root: str,
    host: str,
    port: int,
    lease_ttl: float,
    port_file: Optional[str],
    log=print,
    verify_fraction: float = 0.0,
    verify_seed: int = 0,
) -> None:
    coordinator = Coordinator(
        root, host=host, port=port, lease_ttl=lease_ttl,
        verify_fraction=verify_fraction, verify_seed=verify_seed,
    )
    bound = await coordinator.start(port_file=port_file)
    known = len(coordinator.campaigns)
    verify = (
        f"  verify_fraction={coordinator.verify_fraction:g}"
        if coordinator.verify_fraction > 0
        else ""
    )
    log(f"repro-serve v{wire.PROTOCOL_VERSION} coordinator on "
        f"{coordinator.host}:{bound}  root={root}  "
        f"campaigns={known}  recovered_shards={coordinator.recovered_shards}"
        f"{verify}")
    await coordinator.serve_forever()


def serve(
    root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_ttl: float = 60.0,
    port_file: Optional[str] = None,
    log=print,
    verify_fraction: float = 0.0,
    verify_seed: int = 0,
) -> int:
    """Run a coordinator until interrupted (the ``repro-mc2 serve`` body)."""
    try:
        asyncio.run(_serve_async(
            root, host, port, lease_ttl, port_file, log=log,
            verify_fraction=verify_fraction, verify_seed=verify_seed,
        ))
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    return 0
