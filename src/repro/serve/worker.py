"""The ``repro-serve`` worker: lease, execute, stream, heartbeat, retry.

A worker is a thin synchronous client around the same cell executors the
file queue uses (:func:`repro.runtime.shard.get_kind`): it asks the
coordinator for a shard lease, reconstructs the granted cells from their
wire documents, executes them (with the usual spec-keyed
:class:`~repro.runtime.cache.ResultCache` for sweep cells), then streams
one ``cell_result`` per cell followed by ``shard_done``.  A daemon
thread heartbeats the active lease every ``ttl/3`` seconds.

Failure handling is deliberately dumb because cells are deterministic:

* **connection lost** (coordinator restart, network partition) — the
  worker reconnects with exponential backoff plus jitter, re-executes
  the shard it was holding if needed, and re-streams *everything*; the
  coordinator's buffers are last-write-wins over identical bytes, so
  duplicate delivery is harmless;
* **lease lost** (heartbeat returns ``valid=False`` after a TTL expiry)
  — the worker finishes anyway; at ``shard_done`` the coordinator
  either accepts the manifest or reports the shard already done, and
  either way the merged artifact is unchanged;
* **shard_done rejected** (coordinator restarted mid-stream and its
  journal predates some cells) — the worker re-streams the full shard
  and retries.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.cache import ResultCache
from repro.runtime.shard import get_kind
from repro.serve import protocol as wire

__all__ = ["WorkerClient", "run_worker"]


class _ConnectionLost(Exception):
    """The coordinator socket died; reconnect and resume idempotently."""


class _Connection:
    """One TCP connection speaking strict request/reply under a lock."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.decoder = wire.LineDecoder()
        self.lock = threading.Lock()

    def rpc(self, msg: wire.Message) -> wire.Message:
        with self.lock:
            try:
                self.sock.sendall(wire.encode_message(msg))
                while True:
                    # Drain frames a previous call left buffered before
                    # touching the socket (feed() is lazy).
                    for reply in self.decoder.feed(b""):
                        return reply
                    data = self.sock.recv(65536)
                    if not data:
                        raise _ConnectionLost("coordinator closed the connection")
                    for reply in self.decoder.feed(data):
                        return reply
            except (OSError, wire.ProtocolError) as exc:
                raise _ConnectionLost(str(exc)) from exc

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class WorkerClient:
    """Lease/execute/stream loop against one coordinator address."""

    def __init__(
        self,
        addr: str,
        owner: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        telemetry: bool = False,
        poll_s: float = 0.5,
        once: bool = False,
        backoff_base_s: float = 0.5,
        backoff_max_s: float = 30.0,
        max_done_retries: int = 5,
        rng: Optional[random.Random] = None,
        log=print,
    ) -> None:
        import os

        self.host, self.port = wire.split_host_port(addr)
        self.owner = owner or f"{os.uname().nodename}:{os.getpid()}"
        self.cache = cache
        self.telemetry = telemetry
        self.poll_s = poll_s
        self.once = once
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.max_done_retries = max_done_retries
        self.rng = rng or random.Random()
        self.log = log
        self.shards_done = 0
        self.cells_run = 0
        self.cache_hits = 0
        self._conn: Optional[_Connection] = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self) -> _Connection:
        conn = _Connection(self.host, self.port)
        reply = conn.rpc(wire.Hello(role="worker", owner=self.owner))
        if isinstance(reply, wire.ErrorReply):
            conn.close()
            raise wire.ProtocolError(reply.reason)
        if not isinstance(reply, wire.HelloOk):
            conn.close()
            raise wire.ProtocolError(f"bad hello reply: {reply.TYPE}")
        return conn

    def _ensure_conn(self) -> _Connection:
        if self._conn is None:
            self._conn = self._connect()
        return self._conn

    def _drop_conn(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with full jitter, capped."""
        cap = min(self.backoff_max_s, self.backoff_base_s * (2.0**attempt))
        return self.rng.uniform(0.0, cap)

    # ------------------------------------------------------------------
    # Shard execution
    # ------------------------------------------------------------------
    def _execute_grant(
        self, grant: wire.LeaseGrant
    ) -> List[Tuple[int, Dict[str, Any], bool, int]]:
        """Run every granted cell; returns (pos, doc, cached, wall_ns) rows."""
        kind = get_kind(grant.kind)
        cells = [kind.cell_from_dict(dict(doc)) for doc in grant.cells]
        rows: List[Tuple[int, Dict[str, Any], bool, int]] = []
        writer = self._telemetry_writer(grant)
        try:
            for off, cell in enumerate(cells):
                pos = grant.start + off
                key = grant.cell_keys[off] if off < len(grant.cell_keys) else ""
                t0 = time.perf_counter_ns()
                doc: Optional[Dict[str, Any]] = None
                was_cached = False
                if kind.cacheable and self.cache is not None and key:
                    hit = self.cache.get(key)
                    if hit is not None:
                        from repro.io.results_json import run_result_to_dict

                        doc = run_result_to_dict(hit)
                        was_cached = True
                        self.cache_hits += 1
                if doc is None:
                    doc = kind.execute(cell)
                    self.cells_run += 1
                    if kind.cacheable and self.cache is not None and key:
                        from repro.io.results_json import run_result_from_dict

                        self.cache.put(key, kind.cell_to_dict(cell),
                                       run_result_from_dict(doc))
                rows.append((pos, doc, was_cached, time.perf_counter_ns() - t0))
                if writer is not None:
                    writer.cell_done(
                        was_cached, events=int(doc.get("events", 0)),
                        wall_ns=rows[-1][3],
                    )
        finally:
            if writer is not None:
                writer.close()
        return rows

    def _telemetry_writer(self, grant: wire.LeaseGrant):
        if not self.telemetry:
            return None
        from repro.obs.telemetry import TelemetryWriter

        def sink(line: str) -> None:
            # Best-effort relay; telemetry must never wedge execution.
            conn = self._conn
            if conn is None:
                return
            try:
                conn.rpc(wire.Telemetry(
                    campaign=grant.campaign, owner=self.owner,
                    record=json.loads(line),
                ))
            except (_ConnectionLost, ValueError):
                pass

        return TelemetryWriter(
            path=None,
            owner=self.owner,
            campaign=grant.campaign,
            backend="service",
            sink=sink,
        )

    def _stream_shard(
        self,
        grant: wire.LeaseGrant,
        rows: List[Tuple[int, Dict[str, Any], bool, int]],
        shard_wall_ns: int,
    ) -> bool:
        """Deliver every cell then commit; retries handle rejection.

        Returns ``True`` when the shard was committed, ``False`` when
        the coordinator quarantined it (terminal for this owner).
        """
        for attempt in range(self.max_done_retries):
            conn = self._ensure_conn()
            for pos, doc, cached, wall_ns in rows:
                reply = conn.rpc(wire.CellResult(
                    campaign=grant.campaign, shard=grant.shard, pos=pos,
                    doc=doc, cached=cached, wall_ns=wall_ns,
                    owner=self.owner,
                ))
                if isinstance(reply, wire.ErrorReply):
                    raise wire.ProtocolError(reply.reason)
            reply = conn.rpc(wire.ShardDone(
                campaign=grant.campaign, shard=grant.shard,
                owner=self.owner, shard_wall_ns=shard_wall_ns,
            ))
            if isinstance(reply, wire.ShardOk) and reply.accepted:
                return True
            if isinstance(reply, wire.ShardOk) and reply.quarantined:
                # Terminal: the coordinator's spot-check rejected the
                # shard and barred this owner.  Retrying can never
                # succeed; the next lease request learns the verdict.
                self.log(f"[{self.owner}] shard {grant.shard[:12]} "
                         f"quarantined: {reply.reason}")
                return False
            if isinstance(reply, wire.ErrorReply):
                raise wire.ProtocolError(reply.reason)
            reason = getattr(reply, "reason", "")
            self.log(f"[{self.owner}] shard_done rejected "
                     f"(attempt {attempt + 1}): {reason}; re-streaming")
        raise wire.ProtocolError(
            f"shard {grant.shard[:12]} rejected {self.max_done_retries} times"
        )

    def _heartbeat_loop(self, grant: wire.LeaseGrant, stop: threading.Event) -> None:
        period = max(0.05, grant.ttl / 3.0)
        while not stop.wait(period):
            conn = self._conn
            if conn is None:
                return
            try:
                reply = conn.rpc(wire.Heartbeat(
                    owner=self.owner, campaign=grant.campaign, shard=grant.shard,
                ))
            except _ConnectionLost:
                return  # the main loop will notice and reconnect
            if isinstance(reply, wire.HeartbeatOk) and not reply.valid:
                # Lease expired or was re-granted.  Keep executing: the
                # cells are deterministic, so finishing costs at most a
                # redundant (byte-identical) delivery.
                return

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _work_one_grant(self, grant: wire.LeaseGrant) -> None:
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(grant, stop), daemon=True
        )
        beat.start()
        try:
            t0 = time.perf_counter_ns()
            rows = self._execute_grant(grant)
            shard_wall_ns = time.perf_counter_ns() - t0
        finally:
            stop.set()
        beat.join(timeout=5.0)
        # Delivery happens outside the heartbeat so a reconnect during
        # streaming never races the beat thread for the fresh socket.
        while True:
            try:
                committed = self._stream_shard(grant, rows, shard_wall_ns)
                break
            except _ConnectionLost as exc:
                self._drop_conn()
                self._reconnect_with_backoff(f"delivery interrupted: {exc}")
        if committed:
            self.shards_done += 1

    def _reconnect_with_backoff(self, why: str) -> None:
        attempt = 0
        while True:
            delay = self._backoff(attempt)
            self.log(f"[{self.owner}] {why}; reconnecting in {delay:.2f}s")
            time.sleep(delay)
            try:
                self._conn = self._connect()
                return
            except (OSError, _ConnectionLost, wire.ProtocolError) as exc:
                why = f"reconnect failed: {exc}"
                attempt += 1

    def run(self) -> int:
        """Lease/execute/stream until drained (``once``) or interrupted."""
        self.log(f"[{self.owner}] worker connecting to {self.host}:{self.port}")
        while True:
            try:
                conn = self._ensure_conn()
                reply = conn.rpc(wire.LeaseRequest(owner=self.owner))
            except _ConnectionLost as exc:
                self._drop_conn()
                self._reconnect_with_backoff(str(exc))
                continue
            if isinstance(reply, wire.LeaseGrant):
                self.log(f"[{self.owner}] leased shard {reply.shard[:12]} "
                         f"({reply.cells and len(reply.cells)} cells, "
                         f"kind={reply.kind})")
                self._work_one_grant(reply)
                continue
            if isinstance(reply, wire.NoWork):
                if reply.quarantined:
                    self.log(f"[{self.owner}] quarantined by the coordinator "
                             "(verification spot-check failed); exiting")
                    return 3
                if self.once and reply.drained:
                    self.log(f"[{self.owner}] drained: shards={self.shards_done} "
                             f"cells={self.cells_run} hits={self.cache_hits}")
                    return 0
                time.sleep(self.poll_s)
                continue
            if isinstance(reply, wire.ErrorReply):
                self.log(f"[{self.owner}] coordinator error: {reply.reason}")
                return 1
            self.log(f"[{self.owner}] unexpected reply {reply.TYPE!r}")
            return 1


def run_worker(addr: str, **kwargs: Any) -> int:
    """CLI body for ``repro-mc2 worker``; returns an exit code."""
    client = WorkerClient(addr, **kwargs)
    try:
        return client.run()
    except KeyboardInterrupt:
        return 0
    finally:
        client._drop_conn()
