"""``repro-serve`` v1: the coordinator/worker wire protocol.

Framing is line-delimited canonical JSON: every message is one JSON
object (sorted keys, compact separators) terminated by ``"\\n"``.  The
terminator never appears inside a message because canonical JSON
escapes control characters, so a receiver can split on newlines without
parsing — :class:`LineDecoder` buffers the torn tail of a partial read
and yields only complete messages.

Versioning and forward compatibility follow the repo's artifact rules:

* the ``hello`` handshake carries ``format``/``version`` and each side
  rejects a peer speaking a different major version;
* **unknown fields are ignored** on decode (a v1.x peer may add fields
  without breaking v1 receivers) — pinned by the property tests;
* an unknown ``type`` or a missing required field raises
  :class:`ProtocolError` (torn frames must fail loudly, not read as
  zeroed messages).

The conversation is strict request/reply over one TCP connection: every
request message has exactly one reply message, except ``fetch`` whose
reply is a stream of ``fetch_cell`` messages closed by ``fetch_done``
(documented here because it is the single exception).  Requests are
idempotent — cells are deterministic, campaign registration is
content-addressed, and shard completion is recorded atomically — so a
client may blindly re-send after a reconnect.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple, Type

__all__ = [
    "PROTOCOL_FORMAT",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "MESSAGE_TYPES",
    "Message",
    "Hello",
    "HelloOk",
    "ErrorReply",
    "Submit",
    "SubmitOk",
    "LeaseRequest",
    "LeaseGrant",
    "NoWork",
    "CellResult",
    "CellOk",
    "ShardDone",
    "ShardOk",
    "Heartbeat",
    "HeartbeatOk",
    "Telemetry",
    "TelemetryOk",
    "JobsRequest",
    "JobsReply",
    "StatusRequest",
    "StatusReply",
    "FetchRequest",
    "FetchCell",
    "FetchDone",
    "encode_message",
    "decode_message",
    "LineDecoder",
    "split_host_port",
    "read_port_file",
]

PROTOCOL_FORMAT = "repro-serve"
PROTOCOL_VERSION = 1

_CANON = dict(sort_keys=True, separators=(",", ":"), allow_nan=False)


class ProtocolError(ValueError):
    """A frame that cannot be decoded as a ``repro-serve`` message."""


@dataclass(frozen=True)
class Message:
    """Base class: every message is a frozen dataclass with a TYPE tag."""

    TYPE = ""


# ----------------------------------------------------------------------
# Handshake / errors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Hello(Message):
    """First message on every connection, both directions start here."""

    TYPE = "hello"
    role: str = "client"  # "worker" | "client"
    owner: str = ""
    format: str = PROTOCOL_FORMAT
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class HelloOk(Message):
    TYPE = "hello_ok"
    format: str = PROTOCOL_FORMAT
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class ErrorReply(Message):
    """Reply to any request the coordinator cannot honour."""

    TYPE = "error"
    reason: str = ""


# ----------------------------------------------------------------------
# Campaign registration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Submit(Message):
    """Register a campaign (the ``campaign.json`` document, verbatim).

    Content-addressed and idempotent: re-submitting an already-known
    campaign is acknowledged with ``created=False`` and changes nothing.
    """

    TYPE = "submit"
    campaign: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SubmitOk(Message):
    TYPE = "submit_ok"
    key: str = ""
    shards: int = 0
    shards_done: int = 0
    created: bool = False


# ----------------------------------------------------------------------
# Work loop: lease -> cell results -> shard done, heartbeats throughout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LeaseRequest(Message):
    TYPE = "lease"
    owner: str = ""


@dataclass(frozen=True)
class LeaseGrant(Message):
    """One shard of one campaign, with everything needed to execute it.

    ``cells`` are the cell documents of the granted slice (RunSpec JSON
    for ``kind="sweep"``, CampaignCell JSON for ``kind="faults"``), in
    campaign order; ``cell_keys`` are their content addresses (the
    result-cache keys).  ``ttl`` is the lease's heartbeat deadline in
    seconds — miss it and the coordinator re-grants the shard.
    """

    TYPE = "grant"
    campaign: str = ""
    shard: str = ""
    index: int = 0
    start: int = 0
    stop: int = 0
    kind: str = "sweep"
    cells: List[Dict[str, Any]] = field(default_factory=list)
    cell_keys: List[str] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)
    ttl: float = 60.0


@dataclass(frozen=True)
class NoWork(Message):
    """No shard is currently grantable.

    ``active`` counts registered campaigns with unfinished shards (all
    currently leased to other workers); ``drained`` is true when every
    registered campaign is complete — a ``--once`` worker exits on it.
    ``quarantined`` is true when *this worker* has been quarantined by
    the coordinator's verification spot-check: it will never be granted
    work again and should exit.
    """

    TYPE = "no_work"
    active: int = 0
    drained: bool = True
    quarantined: bool = False


@dataclass(frozen=True)
class CellResult(Message):
    """One executed (or cache-served) cell, streamed as it finishes.

    ``owner`` names the streaming worker so the coordinator can drop
    frames from quarantined workers without failing their connection.
    """

    TYPE = "cell_result"
    campaign: str = ""
    shard: str = ""
    #: Position in the campaign's cell list (not shard-relative).
    pos: int = 0
    doc: Dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    wall_ns: int = 0
    owner: str = ""


@dataclass(frozen=True)
class CellOk(Message):
    TYPE = "cell_ok"


@dataclass(frozen=True)
class ShardDone(Message):
    """Every cell of the shard has been streamed; commit the manifest."""

    TYPE = "shard_done"
    campaign: str = ""
    shard: str = ""
    owner: str = ""
    shard_wall_ns: int = 0


@dataclass(frozen=True)
class ShardOk(Message):
    """``accepted=False`` + ``reason`` when the coordinator is missing
    cells (e.g. it restarted mid-stream); the worker re-streams them.
    ``quarantined=True`` means the shard failed the coordinator's
    verification spot-check — it was re-queued for another worker and
    this worker must *not* retry it."""

    TYPE = "shard_ok"
    accepted: bool = True
    reason: str = ""
    quarantined: bool = False


@dataclass(frozen=True)
class Heartbeat(Message):
    TYPE = "heartbeat"
    owner: str = ""
    campaign: str = ""
    shard: str = ""


@dataclass(frozen=True)
class HeartbeatOk(Message):
    """``valid=False`` means the lease was lost (TTL expiry + re-grant);
    the worker may keep executing — double execution is harmless."""

    TYPE = "heartbeat_ok"
    valid: bool = True


# ----------------------------------------------------------------------
# Telemetry relay (PR 7 fabric over the wire)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Telemetry(Message):
    """One ``repro-telemetry`` record, relayed verbatim.

    The coordinator appends it to the campaign's ``telemetry/`` stream,
    so ``repro-mc2 status``/``top`` on the serve root see remote workers
    exactly like local ones.
    """

    TYPE = "telemetry"
    campaign: str = ""
    owner: str = ""
    record: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TelemetryOk(Message):
    TYPE = "telemetry_ok"


# ----------------------------------------------------------------------
# Inspection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobsRequest(Message):
    TYPE = "jobs"


@dataclass(frozen=True)
class JobsReply(Message):
    """Per-campaign progress: list of ``{key, kind, cells, shards,
    shards_done, leased, merged}`` documents, sorted by key."""

    TYPE = "jobs_ok"
    campaigns: List[Dict[str, Any]] = field(default_factory=list)


@dataclass(frozen=True)
class StatusRequest(Message):
    TYPE = "status"


@dataclass(frozen=True)
class StatusReply(Message):
    """Fleet status rendered server-side from the campaign directories:
    ``aggregate`` is the deterministic telemetry aggregate document,
    ``text`` the human dashboard (one block per campaign)."""

    TYPE = "status_ok"
    aggregate: Dict[str, Any] = field(default_factory=dict)
    text: str = ""


@dataclass(frozen=True)
class FetchRequest(Message):
    """Fetch a completed campaign's per-cell results.

    The only streaming reply: ``fetch_cell`` per cell (campaign order),
    closed by ``fetch_done``.  An ``error`` reply means the campaign is
    unknown or incomplete.
    """

    TYPE = "fetch"
    campaign: str = ""


@dataclass(frozen=True)
class FetchCell(Message):
    TYPE = "fetch_cell"
    pos: int = 0
    doc: Dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    wall_ns: int = 0


@dataclass(frozen=True)
class FetchDone(Message):
    """Closes a fetch stream.  ``manifest`` carries the campaign's
    ``repro-provenance`` document (empty dict when the merge predates
    provenance), so a fetching client receives the attestation alongside
    the results."""

    TYPE = "fetch_done"
    cells: int = 0
    manifest: Dict[str, Any] = field(default_factory=dict)


#: type tag -> message class (the v1 vocabulary, frozen by the property
#: tests: every entry must round-trip through encode/decode).
MESSAGE_TYPES: Dict[str, Type[Message]] = {
    cls.TYPE: cls
    for cls in (
        Hello, HelloOk, ErrorReply,
        Submit, SubmitOk,
        LeaseRequest, LeaseGrant, NoWork,
        CellResult, CellOk, ShardDone, ShardOk,
        Heartbeat, HeartbeatOk,
        Telemetry, TelemetryOk,
        JobsRequest, JobsReply,
        StatusRequest, StatusReply,
        FetchRequest, FetchCell, FetchDone,
    )
}


def encode_message(msg: Message) -> bytes:
    """One wire frame: canonical JSON object + ``"\\n"``."""
    doc = dataclasses.asdict(msg)
    doc["type"] = msg.TYPE
    return (json.dumps(doc, **_CANON) + "\n").encode("utf-8")


def decode_message(line: str) -> Message:
    """Decode one complete line into its message.

    Unknown *fields* are dropped (forward compatibility); an unknown
    *type*, non-object payload, or missing required field raises
    :class:`ProtocolError`.
    """
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"frame is not valid JSON: {line[:80]!r}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(f"frame is not a JSON object: {line[:80]!r}")
    tag = doc.get("type")
    cls = MESSAGE_TYPES.get(tag)
    if cls is None:
        raise ProtocolError(f"unknown message type {tag!r}")
    names = {f.name for f in dataclasses.fields(cls)}
    kwargs = {k: v for k, v in doc.items() if k in names}
    try:
        return cls(**kwargs)
    except TypeError as exc:  # pragma: no cover - all v1 fields default
        raise ProtocolError(f"bad {tag} frame: {exc}") from exc


class LineDecoder:
    """Incremental frame decoder: bytes in, complete messages out.

    Feed it whatever the socket produced — including reads torn in the
    middle of a frame — and it yields each message exactly once, in
    order.  The unterminated tail stays buffered until its newline
    arrives; :attr:`pending` exposes the buffered byte count (a clean
    shutdown should end with 0).
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def pending(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> Iterator[Message]:
        self._buf.extend(data)
        while True:
            nl = self._buf.find(b"\n")
            if nl < 0:
                return
            line = self._buf[:nl].decode("utf-8")
            del self._buf[: nl + 1]
            if not line.strip():
                continue
            yield decode_message(line)


def split_host_port(addr: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """Parse ``host:port`` (or bare ``port``) service addresses."""
    text = addr.strip()
    if ":" in text:
        host, _, port = text.rpartition(":")
        host = host.strip("[]") or default_host
    else:
        host, port = default_host, text
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"bad service address {addr!r} (want host:port)") from exc


def read_port_file(path: str, timeout: float = 10.0) -> int:
    """Poll *path* for the coordinator's bound port (written on startup)."""
    import time

    deadline = time.monotonic() + timeout
    while True:
        try:
            with open(path, "r", encoding="ascii") as fh:
                text = fh.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        if time.monotonic() >= deadline:
            raise TimeoutError(f"no port appeared in {path} within {timeout}s")
        time.sleep(0.05)
