"""Client side of ``repro-serve``: submit/inspect plus the executor bridge.

:class:`ServiceClient` is the small synchronous client the CLI uses
(``repro-mc2 submit | jobs | status --service``): connect, handshake,
one request/reply (or reply stream, for ``fetch``) per call, reconnect
with exponential backoff plus jitter on connection loss — every request
it issues is idempotent, so a retry after a partition is always safe.

:class:`ServiceBackend` plugs the service into the executor seam
(``make_executor(service_addr=...)``): ``run(specs)`` becomes *submit a
content-addressed sweep campaign, wait for the fabric to drain it,
fetch the merged cells*.  Because campaign keys are content-addressed,
re-running the same grid against a warm coordinator is a pure fetch —
the distributed twin of a fully warmed local cache.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime.executor import SweepExecutor
from repro.serve import protocol as wire

__all__ = ["ServiceClient", "ServiceBackend"]


class ServiceClient:
    """Synchronous request/reply client for one coordinator address."""

    def __init__(
        self,
        addr: str,
        timeout_s: float = 30.0,
        retries: int = 5,
        backoff_base_s: float = 0.2,
        backoff_max_s: float = 5.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host, self.port = wire.split_host_port(addr)
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.rng = rng or random.Random()
        self._sock: Optional[socket.socket] = None
        self._decoder = wire.LineDecoder()

    # -- connection -----------------------------------------------------
    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        self._decoder = wire.LineDecoder()
        self._send(wire.Hello(role="client"))
        reply = self._recv()
        if isinstance(reply, wire.ErrorReply):
            raise wire.ProtocolError(reply.reason)
        if not isinstance(reply, wire.HelloOk):
            raise wire.ProtocolError(f"bad hello reply: {reply.TYPE}")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _send(self, msg: wire.Message) -> None:
        assert self._sock is not None
        self._sock.sendall(wire.encode_message(msg))

    def _recv(self) -> wire.Message:
        assert self._sock is not None
        while True:
            # feed() is lazy: frames a previous caller left buffered
            # surface on an empty feed before touching the socket.
            for msg in self._decoder.feed(b""):
                return msg
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("coordinator closed the connection")
            for msg in self._decoder.feed(data):
                return msg

    def _rpc(self, msg: wire.Message, stream_until=None) -> List[wire.Message]:
        """Send *msg*; collect one reply (or a stream ending at a type).

        Every ``repro-serve`` request is idempotent, so connection
        failures are retried from scratch with backoff + jitter.
        """
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                if self._sock is None:
                    self._connect()
                self._send(msg)
                if stream_until is None:
                    return [self._recv()]
                out: List[wire.Message] = []
                while True:
                    reply = self._recv()
                    out.append(reply)
                    if isinstance(reply, (stream_until, wire.ErrorReply)):
                        return out
            except (OSError, ConnectionError, wire.ProtocolError) as exc:
                last = exc
                self.close()
                if attempt < self.retries:
                    cap = min(self.backoff_max_s,
                              self.backoff_base_s * (2.0**attempt))
                    time.sleep(self.rng.uniform(0.0, cap))
        raise ConnectionError(
            f"coordinator {self.host}:{self.port} unreachable "
            f"after {self.retries + 1} attempts: {last}"
        )

    @staticmethod
    def _one(replies: List[wire.Message], want) -> Any:
        reply = replies[0]
        if isinstance(reply, wire.ErrorReply):
            raise wire.ProtocolError(reply.reason)
        if not isinstance(reply, want):
            raise wire.ProtocolError(
                f"expected {want.TYPE}, got {reply.TYPE}"
            )
        return reply

    # -- requests -------------------------------------------------------
    def submit(self, campaign_doc: Dict[str, Any]) -> wire.SubmitOk:
        """Register a campaign document (``ShardedCampaign.to_dict()``)."""
        return self._one(
            self._rpc(wire.Submit(campaign=campaign_doc)), wire.SubmitOk
        )

    def jobs(self) -> List[Dict[str, Any]]:
        reply = self._one(self._rpc(wire.JobsRequest()), wire.JobsReply)
        return list(reply.campaigns)

    def status(self) -> wire.StatusReply:
        return self._one(self._rpc(wire.StatusRequest()), wire.StatusReply)

    def fetch(self, campaign_key: str) -> List[Tuple[Dict[str, Any], bool, int]]:
        """All merged cells of a complete campaign, in cell order."""
        replies = self._rpc(
            wire.FetchRequest(campaign=campaign_key), stream_until=wire.FetchDone
        )
        if isinstance(replies[-1], wire.ErrorReply):
            raise wire.ProtocolError(replies[-1].reason)
        cells: List[Tuple[int, Dict[str, Any], bool, int]] = []
        for reply in replies[:-1]:
            if not isinstance(reply, wire.FetchCell):
                raise wire.ProtocolError(f"unexpected {reply.TYPE} in fetch stream")
            cells.append((reply.pos, reply.doc, reply.cached, reply.wall_ns))
        done = replies[-1]
        assert isinstance(done, wire.FetchDone)
        if len(cells) != done.cells:
            raise wire.ProtocolError(
                f"fetch stream torn: {len(cells)}/{done.cells} cells"
            )
        cells.sort(key=lambda row: row[0])
        return [(doc, cached, wall) for _, doc, cached, wall in cells]

    def wait(
        self,
        campaign_key: str,
        poll_s: float = 0.2,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Block until *campaign_key* has every shard done; returns its row."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            for row in self.jobs():
                if row["key"] == campaign_key and row["shards_done"] == row["shards"]:
                    return row
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"campaign {campaign_key[:12]} incomplete after {timeout_s}s"
                )
            time.sleep(poll_s)


class ServiceBackend(SweepExecutor):
    """A :class:`~repro.runtime.executor.SweepExecutor` routed through a
    coordinator.

    ``_execute_timed`` (the executor seam for cache misses) becomes
    submit → wait → fetch: specs are wrapped into a content-addressed
    ``"sweep"`` campaign, the coordinator's workers drain it, and the
    merged cells come back in spec order.  The local front-end cache,
    report, and stats machinery of the base class apply unchanged, so
    ``sweep --service HOST:PORT`` behaves exactly like any other
    backend — same artifacts, different execution substrate.
    """

    def __init__(
        self,
        addr: str,
        shard_size: int = 16,
        poll_s: float = 0.2,
        timeout_s: Optional[float] = None,
        cache=None,
        metrics=None,
        progress=None,
        client: Optional[ServiceClient] = None,
    ) -> None:
        super().__init__(cache=cache, metrics=metrics, progress=progress)
        self.addr = addr
        self.shard_size = shard_size
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.client = client or ServiceClient(addr)
        #: Cells the fabric served from worker-side caches on the most
        #: recent run (the distributed analogue of ``stats.cache_hits``).
        self.remote_cache_hits = 0

    def _execute_timed(self, specs: Sequence[Any]) -> List[Tuple[Any, int]]:
        from repro.io.results_json import run_result_from_dict
        from repro.runtime.shard import ShardedCampaign

        campaign = ShardedCampaign("sweep", list(specs), shard_size=self.shard_size)
        self.client.submit(campaign.to_dict())
        self.client.wait(
            campaign.campaign_key, poll_s=self.poll_s, timeout_s=self.timeout_s
        )
        cells = self.client.fetch(campaign.campaign_key)
        self.remote_cache_hits = sum(1 for _, cached, _w in cells if cached)
        out: List[Tuple[Any, int]] = []
        for doc, _cached, wall_ns in cells:
            out.append((run_result_from_dict(doc), wall_ns))
            self._cell_finished(wall_ns)
        return out

    def _execute(self, specs: Sequence[Any]) -> List[Any]:
        return [r for r, _ in self._execute_timed(specs)]
