"""Distributed campaign service: coordinator/worker fabric (``repro-serve``).

The file-based shard queue (:mod:`repro.runtime.shard`) coordinates
workers through a shared directory; this package promotes it into a
long-running client/server fabric for multi-machine campaigns:

* :mod:`repro.serve.protocol` — the versioned, line-delimited JSON wire
  protocol (``repro-serve`` v1);
* :mod:`repro.serve.coordinator` — the asyncio coordinator service: it
  owns the campaign directories, grants shard leases, journals streamed
  cell results, and persists every state transition through the same
  atomic manifest/merge machinery as the file queue — so merged
  artifacts stay byte-identical to an uninterrupted serial run;
* :mod:`repro.serve.worker` — the thin synchronous worker client:
  lease, execute, stream results, heartbeat, retry with backoff;
* :mod:`repro.serve.client` — the submit/inspect client plus
  :class:`~repro.serve.client.ServiceBackend`, the
  :class:`~repro.runtime.executor.SweepExecutor` that routes ``run()``
  through a coordinator (``make_executor(service_addr=...)``).
"""

from repro.serve.protocol import PROTOCOL_FORMAT, PROTOCOL_VERSION

__all__ = ["PROTOCOL_FORMAT", "PROTOCOL_VERSION"]
