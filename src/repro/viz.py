"""SVG schedule diagrams (Fig. 2/3-style) from traces.

Renders a recorded schedule as a self-contained SVG: one row per CPU
with execution rectangles colored by task, plus (for level-C tasks)
release (▲), priority-point (▽) and completion (│) markers and the
virtual-clock speed profile along the bottom — the same visual language
as the paper's example figures.

Pure string generation, no plotting dependency; the output opens in any
browser. Used by ``examples/figure2_walkthrough.py --svg`` and validated
structurally (well-formed XML, one rect per interval) in
``tests/test_viz.py``.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence

from repro.model.task import CriticalityLevel, Task
from repro.sim.trace import Trace

__all__ = ["svg_gantt", "PALETTE"]

#: Color-blind-safe categorical palette (Okabe-Ito), cycled per task.
PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#999999",
)

_ROW_H = 34
_GUTTER = 70
_TOP = 28
_SPEED_H = 26


def _esc(s: str) -> str:
    return html.escape(s, quote=True)


def svg_gantt(
    trace: Trace,
    tasks: Sequence[Task],
    t_end: float,
    width: int = 960,
    title: str = "",
    mark_level_c: bool = True,
) -> str:
    """Render *trace* (with interval recording) as an SVG string.

    Parameters
    ----------
    trace:
        A finished trace with ``record_intervals`` enabled.
    tasks:
        The tasks (for labels and level-C marker data).
    t_end:
        Time-axis end.
    width:
        Pixel width of the drawing.
    title:
        Optional caption.
    mark_level_c:
        Draw release/PP/completion markers for level-C jobs.
    """
    if not trace.record_intervals:
        raise ValueError("interval recording was disabled for this trace")
    if t_end <= 0:
        raise ValueError(f"t_end must be > 0, got {t_end}")
    by_id: Dict[int, Task] = {t.task_id: t for t in tasks}
    color: Dict[int, str] = {
        t.task_id: PALETTE[i % len(PALETTE)] for i, t in enumerate(tasks)
    }
    cpus = sorted({iv.cpu for iv in trace.intervals})
    if not cpus:
        cpus = [0]
    scale = (width - _GUTTER - 10) / t_end

    def x(t: float) -> float:
        return _GUTTER + t * scale

    rows = len(cpus)
    height = _TOP + rows * _ROW_H + _SPEED_H + 46
    out: List[str] = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">'
    )
    out.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    if title:
        out.append(f'<text x="{_GUTTER}" y="16" font-size="13">{_esc(title)}</text>')

    # Time grid.
    step = max(1, int(round(t_end / 12)))
    for tick in range(0, int(t_end) + 1, step):
        xt = x(tick)
        out.append(
            f'<line x1="{xt:.1f}" y1="{_TOP}" x2="{xt:.1f}" '
            f'y2="{_TOP + rows * _ROW_H}" stroke="#ddd"/>'
        )
        out.append(
            f'<text x="{xt:.1f}" y="{_TOP + rows * _ROW_H + 14}" '
            f'text-anchor="middle" fill="#555">{tick}</text>'
        )

    # CPU rows and execution rectangles.
    row_y = {cpu: _TOP + i * _ROW_H for i, cpu in enumerate(cpus)}
    for cpu in cpus:
        y = row_y[cpu]
        out.append(
            f'<text x="6" y="{y + _ROW_H * 0.65:.1f}" fill="#333">CPU{cpu}</text>'
        )
        out.append(
            f'<line x1="{_GUTTER}" y1="{y + _ROW_H - 6}" x2="{width - 10}" '
            f'y2="{y + _ROW_H - 6}" stroke="#999"/>'
        )
    for iv in trace.intervals:
        if iv.start >= t_end:
            continue
        y = row_y[iv.cpu]
        x0, x1 = x(iv.start), x(min(iv.end, t_end))
        c = color.get(iv.task_id, "#bbb")
        label = by_id[iv.task_id].label if iv.task_id in by_id else str(iv.task_id)
        out.append(
            f'<rect class="exec" x="{x0:.1f}" y="{y + 4}" '
            f'width="{max(0.5, x1 - x0):.1f}" height="{_ROW_H - 12}" '
            f'fill="{c}" fill-opacity="0.85">'
            f"<title>{_esc(label)},{iv.job_index} [{iv.start:g}, {iv.end:g})</title>"
            f"</rect>"
        )

    # Level-C job markers.
    if mark_level_c:
        y_base = _TOP + rows * _ROW_H
        for rec in trace.jobs:
            if rec.level is not CriticalityLevel.C or rec.release >= t_end:
                continue
            c = color.get(rec.task_id, "#333")
            xr = x(rec.release)
            out.append(
                f'<path class="release" d="M {xr:.1f} {y_base + 24} l 4 7 l -8 0 z" '
                f'fill="{c}"><title>{rec.task_id},{rec.index} released {rec.release:g}'
                f"</title></path>"
            )
            if rec.actual_pp is not None and rec.actual_pp < t_end:
                xp = x(rec.actual_pp)
                out.append(
                    f'<path class="pp" d="M {xp:.1f} {y_base + 31} l 4 -7 l -8 0 z" '
                    f'fill="none" stroke="{c}"/>'
                )
            if rec.completion is not None and rec.completion < t_end:
                xc = x(rec.completion)
                out.append(
                    f'<line class="completion" x1="{xc:.1f}" y1="{y_base + 22}" '
                    f'x2="{xc:.1f}" y2="{y_base + 33}" stroke="{c}" stroke-width="2"/>'
                )

    # Virtual-clock speed profile.
    y_speed = _TOP + rows * _ROW_H + 38
    out.append(f'<text x="6" y="{y_speed + 8}" fill="#333">s(t)</text>')
    changes = [(0.0, 1.0)] + list(trace.speed_changes) + [(t_end, None)]
    for (t0, s0), (t1, _) in zip(changes, changes[1:]):
        if s0 is None or t0 >= t_end:
            continue
        t1c = min(t1, t_end)
        yl = y_speed + (1.0 - s0) * _SPEED_H * 0.6
        out.append(
            f'<line class="speed" x1="{x(t0):.1f}" y1="{yl:.1f}" '
            f'x2="{x(t1c):.1f}" y2="{yl:.1f}" stroke="#D55E00" stroke-width="2"/>'
        )
        if s0 != 1.0:
            out.append(
                f'<text x="{x((t0 + t1c) / 2):.1f}" y="{yl - 3:.1f}" '
                f'text-anchor="middle" fill="#D55E00">s={s0:g}</text>'
            )
    out.append("</svg>")
    return "\n".join(out)
