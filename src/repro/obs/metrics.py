"""A lightweight metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per measured component (a kernel, an
executor); instruments are created on first use and looked up by dotted
name (``kernel.pick_next.ns``, ``executor.cell.ns``).  Everything is
plain Python — no locks, no background threads — because the simulator
is single-threaded per process; cross-process aggregation happens by
value (workers return numbers, the parent records them).

Histograms keep their raw samples (sweeps record at most a few hundred
thousand values), so percentile summaries are exact rather than
sketched.  :meth:`MetricsRegistry.to_dict` exports everything as a
JSON-ready document for ``--metrics-out`` and the benchmark artifacts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]

#: Percentiles reported by default in histogram summaries.
DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got inc({n})")
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)


class Histogram:
    """A distribution of samples with exact percentile queries."""

    __slots__ = ("_samples", "_sorted")

    def __init__(self) -> None:
        self._samples: List[Number] = []
        self._sorted = True

    def record(self, value: Number) -> None:
        """Add one sample."""
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    def record_many(self, values: Sequence[Number]) -> None:
        """Add a batch of samples."""
        for v in values:
            self.record(v)

    @property
    def samples(self) -> List[Number]:
        """The raw samples, in recording order."""
        return list(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return float(sum(self._samples))

    @property
    def mean(self) -> float:
        return self.total / len(self._samples) if self._samples else 0.0

    @property
    def min(self) -> float:
        return float(min(self._samples)) if self._samples else 0.0

    @property
    def max(self) -> float:
        return float(max(self._samples)) if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile via linear interpolation (p in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        xs = self._samples
        if len(xs) == 1:
            return float(xs[0])
        rank = (p / 100.0) * (len(xs) - 1)
        lo = int(rank)
        frac = rank - lo
        if lo + 1 >= len(xs):
            return float(xs[-1])
        return float(xs[lo]) + frac * (float(xs[lo + 1]) - float(xs[lo]))

    def summary(self, percentiles: Sequence[float] = DEFAULT_PERCENTILES) -> Dict[str, Any]:
        """JSON-ready summary: count/mean/min/max plus requested percentiles."""
        doc: Dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for p in percentiles:
            doc[f"p{p:g}"] = self.percentile(p)
        return doc


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument lookup (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Every registered instrument name, sorted."""
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def to_dict(
        self, percentiles: Sequence[float] = DEFAULT_PERCENTILES
    ) -> Dict[str, Any]:
        """All instruments as one JSON-ready document."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.summary(percentiles) for k, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
