"""Fleet-level campaign telemetry: worker time series over the shard fabric.

PR 5's campaign directories already carry the *liveness* signal (lease
heartbeats) and the *completion* signal (shard manifests); this module
adds the **throughput** signal.  Each worker appends versioned NDJSON
telemetry records next to its heartbeat files — cells/sec and
events/sec per kernel backend, cache hit-rate, lease
acquisitions/steals, batch-slice counts, RSS, and cumulative per-phase
kernel timings — and any other process can reconstruct the campaign's
live state *from the files alone*: ``repro-mc2 status --watch`` and
``repro-mc2 top`` render dashboards, and :mod:`repro.obs.export` turns
the same data into Prometheus textfiles and canonical JSON snapshots.
No coordinator is involved, so the record format doubles as the wire
format when the ROADMAP's client/server campaign service lands.

Design rules (shared with every other observability layer here):

* **Result-neutral.**  Telemetry never enters canonical RunSpec JSON,
  result-cache keys, shard manifests, or merged artifacts — like
  :class:`~repro.runtime.spec.ObsSpec`, turning it on cannot perturb a
  single result byte.  ``tests/runtime/test_shard_telemetry.py`` pins
  ``merged.json`` byte-identity with telemetry on vs off.
* **Torn-tolerant.**  Records are appended with
  :func:`repro.util.atomicio.append_line` (one ``O_APPEND`` write per
  record); a SIGKILLed worker leaves at most one torn final line, which
  :func:`read_telemetry` silently skips — mirroring how torn shard
  manifests read as missing.
* **Deterministic aggregation.**  :class:`TelemetryAggregator` sorts
  workers by name and records by sequence number and deduplicates on
  ``(worker, seq)``, so the canonical aggregate JSON is byte-identical
  regardless of file discovery order or double reads.

Record schema (``repro-telemetry`` v1, one JSON object per line)::

    {"rec": "meta", "format": "repro-telemetry", "version": 1,
     "owner": ..., "campaign": ..., "pid": ..., "host": ...}
    {"rec": "sample", "seq": 0, "wall": ..., "cells_done": ...,
     "cells_run": ..., "cache_hits": ..., "events": ...,
     "cells_per_sec": ..., "events_per_sec": ..., "rss_bytes": ...,
     "shards_claimed": ..., "leases_acquired": ..., "leases_stolen": ...,
     "batch_slices": ..., "backend": ..., "batch": ...,
     "phases": {"dispatch": {"count": ..., "sampled_ns": ...,
                             "samples": ...}, ...}}

Counters are cumulative per worker (rates are the writer's view of the
interval since its previous sample; aggregators can recompute any
windowing they like from the deltas).  The final sample of a clean
shutdown carries ``"final": true``.

The second leg is :class:`PhaseProfiler`: cheap per-phase
counters/timers for both kernel backends (engine pop, dispatch, monitor
delivery, release-timer re-arm).  It is deliberately a *process-global*
toggle (:func:`enable_phase_profiling`) read once at kernel
construction — a :class:`~repro.runtime.spec.KernelSpec` field would
enter canonical RunSpec JSON and split the result cache, which is
exactly what observability must never do.  Costs when enabled stay
inside the ≤2% gate of ``benchmarks/bench_trace_overhead.py`` because
counts ride on existing loop variables and wall-clock sampling touches
only every :data:`PHASE_SAMPLE_MASK`+1-th event.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Union

from repro.util.atomicio import append_line

__all__ = [
    "TELEMETRY_FORMAT",
    "TELEMETRY_VERSION",
    "AGGREGATE_FORMAT",
    "PHASES",
    "PHASE_SAMPLE_MASK",
    "PhaseProfiler",
    "PHASE_PROFILER",
    "enable_phase_profiling",
    "rss_bytes",
    "telemetry_dir",
    "telemetry_path",
    "TelemetryWriter",
    "read_telemetry",
    "iter_telemetry_files",
    "TelemetryAggregator",
    "aggregate_campaign",
    "WorkerStatus",
    "worker_statuses",
    "render_status",
    "render_top",
]

TELEMETRY_FORMAT = "repro-telemetry"
TELEMETRY_VERSION = 1
AGGREGATE_FORMAT = "repro-telemetry-aggregate"
AGGREGATE_VERSION = 1

_CANON = dict(sort_keys=True, separators=(",", ":"), allow_nan=False)

Pathish = Union[str, "os.PathLike[str]"]

#: The kernel phases both backends account for.
PHASES = ("engine_pop", "dispatch", "monitor", "timer_rearm")

#: Wall-clock sampling mask: a phase timer fires only when
#: ``events & PHASE_SAMPLE_MASK == 0`` (every 128th event), so enabling
#: phase profiling adds one counter increment per event and two
#: ``perf_counter_ns`` calls per 128 events — the price the ≤2%
#: overhead gate in ``bench_trace_overhead.py`` holds the line on.
PHASE_SAMPLE_MASK = 127


class PhaseProfiler:
    """Process-wide accumulator of per-phase kernel counters/timers.

    ``counts`` are exact (every occurrence), ``sampled_ns``/``samples``
    are a 1-in-128 wall-clock sample of the phase's duration — enough to
    estimate mean cost per occurrence without paying two timer calls per
    event.  Kernels read :attr:`enabled` once at construction (the same
    zero-cost pattern as ``tracer.enabled``) and flush their totals here
    in ``_finalize``, so the profiler aggregates across every kernel the
    process runs.
    """

    __slots__ = ("enabled", "counts", "sampled_ns", "samples")

    def __init__(self) -> None:
        self.enabled = False
        self.counts: Dict[str, int] = {p: 0 for p in PHASES}
        self.sampled_ns: Dict[str, int] = {p: 0 for p in PHASES}
        self.samples: Dict[str, int] = {p: 0 for p in PHASES}

    def reset(self) -> None:
        for p in PHASES:
            self.counts[p] = 0
            self.sampled_ns[p] = 0
            self.samples[p] = 0

    def add(self, phase: str, count: int = 0, ns: int = 0, samples: int = 0) -> None:
        """Accumulate one kernel's totals for *phase* (create-on-first-use)."""
        self.counts[phase] = self.counts.get(phase, 0) + count
        self.sampled_ns[phase] = self.sampled_ns.get(phase, 0) + ns
        self.samples[phase] = self.samples.get(phase, 0) + samples

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """JSON-ready cumulative totals, stable key order."""
        return {
            p: {
                "count": self.counts.get(p, 0),
                "sampled_ns": self.sampled_ns.get(p, 0),
                "samples": self.samples.get(p, 0),
            }
            for p in sorted(self.counts)
        }


#: The process-global profiler kernels consult at construction.
PHASE_PROFILER = PhaseProfiler()


def enable_phase_profiling(enabled: bool = True) -> PhaseProfiler:
    """Turn phase profiling on/off for kernels built *after* this call.

    Deliberately process-global rather than a spec field: phase
    profiling must never enter canonical RunSpec JSON (it would split
    result-cache keyspaces for an observation-only toggle).  Worker
    processes enable it when campaign telemetry is on.
    """
    PHASE_PROFILER.enabled = enabled
    return PHASE_PROFILER


def rss_bytes() -> int:
    """This process's resident set size, without psutil.

    Reads ``/proc/self/status`` (Linux); falls back to
    ``resource.getrusage`` (portable, kilobyte granularity); returns 0
    when neither source is available.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return 0


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def _sanitize_owner(owner: str) -> str:
    """Owner string -> safe file stem (owners look like ``host:pid:w0``)."""
    return "".join(c if (c.isalnum() or c in "._-") else "_" for c in owner)


def telemetry_dir(campaign_dir: Pathish) -> pathlib.Path:
    """Where a campaign's telemetry streams live (next to ``leases/``)."""
    return pathlib.Path(campaign_dir) / "telemetry"


def telemetry_path(campaign_dir: Pathish, owner: str) -> pathlib.Path:
    return telemetry_dir(campaign_dir) / f"{_sanitize_owner(owner)}.ndjson"


class TelemetryWriter:
    """Append one worker's telemetry stream (cumulative counters + rates).

    The writer owns the emission cadence: counter updates are cheap
    in-memory increments, and :meth:`maybe_sample` appends a record at
    most every ``interval_s`` seconds (:meth:`sample` with
    ``force=True`` — used at shard boundaries and shutdown — always
    writes).  Each record is a single ``O_APPEND`` write, so concurrent
    readers never see a torn *interior* line.

    Two clocks: ``clock`` (wall) stamps records for cross-host display
    and liveness, while ``mono`` (monotonic) drives the sampling
    throttle and the interval *rates* — a wall-clock step (NTP slew,
    suspend/resume) must never yield negative or absurd
    ``cells_per_sec``/``events_per_sec``.  Non-positive monotonic
    intervals (first sample, duplicate timestamps) report zero rates.

    ``sink`` replaces the file with a callable taking one canonical
    record line (no trailing newline): service workers
    (:mod:`repro.serve.worker`) relay records to the coordinator over
    the wire instead of the filesystem, and the coordinator appends
    them to the campaign's ``telemetry/`` stream — same bytes, same
    readers.  With a sink, ``path`` may be ``None``.
    """

    def __init__(
        self,
        path: Optional[Pathish],
        owner: str,
        campaign: str = "",
        interval_s: float = 0.5,
        clock: Callable[[], float] = time.time,
        mono: Callable[[], float] = time.monotonic,
        rss_fn: Callable[[], int] = rss_bytes,
        backend: str = "",
        batch: bool = False,
        phase_profiler: Optional[PhaseProfiler] = None,
        sink: Optional[Callable[[str], None]] = None,
    ) -> None:
        if path is None and sink is None:
            raise ValueError("TelemetryWriter needs a path or a sink")
        self.path = pathlib.Path(path) if path is not None else None
        self._sink = sink
        self.owner = owner
        self.interval_s = interval_s
        self._clock = clock
        self._mono = mono
        self._rss_fn = rss_fn
        self.backend = backend
        self.batch = batch
        self._profiler = phase_profiler if phase_profiler is not None else PHASE_PROFILER
        self._seq = 0
        self._last_mono = float("-inf")
        # (cells_done, events, mono) at last sample; mono None until then.
        self._prev: tuple = (0, 0, None)
        # Cumulative counters.
        self.cells_done = 0
        self.cells_run = 0
        self.cache_hits = 0
        self.events = 0
        self.shards_claimed = 0
        self.shards_done = 0
        self.leases_acquired = 0
        self.leases_stolen = 0
        self.batch_slices = 0
        # Provenance spot-check accounting (coordinator-side streams).
        self.cells_verified = 0
        self.verify_failures = 0
        self.quarantines = 0
        self.closed = False
        self._emit(
            json.dumps(
                {
                    "rec": "meta",
                    "format": TELEMETRY_FORMAT,
                    "version": TELEMETRY_VERSION,
                    "owner": owner,
                    "campaign": campaign,
                    "pid": os.getpid(),
                    "host": os.uname().nodename,
                    "start": self._clock(),
                    "mono_start": self._mono(),
                },
                **_CANON,
            )
        )

    def _emit(self, line: str) -> None:
        if self._sink is not None:
            self._sink(line)
        else:
            assert self.path is not None
            append_line(self.path, line)

    # -- counter updates ----------------------------------------------
    def lease_acquired(self, stolen: bool = False) -> None:
        self.leases_acquired += 1
        if stolen:
            self.leases_stolen += 1

    def shard_claimed(self) -> None:
        self.shards_claimed += 1

    def shard_finished(self) -> None:
        self.shards_done += 1
        self.sample(force=True)

    def batch_slice(self) -> None:
        self.batch_slices += 1

    def cell_verified(self, ok: bool) -> None:
        """One cell re-executed by the verification spot-check."""
        self.cells_verified += 1
        if not ok:
            self.verify_failures += 1

    def shard_quarantined(self) -> None:
        """One shard failed verification and was re-queued."""
        self.quarantines += 1
        self.sample(force=True)

    def cell_done(self, cached: bool, events: int = 0, wall_ns: int = 0) -> None:
        self.cells_done += 1
        if cached:
            self.cache_hits += 1
        else:
            self.cells_run += 1
        self.events += int(events)
        self.maybe_sample()

    # -- emission ------------------------------------------------------
    def maybe_sample(self) -> None:
        if self._mono() - self._last_mono >= self.interval_s:
            self.sample()

    def sample(
        self, force: bool = False, final: bool = False, now: Optional[float] = None
    ) -> None:
        if self.closed:
            return
        wall = self._clock() if now is None else now
        mono = self._mono()
        if not force and not final and mono - self._last_mono < self.interval_s:
            return
        prev_cells, prev_events, prev_mono = self._prev
        # Interval from the monotonic clock only: a wall step must not
        # produce negative (or inflated) rates.  dt <= 0 -> rates 0.
        dt = mono - prev_mono if prev_mono is not None else 0.0
        record: Dict[str, Any] = {
            "rec": "sample",
            "seq": self._seq,
            "wall": wall,
            "mono": mono,
            "cells_done": self.cells_done,
            "cells_run": self.cells_run,
            "cache_hits": self.cache_hits,
            "events": self.events,
            "shards_claimed": self.shards_claimed,
            "shards_done": self.shards_done,
            "leases_acquired": self.leases_acquired,
            "leases_stolen": self.leases_stolen,
            "batch_slices": self.batch_slices,
            "cells_verified": self.cells_verified,
            "verify_failures": self.verify_failures,
            "quarantines": self.quarantines,
            "cells_per_sec": (self.cells_done - prev_cells) / dt if dt > 0 else 0.0,
            "events_per_sec": (self.events - prev_events) / dt if dt > 0 else 0.0,
            "rss_bytes": self._rss_fn(),
            "backend": self.backend,
            "batch": self.batch,
            "phases": self._profiler.snapshot(),
        }
        if final:
            record["final"] = True
        self._emit(json.dumps(record, **_CANON))
        self._seq += 1
        self._last_mono = mono
        self._prev = (self.cells_done, self.events, mono)

    def close(self) -> None:
        """Emit the final sample and stop accepting writes."""
        if not self.closed:
            self.sample(force=True, final=True)
            self.closed = True


# ----------------------------------------------------------------------
# Reader / aggregation
# ----------------------------------------------------------------------
def read_telemetry(path: Pathish) -> Iterator[Dict[str, Any]]:
    """Iterate the records of one telemetry stream, skipping torn lines.

    Unlike :func:`repro.obs.tracer.read_trace` (which raises on damage,
    because a trace is a complete artifact), telemetry is read *live*
    from files that crashed or still-running writers are appending to —
    a torn or truncated line is expected, not an error, and is simply
    skipped.  Records from a non-matching format header are rejected
    wholesale.
    """
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn/truncated line (killed writer): skip
            if not isinstance(record, dict):
                continue
            if record.get("rec") == "meta" and (
                record.get("format") != TELEMETRY_FORMAT
                or record.get("version") != TELEMETRY_VERSION
            ):
                return  # foreign stream: ignore entirely
            yield record


def iter_telemetry_files(campaign_dir: Pathish) -> List[pathlib.Path]:
    """A campaign's telemetry stream files, sorted by name."""
    tdir = telemetry_dir(campaign_dir)
    if not tdir.is_dir():
        return []
    return sorted(p for p in tdir.iterdir() if p.suffix == ".ndjson")


class TelemetryAggregator:
    """Merge per-worker telemetry streams into one deterministic view.

    Feed it files (:meth:`add_file`) or raw records (:meth:`add_records`)
    in *any* order; :meth:`aggregate` always produces the same document
    for the same underlying records: workers sort by name, each worker's
    samples sort by ``seq``, duplicates (same worker, same seq — e.g. a
    file read twice) collapse, and :meth:`to_json` is canonical JSON.
    """

    def __init__(self) -> None:
        self._meta: Dict[str, Dict[str, Any]] = {}
        self._samples: Dict[str, Dict[int, Dict[str, Any]]] = {}
        self._campaign = ""

    def add_file(self, path: Pathish) -> None:
        self.add_records(read_telemetry(path))

    def add_records(self, records: Iterable[Dict[str, Any]]) -> None:
        owner = ""
        for record in records:
            rec = record.get("rec")
            if rec == "meta":
                owner = str(record.get("owner", ""))
                self._meta.setdefault(owner, record)
                if not self._campaign and record.get("campaign"):
                    self._campaign = str(record["campaign"])
            elif rec == "sample":
                try:
                    seq = int(record["seq"])
                except (KeyError, TypeError, ValueError):
                    continue
                self._samples.setdefault(owner, {})[seq] = record

    def add_campaign(self, campaign_dir: Pathish) -> None:
        for path in iter_telemetry_files(campaign_dir):
            self.add_file(path)

    # ------------------------------------------------------------------
    def aggregate(self) -> Dict[str, Any]:
        """The merged campaign-level document (JSON-ready, deterministic)."""
        workers: Dict[str, Any] = {}
        totals = {
            "cells_done": 0,
            "cells_run": 0,
            "cache_hits": 0,
            "events": 0,
            "shards_claimed": 0,
            "shards_done": 0,
            "leases_acquired": 0,
            "leases_stolen": 0,
            "batch_slices": 0,
            "cells_verified": 0,
            "verify_failures": 0,
            "quarantines": 0,
        }
        phase_totals: Dict[str, Dict[str, int]] = {}
        wall_rate_cells = 0.0
        wall_rate_events = 0.0
        for owner in sorted(self._samples):
            by_seq = self._samples[owner]
            ordered = [by_seq[s] for s in sorted(by_seq)]
            if not ordered:
                continue
            last = ordered[-1]
            first = ordered[0]
            meta = self._meta.get(owner, {})
            start = float(meta.get("start", first.get("wall", 0.0)))
            # Lifetime from the monotonic clock when the stream carries
            # it (format >= this fix); wall only as a legacy fallback.
            mono_start = meta.get("mono_start", first.get("mono"))
            if mono_start is not None and last.get("mono") is not None:
                lifetime = float(last["mono"]) - float(mono_start)
            else:
                lifetime = float(last.get("wall", 0.0)) - start
            lifetime = max(lifetime, 0.0)
            cells = int(last.get("cells_done", 0))
            events = int(last.get("events", 0))
            workers[owner] = {
                "samples": len(ordered),
                "first_wall": float(first.get("wall", 0.0)),
                "last_wall": float(last.get("wall", 0.0)),
                "cells_done": cells,
                "cells_run": int(last.get("cells_run", 0)),
                "cache_hits": int(last.get("cache_hits", 0)),
                "events": events,
                "shards_claimed": int(last.get("shards_claimed", 0)),
                "shards_done": int(last.get("shards_done", 0)),
                "leases_acquired": int(last.get("leases_acquired", 0)),
                "leases_stolen": int(last.get("leases_stolen", 0)),
                "batch_slices": int(last.get("batch_slices", 0)),
                "cells_verified": int(last.get("cells_verified", 0)),
                "verify_failures": int(last.get("verify_failures", 0)),
                "quarantines": int(last.get("quarantines", 0)),
                "rss_bytes": int(last.get("rss_bytes", 0)),
                "backend": str(last.get("backend", "")),
                "batch": bool(last.get("batch", False)),
                "final": bool(last.get("final", False)),
                "cells_per_sec": cells / lifetime if lifetime > 0 else 0.0,
                "events_per_sec": events / lifetime if lifetime > 0 else 0.0,
                "phases": last.get("phases", {}),
                "series": [
                    [
                        float(s.get("wall", 0.0)),
                        int(s.get("cells_done", 0)),
                        int(s.get("events", 0)),
                    ]
                    for s in ordered
                ],
            }
            for key in totals:
                totals[key] += workers[owner][key]
            for phase, vals in (last.get("phases") or {}).items():
                agg = phase_totals.setdefault(
                    phase, {"count": 0, "sampled_ns": 0, "samples": 0}
                )
                for k in agg:
                    agg[k] += int(vals.get(k, 0))
            if lifetime > 0:
                wall_rate_cells += cells / lifetime
                wall_rate_events += events / lifetime
        return {
            "format": AGGREGATE_FORMAT,
            "version": AGGREGATE_VERSION,
            "campaign": self._campaign,
            "workers": workers,
            "totals": totals,
            "phases": {p: phase_totals[p] for p in sorted(phase_totals)},
            "rates": {
                "cells_per_sec": wall_rate_cells,
                "events_per_sec": wall_rate_events,
            },
        }

    def to_json(self) -> str:
        """Canonical JSON of :meth:`aggregate` — byte-identical for the
        same records regardless of ingestion order."""
        return json.dumps(self.aggregate(), **_CANON) + "\n"


def aggregate_campaign(campaign_dir: Pathish) -> Dict[str, Any]:
    """One-shot: aggregate every telemetry stream under *campaign_dir*."""
    agg = TelemetryAggregator()
    agg.add_campaign(campaign_dir)
    return agg.aggregate()


# ----------------------------------------------------------------------
# Live status (files -> dashboard)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerStatus:
    """One worker's live state, reconstructed from campaign files alone."""

    owner: str
    #: Seconds since the worker's most recent telemetry sample.
    age_s: float
    #: ``"live"`` (sampled within ttl), ``"done"`` (final sample seen),
    #: or ``"stale"`` (no recent sample, no clean shutdown).
    state: str
    cells_done: int
    cells_run: int
    cache_hits: int
    events: int
    cells_per_sec: float
    events_per_sec: float
    rss_bytes: int
    backend: str
    shards_done: int
    leases_stolen: int


def worker_statuses(
    campaign_dir: Pathish,
    ttl: float = 15.0,
    now: Optional[float] = None,
    aggregate: Optional[Dict[str, Any]] = None,
) -> List[WorkerStatus]:
    """Per-worker liveness + throughput from the telemetry files."""
    agg = aggregate if aggregate is not None else aggregate_campaign(campaign_dir)
    wall_now = time.time() if now is None else now
    out: List[WorkerStatus] = []
    for owner, w in sorted(agg.get("workers", {}).items()):
        age = wall_now - float(w.get("last_wall", 0.0))
        if w.get("final"):
            state = "done"
        elif age <= ttl:
            state = "live"
        else:
            state = "stale"
        out.append(
            WorkerStatus(
                owner=owner,
                age_s=age,
                state=state,
                cells_done=int(w.get("cells_done", 0)),
                cells_run=int(w.get("cells_run", 0)),
                cache_hits=int(w.get("cache_hits", 0)),
                events=int(w.get("events", 0)),
                cells_per_sec=float(w.get("cells_per_sec", 0.0)),
                events_per_sec=float(w.get("events_per_sec", 0.0)),
                rss_bytes=int(w.get("rss_bytes", 0)),
                backend=str(w.get("backend", "")),
                shards_done=int(w.get("shards_done", 0)),
                leases_stolen=int(w.get("leases_stolen", 0)),
            )
        )
    return out


def _fmt_rate(x: float) -> str:
    if x >= 1e6:
        return f"{x / 1e6:.1f}M"
    if x >= 1e3:
        return f"{x / 1e3:.1f}k"
    return f"{x:.1f}"


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 30:
        return f"{n / (1 << 30):.1f}G"
    if n >= 1 << 20:
        return f"{n / (1 << 20):.0f}M"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.0f}k"
    return str(n)


def render_top(
    campaign_dir: Pathish, ttl: float = 15.0, now: Optional[float] = None
) -> str:
    """The ``repro-mc2 top`` table: one row per worker."""
    statuses = worker_statuses(campaign_dir, ttl=ttl, now=now)
    lines = [
        f"{'worker':<28}{'state':<7}{'age':>6}  {'cells':>7}{'run':>7}"
        f"{'hit':>6}  {'cells/s':>8}{'events/s':>9}{'rss':>6}  backend"
    ]
    if not statuses:
        lines.append("  (no telemetry streams found)")
    for s in statuses:
        lines.append(
            f"{s.owner[:27]:<28}{s.state:<7}{s.age_s:>5.0f}s  "
            f"{s.cells_done:>7}{s.cells_run:>7}{s.cache_hits:>6}  "
            f"{_fmt_rate(s.cells_per_sec):>8}{_fmt_rate(s.events_per_sec):>9}"
            f"{_fmt_bytes(s.rss_bytes):>6}  {s.backend}"
        )
    return "\n".join(lines)


def render_status(
    campaign_dir: Pathish, ttl: float = 15.0, now: Optional[float] = None
) -> str:
    """The ``repro-mc2 status`` dashboard for one campaign directory.

    Combines the durable truth (shard manifests, lease files — via
    :func:`repro.runtime.shard.campaign_status`) with the telemetry
    streams (throughput, phases) — all read from the directory, no
    process state needed.
    """
    from repro.runtime.shard import campaign_status

    shards = campaign_status(campaign_dir)
    agg = aggregate_campaign(campaign_dir)
    done = sum(1 for s in shards if s.state == "done")
    leased = sum(1 for s in shards if s.state == "leased")
    cells_done = sum(s.cells for s in shards if s.state == "done")
    cells_total = sum(s.cells for s in shards)
    pct = 100.0 * cells_done / cells_total if cells_total else 100.0
    rates = agg.get("rates", {})
    cps = float(rates.get("cells_per_sec", 0.0))
    lines = [
        f"campaign {str(agg.get('campaign', ''))[:12]}  "
        f"shards {done}/{len(shards)} done, {leased} leased  "
        f"cells {cells_done}/{cells_total} ({pct:.0f}%)",
    ]
    if cps > 0 and cells_total > cells_done:
        lines[0] += f"  eta {(cells_total - cells_done) / cps:.0f}s"
    totals = agg.get("totals", {})
    if totals.get("cells_done"):
        lines.append(
            f"throughput {_fmt_rate(cps)} cells/s, "
            f"{_fmt_rate(float(rates.get('events_per_sec', 0.0)))} events/s  "
            f"cache hits {totals.get('cache_hits', 0)}  "
            f"lease steals {totals.get('leases_stolen', 0)}  "
            f"batch slices {totals.get('batch_slices', 0)}"
        )
    if totals.get("cells_verified") or totals.get("quarantines"):
        lines.append(
            f"verification: {totals.get('cells_verified', 0)} cells re-executed, "
            f"{totals.get('verify_failures', 0)} failures, "
            f"{totals.get('quarantines', 0)} shard(s) quarantined"
        )
    phases = agg.get("phases", {})
    if phases:
        parts = []
        for name in PHASES:
            vals = phases.get(name)
            if not vals:
                continue
            count = vals.get("count", 0)
            samples = vals.get("samples", 0)
            mean_ns = vals.get("sampled_ns", 0) / samples if samples else 0.0
            parts.append(f"{name} {count} ({mean_ns:.0f}ns)")
        if parts:
            lines.append("phases: " + "  ".join(parts))
    lines.append("")
    lines.append(render_top(campaign_dir, ttl=ttl, now=now))
    return "\n".join(lines)
