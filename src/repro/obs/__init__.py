"""Observability: structured tracing, metrics, spans, progress.

``repro.obs`` is the simulator's counterpart of the tracing
infrastructure the paper's evaluation leaned on (Feather-Trace /
sched_trace on LITMUS^RT).  It is **zero-cost when disabled**: every
producer keeps a :class:`~repro.obs.tracer.NullTracer` by default and
guards each emission behind a single ``enabled`` flag check, so the
simulation hot path pays nothing until a real tracer is attached.

Pieces:

* :mod:`repro.obs.tracer` — the structured event stream (our
  ``sched_trace`` analog): job releases/completions, preemptions,
  migrations, execution intervals, virtual-clock speed changes, and
  monitor decisions, written as newline-delimited JSON.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms with percentile summaries and JSON export.
* :mod:`repro.obs.spans` — a context-manager timing API
  (``with spans.span("pick_next"): ...``) recording wall-clock
  durations into the metrics registry; spans nest into dotted paths.
* :mod:`repro.obs.chrome_trace` — convert a JSONL trace into Chrome
  trace-event format so schedules open in Perfetto /
  ``chrome://tracing``.
* :mod:`repro.obs.progress` — throttled sweep progress reporting
  (cells done/total, cache hit-rate, ETA).
* :mod:`repro.obs.report` — per-cell sweep accounting
  (:class:`~repro.obs.report.SweepReport`) exported by the runtime
  executors.
* :mod:`repro.obs.telemetry` — fleet-level campaign telemetry: workers
  append NDJSON time-series records (throughput, leases, RSS, kernel
  phase timings) next to their heartbeat files, aggregated
  deterministically from the files alone; plus the process-global
  :class:`~repro.obs.telemetry.PhaseProfiler` both kernel backends
  report into.
* :mod:`repro.obs.export` — Prometheus textfile + canonical JSON
  exporters over the telemetry aggregate.
"""

from repro.obs.chrome_trace import (
    chrome_trace_events,
    chrome_trace_from_jsonl,
    write_chrome_trace,
)
from repro.obs.export import (
    prometheus_lines,
    write_json_snapshot,
    write_prometheus_textfile,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.report import CellReport, SweepReport
from repro.obs.spans import SpanTimer
from repro.obs.telemetry import (
    PHASE_PROFILER,
    PhaseProfiler,
    TelemetryAggregator,
    TelemetryWriter,
    aggregate_campaign,
    enable_phase_profiling,
    read_telemetry,
    render_status,
    render_top,
    worker_statuses,
)
from repro.obs.tracer import (
    NULL_TRACER,
    EventName,
    JsonlTracer,
    NullTracer,
    Tracer,
    TraceSummary,
    read_trace,
    summarize_trace,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "EventName",
    "TraceSummary",
    "read_trace",
    "summarize_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanTimer",
    "ProgressReporter",
    "CellReport",
    "SweepReport",
    "chrome_trace_events",
    "chrome_trace_from_jsonl",
    "write_chrome_trace",
    "PhaseProfiler",
    "PHASE_PROFILER",
    "enable_phase_profiling",
    "TelemetryWriter",
    "TelemetryAggregator",
    "aggregate_campaign",
    "read_telemetry",
    "worker_statuses",
    "render_status",
    "render_top",
    "prometheus_lines",
    "write_prometheus_textfile",
    "write_json_snapshot",
]
