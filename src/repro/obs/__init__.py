"""Observability: structured tracing, metrics, spans, progress.

``repro.obs`` is the simulator's counterpart of the tracing
infrastructure the paper's evaluation leaned on (Feather-Trace /
sched_trace on LITMUS^RT).  It is **zero-cost when disabled**: every
producer keeps a :class:`~repro.obs.tracer.NullTracer` by default and
guards each emission behind a single ``enabled`` flag check, so the
simulation hot path pays nothing until a real tracer is attached.

Pieces:

* :mod:`repro.obs.tracer` — the structured event stream (our
  ``sched_trace`` analog): job releases/completions, preemptions,
  migrations, execution intervals, virtual-clock speed changes, and
  monitor decisions, written as newline-delimited JSON.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms with percentile summaries and JSON export.
* :mod:`repro.obs.spans` — a context-manager timing API
  (``with spans.span("pick_next"): ...``) recording wall-clock
  durations into the metrics registry; spans nest into dotted paths.
* :mod:`repro.obs.chrome_trace` — convert a JSONL trace into Chrome
  trace-event format so schedules open in Perfetto /
  ``chrome://tracing``.
* :mod:`repro.obs.progress` — throttled sweep progress reporting
  (cells done/total, cache hit-rate, ETA).
* :mod:`repro.obs.report` — per-cell sweep accounting
  (:class:`~repro.obs.report.SweepReport`) exported by the runtime
  executors.
"""

from repro.obs.chrome_trace import (
    chrome_trace_events,
    chrome_trace_from_jsonl,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.report import CellReport, SweepReport
from repro.obs.spans import SpanTimer
from repro.obs.tracer import (
    NULL_TRACER,
    EventName,
    JsonlTracer,
    NullTracer,
    Tracer,
    TraceSummary,
    read_trace,
    summarize_trace,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "EventName",
    "TraceSummary",
    "read_trace",
    "summarize_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanTimer",
    "ProgressReporter",
    "CellReport",
    "SweepReport",
    "chrome_trace_events",
    "chrome_trace_from_jsonl",
    "write_chrome_trace",
]
