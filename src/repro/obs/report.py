"""Per-cell sweep accounting: what a sweep actually did, cell by cell.

The runtime executors (:mod:`repro.runtime.executor`) build one
:class:`CellReport` per submitted :class:`~repro.runtime.spec.RunSpec`
— cache status, wall-clock time, simulated time, event count, and the
dissipation-truncation flag — and expose them as a :class:`SweepReport`
(``executor.report``).  The report is what ``--metrics-out`` archives
and what the CLI's truncation warnings read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.obs.metrics import Histogram

__all__ = ["CellReport", "SweepReport", "ShardReport", "render_shard_table"]

REPORT_FORMAT = "repro-sweep-report"
REPORT_VERSION = 1


@dataclass(frozen=True)
class CellReport:
    """One sweep cell, as executed."""

    #: Position in the submitted spec list.
    index: int
    #: Content address of the spec (sha256 prefix; "" when unhashed).
    key: str
    #: Scenario name (provenance for humans reading the report).
    scenario: str
    #: Monitor label.
    monitor: str
    #: Served from the result cache (wall_ns then ~0).
    cached: bool
    #: Wall-clock nanoseconds spent simulating this cell.
    wall_ns: int
    #: Simulation time at which the run stopped.
    sim_end: float
    #: Simulator events processed.
    events: int
    #: Recovery episode still open at the horizon (dissipation is a
    #: lower bound, not a measurement).
    truncated: bool
    #: Kernel backend that produced the result (``KernelSpec.backend``),
    #: so reports and telemetry rollups slice by backend without
    #: re-parsing RunSpecs.  Defaults match :class:`KernelSpec` /
    #: :class:`~repro.sim.kernel.KernelConfig` defaults.
    backend: str = "reference"
    #: Dispatcher strategy ("incremental" or "baseline").
    dispatcher: str = "incremental"
    #: Executed through the batched (task-set-sharing) path.
    batched: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "key": self.key,
            "scenario": self.scenario,
            "monitor": self.monitor,
            "cached": self.cached,
            "wall_ns": self.wall_ns,
            "sim_end": self.sim_end,
            "events": self.events,
            "truncated": self.truncated,
            "backend": self.backend,
            "dispatcher": self.dispatcher,
            "batched": self.batched,
        }


@dataclass(frozen=True)
class ShardReport:
    """One shard of a checkpointed campaign, as seen on disk.

    Built by :func:`repro.runtime.shard.campaign_status` from the
    campaign directory alone — manifests and lease files — so it reports
    the durable truth, not any process's in-memory view.
    """

    #: Position in the campaign's shard list.
    index: int
    #: Content address of the shard (campaign key + cell slice).
    shard_id: str
    #: Cells in this shard.
    cells: int
    #: ``"done"`` (manifest present), ``"leased"`` (a worker owns it),
    #: or ``"pending"`` (unowned, no manifest).
    state: str
    #: Manifest writer (done) or current lease holder (leased); "" else.
    owner: str
    #: Wall-clock nanoseconds the owning worker spent (done shards only).
    wall_ns: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "shard_id": self.shard_id,
            "cells": self.cells,
            "state": self.state,
            "owner": self.owner,
            "wall_ns": self.wall_ns,
        }


def render_shard_table(shards: List[ShardReport]) -> str:
    """Human-readable per-shard status (``repro-mc2 sweep status``)."""
    done = sum(1 for s in shards if s.state == "done")
    cells_done = sum(s.cells for s in shards if s.state == "done")
    cells_total = sum(s.cells for s in shards)
    lines = [
        f"{done}/{len(shards)} shards done "
        f"({cells_done}/{cells_total} cells)",
        f"{'shard':<7}{'id':<14}{'cells':>6}  {'state':<8}{'wall':>9}  owner",
    ]
    for s in shards:
        wall = f"{s.wall_ns / 1e6:.0f}ms" if s.wall_ns else "-"
        lines.append(
            f"{s.index:<7}{s.shard_id[:12]:<14}{s.cells:>6}  "
            f"{s.state:<8}{wall:>9}  {s.owner}"
        )
    return "\n".join(lines)


@dataclass
class SweepReport:
    """Every cell of one executor ``run()`` call, plus aggregates."""

    cells: List[CellReport] = field(default_factory=list)

    @property
    def cells_total(self) -> int:
        return len(self.cells)

    @property
    def cache_hits(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def cells_simulated(self) -> int:
        return sum(1 for c in self.cells if not c.cached)

    @property
    def truncated_cells(self) -> List[CellReport]:
        """Cells whose recovery was still open at the horizon."""
        return [c for c in self.cells if c.truncated]

    @property
    def wall_ns_total(self) -> int:
        return sum(c.wall_ns for c in self.cells)

    @property
    def events_total(self) -> int:
        return sum(c.events for c in self.cells)

    def wall_histogram(self) -> Histogram:
        """Per-cell wall-clock distribution (simulated cells only)."""
        h = Histogram()
        for c in self.cells:
            if not c.cached:
                h.record(c.wall_ns)
        return h

    def by_backend(self) -> Dict[str, Dict[str, Any]]:
        """Per-backend rollup: cells/events/wall sliced by kernel backend.

        Keys are ``"<backend>/<dispatcher>"`` (plus ``"+batch"`` when the
        batched path ran), so a mixed sweep — e.g. a soa-vs-reference
        comparison grid — reads off its per-core throughput without
        re-parsing RunSpecs.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for c in self.cells:
            label = f"{c.backend}/{c.dispatcher}" + ("+batch" if c.batched else "")
            agg = out.setdefault(
                label,
                {"cells": 0, "simulated": 0, "events": 0, "wall_ns": 0},
            )
            agg["cells"] += 1
            if not c.cached:
                agg["simulated"] += 1
                agg["wall_ns"] += c.wall_ns
            agg["events"] += c.events
        for agg in out.values():
            wall_s = agg["wall_ns"] / 1e9
            agg["events_per_sec"] = agg["events"] / wall_s if wall_s > 0 else 0.0
        return dict(sorted(out.items()))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready document (``--metrics-out`` payload)."""
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "summary": {
                "cells_total": self.cells_total,
                "cells_simulated": self.cells_simulated,
                "cache_hits": self.cache_hits,
                "truncated_cells": len(self.truncated_cells),
                "wall_ns_total": self.wall_ns_total,
                "events_total": self.events_total,
                "cell_wall_ns": self.wall_histogram().summary(),
                "by_backend": self.by_backend(),
            },
            "cells": [c.to_dict() for c in self.cells],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
