"""Structured event tracing: the simulator's ``sched_trace``.

A :class:`Tracer` receives structured events from the kernel and the
monitor as the simulation runs.  Two implementations ship:

* :class:`NullTracer` — the default.  ``enabled`` is ``False``, every
  emission is a no-op, and producers are expected to guard event
  construction behind ``tracer.enabled`` so a disabled tracer costs one
  attribute load per potential event.
* :class:`JsonlTracer` — streams events as newline-delimited JSON
  records to a file (or any text stream).  The format is line-oriented
  so traces can be tailed, grepped, and processed incrementally; see
  :mod:`repro.obs.chrome_trace` for the Perfetto conversion.

Record schema (one JSON object per line)::

    {"seq": 12, "t": 14.5, "ev": "job_release", ...event fields...}

``seq`` is a per-trace monotonic sequence number (ties in ``t`` keep
their emission order), ``t`` is simulation time, ``ev`` the event name.
The first record of every trace is a ``trace_meta`` header carrying the
format name/version plus whatever provenance the producer supplies
(spec key, scenario, monitor label, ...).

Event catalog (``docs/observability.md`` documents every field):

=================  ====================================================
``trace_meta``     format/version header + provenance
``job_release``    a job was released (kernel)
``job_complete``   a job completed (kernel)
``job_preempt``    a running, incomplete job lost its CPU (kernel)
``job_migrate``    a job resumed on a different CPU (kernel)
``exec_interval``  one maximal (job, CPU) execution interval (kernel)
``speed_change``   the kernel applied a virtual-clock speed (kernel)
``monitor_miss``   a tolerance miss was detected (monitor, Def. 1)
``monitor_speed``  the monitor requested a speed (Algorithms 3/4)
``monitor_exit``   idle-normal-instant recovery exit (Theorem 1)
``recovery_open``  a recovery episode opened (monitor)
``recovery_close`` a recovery episode closed (monitor)
``fault_inject``   a fault plane perturbed the run (repro.faults)
=================  ====================================================
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterator, List, Optional, Protocol, Tuple, Union

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "EventName",
    "Tracer",
    "NullTracer",
    "JsonlTracer",
    "NULL_TRACER",
    "read_trace",
    "TraceSummary",
    "summarize_trace",
]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


class EventName:
    """The event names producers emit (string constants, not an enum,
    so third-party producers can add kinds without touching this file)."""

    META = "trace_meta"
    JOB_RELEASE = "job_release"
    JOB_COMPLETE = "job_complete"
    JOB_PREEMPT = "job_preempt"
    JOB_MIGRATE = "job_migrate"
    EXEC_INTERVAL = "exec_interval"
    SPEED_CHANGE = "speed_change"
    MONITOR_MISS = "monitor_miss"
    MONITOR_SPEED = "monitor_speed"
    MONITOR_EXIT = "monitor_exit"
    RECOVERY_OPEN = "recovery_open"
    RECOVERY_CLOSE = "recovery_close"
    FAULT_INJECT = "fault_inject"


class Tracer(Protocol):
    """What the kernel/monitor need from a tracer.

    ``enabled`` is the hot-path contract: producers check it *before*
    assembling event fields, so a disabled tracer never materializes a
    record.
    """

    enabled: bool

    def emit(self, ev: str, t: float, **fields: Any) -> None:
        """Record one event at simulation time *t*."""
        ...


class NullTracer:
    """The no-op tracer: zero events, (near-)zero overhead."""

    enabled: bool = False

    def emit(self, ev: str, t: float, **fields: Any) -> None:  # pragma: no cover
        pass

    def close(self) -> None:
        pass


#: Shared default instance — stateless, so one is enough for everybody.
NULL_TRACER = NullTracer()


class JsonlTracer:
    """Stream events as newline-delimited JSON.

    Parameters
    ----------
    sink:
        A path (opened/overwritten, closed by :meth:`close`) or an
        already-open text stream (left open; caller owns it).
    meta:
        Extra fields for the ``trace_meta`` header record (provenance:
        spec key, scenario, monitor label, ...).

    Usable as a context manager; :attr:`counts` tallies events by name
    as they are written so summaries don't require re-reading the file.
    """

    enabled: bool = True

    def __init__(
        self,
        sink: Union[str, pathlib.Path, IO[str]],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if isinstance(sink, (str, pathlib.Path)):
            self.path: Optional[pathlib.Path] = pathlib.Path(sink)
            self._fh: IO[str] = self.path.open("w", encoding="utf-8")
            self._owns_fh = True
        else:
            self.path = None
            self._fh = sink
            self._owns_fh = False
        self._seq = 0
        #: Events written so far, by event name (header included).
        self.counts: Dict[str, int] = {}
        self.emit(
            EventName.META,
            0.0,
            format=TRACE_FORMAT,
            version=TRACE_VERSION,
            **(meta or {}),
        )

    def emit(self, ev: str, t: float, **fields: Any) -> None:
        record: Dict[str, Any] = {"seq": self._seq, "t": t, "ev": ev}
        record.update(fields)
        self._seq += 1
        self.counts[ev] = self.counts.get(ev, 0) + 1
        self._fh.write(json.dumps(record, sort_keys=True, allow_nan=False))
        self._fh.write("\n")

    def close(self) -> None:
        """Flush and (if this tracer opened the file) close the sink."""
        if self._owns_fh:
            if not self._fh.closed:
                self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_trace(path: Union[str, pathlib.Path]) -> Iterator[Dict[str, Any]]:
    """Iterate the records of a JSONL trace file.

    Validates the ``trace_meta`` header (first record) and raises
    :class:`ValueError` on format mismatch or malformed lines.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if lineno == 1:
                if record.get("ev") != EventName.META:
                    raise ValueError(f"{path}: missing trace_meta header record")
                if record.get("format") != TRACE_FORMAT:
                    raise ValueError(
                        f"{path}: not a {TRACE_FORMAT} trace "
                        f"(format={record.get('format')!r})"
                    )
                if record.get("version") != TRACE_VERSION:
                    raise ValueError(
                        f"{path}: unsupported trace version {record.get('version')!r}"
                    )
            yield record


@dataclass
class TraceSummary:
    """Aggregate view of one trace (what ``repro-mc2 trace summarize`` prints)."""

    #: Events by name, header included.
    counts: Dict[str, int] = field(default_factory=dict)
    #: Total records (= sum of counts).
    events: int = 0
    #: Simulation-time range covered by non-header events.
    t_min: float = 0.0
    t_max: float = 0.0
    #: Distinct task ids seen on job events.
    tasks: int = 0
    #: (t, speed) of the first ``max_speed_changes`` ``speed_change``
    #: events, in order (a bounded sample — see ``speed_changes_total``).
    speed_changes: List[Tuple[float, float]] = field(default_factory=list)
    #: Total ``speed_change`` events in the trace (>= len(speed_changes);
    #: strictly greater when the retained list was capped).
    speed_changes_total: int = 0
    #: Provenance fields from the header (minus format/version plumbing).
    meta: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"trace: {self.events} events over t=[{self.t_min:g}, {self.t_max:g}]"]
        for key, value in sorted(self.meta.items()):
            lines.append(f"  {key}: {value}")
        lines.append(f"  distinct tasks: {self.tasks}")
        for name in sorted(self.counts):
            lines.append(f"  {name:<16}{self.counts[name]:>8d}")
        if self.speed_changes:
            changes = ", ".join(f"{s:g}@{t:g}" for t, s in self.speed_changes)
            if self.speed_changes_total > len(self.speed_changes):
                changes += (
                    f", ... ({self.speed_changes_total} total, "
                    f"first {len(self.speed_changes)} shown)"
                )
            lines.append(f"  speed changes: {changes}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "counts": dict(sorted(self.counts.items())),
            "t_min": self.t_min,
            "t_max": self.t_max,
            "tasks": self.tasks,
            "speed_changes": [[t, s] for t, s in self.speed_changes],
            "speed_changes_total": self.speed_changes_total,
            "meta": self.meta,
        }


#: Default cap on speed-change samples retained by :func:`summarize_trace`.
MAX_SPEED_CHANGES = 1000


def summarize_trace(
    path: Union[str, pathlib.Path], max_speed_changes: int = MAX_SPEED_CHANGES
) -> TraceSummary:
    """Summarize a JSONL trace file (event counts, time range, speeds).

    Streams the trace in **constant memory**: records are consumed one
    at a time off the :func:`read_trace` generator, and the only
    per-event state retained is fixed-size aggregates — counts by name,
    the time range, the distinct-task set (bounded by the task count,
    not the event count), and at most *max_speed_changes* retained
    ``speed_change`` samples (the first ones, with the full count in
    ``speed_changes_total``).  A multi-gigabyte, >100k-event trace
    summarizes in the same footprint as a tiny one
    (``tests/obs/test_trace_stream.py``).
    """
    summary = TraceSummary()
    tasks = set()
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    for record in read_trace(path):
        ev = record["ev"]
        summary.counts[ev] = summary.counts.get(ev, 0) + 1
        summary.events += 1
        if ev == EventName.META:
            summary.meta = {
                k: v
                for k, v in record.items()
                if k not in ("seq", "t", "ev", "format", "version")
            }
            continue
        t = float(record["t"])
        t_min = t if t_min is None else min(t_min, t)
        t_max = t if t_max is None else max(t_max, t)
        if "task" in record:
            tasks.add(record["task"])
        if ev == EventName.SPEED_CHANGE:
            summary.speed_changes_total += 1
            if len(summary.speed_changes) < max_speed_changes:
                summary.speed_changes.append((t, float(record["speed"])))
    summary.tasks = len(tasks)
    summary.t_min = t_min if t_min is not None else 0.0
    summary.t_max = t_max if t_max is not None else 0.0
    return summary
