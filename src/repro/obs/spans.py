"""Timing spans: ``with spans.span("pick_next"): ...``.

A :class:`SpanTimer` measures wall-clock durations of code regions and
records them into a :class:`~repro.obs.metrics.MetricsRegistry`
histogram named ``<prefix>.<path>.ns``.  Spans nest: entering
``span("inner")`` while ``span("outer")`` is open records under the
dotted path ``outer.inner``, so a profile of nested phases reads like a
call tree.

This is the *one* timing mechanism observability-aware code uses — the
kernel's scheduling pass, the ``change_speed`` system call, and the
sweep executor's per-cell execution all record through it, and
:mod:`repro.experiments.overhead` (Fig. 9) consumes the same
histograms.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator, List

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["SpanTimer"]


class SpanTimer:
    """Context-manager timing bound to one metrics registry.

    Parameters
    ----------
    metrics:
        Where durations land.
    prefix:
        Histogram name prefix (component name, e.g. ``"kernel"``).
    """

    def __init__(self, metrics: MetricsRegistry, prefix: str = "span") -> None:
        self.metrics = metrics
        self.prefix = prefix
        self._stack: List[str] = []

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def histogram(self, name: str) -> Histogram:
        """The histogram a top-level span *name* records into."""
        return self.metrics.histogram(f"{self.prefix}.{name}.ns")

    @contextlib.contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time the enclosed block into ``<prefix>.<path>.ns``.

        ``path`` is *name* dotted under any currently-open spans, so
        nested timings attribute to their enclosing phase.
        """
        self._stack.append(name)
        path = ".".join(self._stack)
        t0 = time.perf_counter_ns()
        try:
            yield
        finally:
            dt = time.perf_counter_ns() - t0
            self._stack.pop()
            self.metrics.histogram(f"{self.prefix}.{path}.ns").record(dt)
