"""Exporters: telemetry aggregates -> Prometheus textfiles / JSON snapshots.

The campaign telemetry of :mod:`repro.obs.telemetry` lives as NDJSON
streams inside the campaign directory; this module renders the merged
view in two interchange formats:

* **Prometheus textfile exposition** (:func:`prometheus_lines`,
  :func:`write_prometheus_textfile`) — drop the output where a
  node-exporter ``textfile`` collector picks it up and a running
  campaign shows up on ordinary dashboards: per-worker throughput and
  RSS, campaign totals, per-phase kernel counters.  Metric names carry
  the ``repro_`` prefix; label values are escaped per the exposition
  format rules.
* **Canonical JSON snapshot** (:func:`write_json_snapshot`) — the
  aggregate document as canonical JSON (sorted keys, compact
  separators), written atomically.  Deterministic for the same
  underlying records, so snapshots diff cleanly and tests can assert
  byte-identity.

Both writers go through :mod:`repro.util.atomicio`, so a scraper never
observes a torn export.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, List, Union

from repro.util.atomicio import atomic_write_text

__all__ = [
    "prometheus_escape",
    "prometheus_lines",
    "write_prometheus_textfile",
    "write_json_snapshot",
]

Pathish = Union[str, "os.PathLike[str]"]

_CANON = dict(sort_keys=True, separators=(",", ":"), allow_nan=False)


def prometheus_escape(value: str) -> str:
    """Escape a label value per the Prometheus exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _num(x: Any) -> str:
    """A Prometheus-friendly number literal (ints stay integral)."""
    if isinstance(x, bool):
        return "1" if x else "0"
    if isinstance(x, int):
        return str(x)
    return repr(float(x))


def prometheus_lines(aggregate: Dict[str, Any]) -> List[str]:
    """Render one telemetry aggregate as Prometheus exposition lines.

    Families (all gauges — the scrape reflects file state, not a
    monotonic process counter):

    * ``repro_campaign_{cells_done,cells_run,cache_hits,events,...}``
      with a ``campaign`` label — the totals block;
    * ``repro_campaign_{cells,events}_per_sec`` — summed per-worker
      lifetime rates;
    * ``repro_worker_*`` with ``campaign``/``worker`` (and ``backend``
      on throughput) labels — one series per worker;
    * ``repro_phase_{count,sampled_ns,samples}`` with a ``phase`` label
      — the kernel phase profile.
    """
    campaign = prometheus_escape(str(aggregate.get("campaign", "")))
    base = f'campaign="{campaign}"'
    lines: List[str] = []

    def family(name: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")

    totals = aggregate.get("totals", {})
    for key in sorted(totals):
        name = f"repro_campaign_{key}"
        family(name, f"Campaign total: {key.replace('_', ' ')}.")
        lines.append(f"{name}{{{base}}} {_num(totals[key])}")
    rates = aggregate.get("rates", {})
    for key in sorted(rates):
        name = f"repro_campaign_{key}"
        family(name, f"Campaign throughput: {key.replace('_', ' ')}.")
        lines.append(f"{name}{{{base}}} {_num(rates[key])}")

    workers: Dict[str, Any] = aggregate.get("workers", {})
    worker_fields = (
        ("cells_done", "Cells completed by this worker."),
        ("cells_run", "Cells simulated (cache misses) by this worker."),
        ("cache_hits", "Cells served from the result cache."),
        ("events", "Simulator events processed."),
        ("cells_per_sec", "Lifetime cells/sec for this worker."),
        ("events_per_sec", "Lifetime events/sec for this worker."),
        ("rss_bytes", "Resident set size at the last sample."),
        ("shards_done", "Shards completed by this worker."),
        ("leases_acquired", "Shard leases acquired."),
        ("leases_stolen", "Expired leases stolen."),
        ("batch_slices", "Batched execution slices started."),
        ("last_wall", "Wall-clock time of the last telemetry sample."),
    )
    for key, help_text in worker_fields:
        name = f"repro_worker_{key}"
        family(name, help_text)
        for owner in sorted(workers):
            w = workers[owner]
            labels = f'{base},worker="{prometheus_escape(owner)}"'
            if key in ("cells_per_sec", "events_per_sec") and w.get("backend"):
                labels += f',backend="{prometheus_escape(str(w["backend"]))}"'
            lines.append(f"{name}{{{labels}}} {_num(w.get(key, 0))}")

    phases: Dict[str, Any] = aggregate.get("phases", {})
    if phases:
        for field in ("count", "sampled_ns", "samples"):
            name = f"repro_phase_{field}"
            family(name, f"Kernel phase profile: {field.replace('_', ' ')}.")
            for phase in sorted(phases):
                lines.append(
                    f'{name}{{{base},phase="{prometheus_escape(phase)}"}} '
                    f"{_num(phases[phase].get(field, 0))}"
                )
    return lines


def write_prometheus_textfile(aggregate: Dict[str, Any], path: Pathish) -> pathlib.Path:
    """Atomically write *aggregate* in Prometheus textfile format."""
    dest = pathlib.Path(path)
    atomic_write_text(dest, "\n".join(prometheus_lines(aggregate)) + "\n")
    return dest


def write_json_snapshot(aggregate: Dict[str, Any], path: Pathish) -> pathlib.Path:
    """Atomically write *aggregate* as canonical JSON (deterministic bytes)."""
    dest = pathlib.Path(path)
    atomic_write_text(dest, json.dumps(aggregate, **_CANON) + "\n")
    return dest
