"""Throttled progress reporting for long sweeps.

A :class:`ProgressReporter` is fed one :meth:`cell_done` per finished
sweep cell and periodically prints a one-line status — cells done/total,
cache hit-rate, elapsed time, and an ETA extrapolated from the current
rate — without ever flooding the output (at most one line per
``min_interval_s`` seconds, plus a final line at :meth:`finish`).

The reporter writes plain ``\\n``-terminated lines (no carriage-return
tricks) so output stays readable when redirected to a log file or CI
console.

The ETA smooths the completion rate over a **sliding window** of recent
``(time, done)`` samples rather than dividing total done by total
elapsed: under ``--batch-cells`` cells complete in per-slice bursts
(a slice's first cell pays task-set materialization, later cells are
nearly free), and under checkpointed resume a run may start with a
burst of already-done cells — an instantaneous or cumulative rate
whipsaws in both cases, while the windowed rate tracks the current
regime.  Batch-slice boundaries (:meth:`batch_slice`) are reported in
the progress line so bursty pacing is legible rather than mysterious.
"""

from __future__ import annotations

import math
import sys
import time
from collections import deque
from typing import Callable, Deque, Optional, TextIO, Tuple

__all__ = ["ProgressReporter"]

#: Sliding-window span (seconds) for the smoothed completion rate.
RATE_WINDOW_S = 20.0
#: Maximum samples retained in the window (bounds memory on fast sweeps).
RATE_WINDOW_SAMPLES = 64


class ProgressReporter:
    """Progress lines for an N-cell sweep.

    Parameters
    ----------
    stream:
        Where lines go (default ``sys.stderr``, keeping stdout clean for
        results).
    min_interval_s:
        Minimum seconds between progress lines (the final line always
        prints).
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._clock = clock
        self.total = 0
        self.done = 0
        self.cache_hits = 0
        self.shards_done = 0
        self.shards_executed = 0
        self.batch_slices = 0
        self._t0 = 0.0
        self._last_emit = float("-inf")
        self._window: Deque[Tuple[float, int]] = deque()
        self.lines_emitted = 0

    def begin(self, total: int) -> None:
        """Start (or restart) reporting for a sweep of *total* cells."""
        self.total = total
        self.done = 0
        self.cache_hits = 0
        self.shards_done = 0
        self.shards_executed = 0
        self.batch_slices = 0
        self._t0 = self._clock()
        self._last_emit = float("-inf")
        self._window = deque([(self._t0, 0)])

    def cell_done(self, cached: bool = False) -> None:
        """Record one finished cell; maybe emit a progress line."""
        self.done += 1
        if cached:
            self.cache_hits += 1
        now = self._clock()
        self._observe(now)
        if self.done < self.total and now - self._last_emit < self.min_interval_s:
            return
        self._emit(now, final=self.done >= self.total)

    def batch_slice(self) -> None:
        """Record one batch-slice boundary (``--batch-cells`` execution).

        Cells complete in per-slice bursts under batched execution; the
        slice count in the progress line tells the reader which regime
        the (windowed) rate is tracking.
        """
        self.batch_slices += 1

    def shard_done(self, executed: bool = True) -> None:
        """Record one finished shard of a checkpointed campaign.

        ``executed=False`` means the shard's manifest already existed
        (resume skipping completed work) — it still counts toward
        completion, which is what the status line reports.
        """
        self.shards_done += 1
        if executed:
            self.shards_executed += 1

    def set_completed_cells(self, done: int) -> None:
        """Pool-mode progress: the parent observed *done* cells complete.

        Unlike :meth:`cell_done` this is level-triggered — it is fed the
        absolute completion count read off durable shard manifests, so a
        parent polling a campaign directory can report progress for work
        it did not execute itself.  Emission stays throttled.
        """
        if done < self.done:
            return  # stale read (another poller raced ahead); keep max
        advanced = done > self.done
        self.done = done
        now = self._clock()
        if advanced:
            self._observe(now)
        if not advanced or (
            self.done < self.total and now - self._last_emit < self.min_interval_s
        ):
            return
        self._emit(now, final=self.done >= self.total)

    def finish(self) -> None:
        """Emit the final line if :meth:`cell_done` didn't already."""
        if self.done < self.total:
            self._emit(self._clock(), final=True)

    # ------------------------------------------------------------------
    def _observe(self, now: float) -> None:
        """Record a ``(time, done)`` sample into the sliding rate window."""
        window = self._window
        window.append((now, self.done))
        # Keep the oldest retained sample just *outside* the span so the
        # rate always covers at least RATE_WINDOW_S once enough history
        # exists; cap the sample count so fast sweeps stay O(1).
        while len(window) > 2 and now - window[1][0] > RATE_WINDOW_S:
            window.popleft()
        while len(window) > RATE_WINDOW_SAMPLES:
            window.popleft()

    def rate(self, now: Optional[float] = None) -> float:
        """Cells/second smoothed over the sliding window."""
        if not self._window:
            return 0.0
        t = self._clock() if now is None else now
        t0, d0 = self._window[0]
        span = t - t0
        if span <= 0:
            return 0.0
        return (self.done - d0) / span

    def _eta(self, now: float) -> str:
        """Remaining-time estimate, or ``--:--`` when the window is
        empty / zero-span / stalled (a raw ``inf`` must never render)."""
        rate = self.rate(now)
        if rate <= 0.0:
            return "--:--"
        eta = (self.total - self.done) / rate
        if not math.isfinite(eta):
            return "--:--"
        return f"{eta:.1f}s"

    def _emit(self, now: float, final: bool) -> None:
        elapsed = max(now - self._t0, 0.0)
        pct = 100.0 * self.done / self.total if self.total else 100.0
        hit_rate = 100.0 * self.cache_hits / self.done if self.done else 0.0
        line = (
            f"[sweep] {self.done}/{self.total} cells ({pct:.0f}%)  "
            f"cache {self.cache_hits} ({hit_rate:.0f}%)  elapsed {elapsed:.1f}s"
        )
        if self.batch_slices:
            line += f"  slice {self.batch_slices}"
        if not final and self.done:
            line += f"  eta {self._eta(now)}"
        self._stream.write(line + "\n")
        self._last_emit = now
        self.lines_emitted += 1
