"""Convert a JSONL trace to Chrome trace-event format.

The output opens directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: one timeline row per CPU showing execution
intervals, instant markers for releases/completions and monitor
decisions, a counter track for the virtual-clock speed, and async
slices spanning recovery episodes.

Mapping (Chrome trace-event ``ph`` phases):

* ``exec_interval``  → complete events (``X``) on ``pid 0`` ("CPUs"),
  one ``tid`` per CPU, named after the executing job;
* ``job_release`` / ``job_complete`` / ``monitor_*`` → instant events
  (``i``) on ``pid 1`` ("events"), one ``tid`` per task (releases /
  completions) or the monitor row (decisions);
* ``speed_change`` → counter events (``C``, "virtual speed");
* ``recovery_open`` / ``recovery_close`` → async begin/end (``b``/``e``)
  so each episode renders as one spanning slice;
* ``fault_inject`` → process-scoped instant events on ``pid 2``
  ("faults"), so injected faults line up against the recovery spans
  they provoke.

Simulation time is unitless; the converter maps one simulation time
unit to one Chrome microsecond tick scaled by *time_scale* (default
1e6, i.e. sim units display as seconds).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Union

from repro.obs.tracer import EventName, read_trace

__all__ = ["chrome_trace_events", "chrome_trace_from_jsonl", "write_chrome_trace"]

#: pid used for the per-CPU execution tracks.
PID_CPUS = 0
#: pid used for instant/marker tracks (per-task releases, monitor row).
PID_EVENTS = 1
#: pid used for injected-fault markers (repro.faults).
PID_FAULTS = 2
#: tid of the monitor-decision row within PID_EVENTS.
TID_MONITOR = 0


def _job_name(record: Dict[str, Any]) -> str:
    task = record.get("task", "?")
    job = record.get("job", "?")
    return f"task{task}#{job}"


def chrome_trace_events(
    records: Iterable[Dict[str, Any]], time_scale: float = 1e6
) -> List[Dict[str, Any]]:
    """Map trace records to a list of Chrome trace-event dicts."""
    out: List[Dict[str, Any]] = [
        {"ph": "M", "pid": PID_CPUS, "name": "process_name",
         "args": {"name": "CPUs"}},
        {"ph": "M", "pid": PID_EVENTS, "name": "process_name",
         "args": {"name": "events"}},
        {"ph": "M", "pid": PID_EVENTS, "tid": TID_MONITOR, "name": "thread_name",
         "args": {"name": "monitor"}},
    ]
    cpus_seen: set = set()
    episode = 0
    faults_named = False
    for record in records:
        ev = record["ev"]
        if ev == EventName.META:
            continue
        ts = float(record["t"]) * time_scale
        if ev == EventName.EXEC_INTERVAL:
            cpu = int(record["cpu"])
            if cpu not in cpus_seen:
                cpus_seen.add(cpu)
                out.append(
                    {"ph": "M", "pid": PID_CPUS, "tid": cpu, "name": "thread_name",
                     "args": {"name": f"CPU {cpu}"}}
                )
            start = float(record["start"]) * time_scale
            out.append(
                {
                    "ph": "X",
                    "pid": PID_CPUS,
                    "tid": cpu,
                    "ts": start,
                    "dur": float(record["end"]) * time_scale - start,
                    "name": _job_name(record),
                    "cat": "exec",
                    "args": {"task": record.get("task"), "job": record.get("job")},
                }
            )
        elif ev in (EventName.JOB_RELEASE, EventName.JOB_COMPLETE):
            out.append(
                {
                    "ph": "i",
                    "pid": PID_EVENTS,
                    # One marker row per task; offset past the monitor row.
                    "tid": int(record.get("task", 0)) + 1,
                    "ts": ts,
                    "s": "t",
                    "name": f"{'release' if ev == EventName.JOB_RELEASE else 'complete'} "
                            f"{_job_name(record)}",
                    "cat": "job",
                    "args": {k: v for k, v in record.items()
                             if k not in ("seq", "t", "ev")},
                }
            )
        elif ev == EventName.SPEED_CHANGE:
            out.append(
                {
                    "ph": "C",
                    "pid": PID_CPUS,
                    "ts": ts,
                    "name": "virtual speed",
                    "args": {"speed": float(record["speed"])},
                }
            )
        elif ev == EventName.RECOVERY_OPEN:
            episode += 1
            out.append(
                {
                    "ph": "b",
                    "pid": PID_EVENTS,
                    "tid": TID_MONITOR,
                    "ts": ts,
                    "id": episode,
                    "name": "recovery",
                    "cat": "recovery",
                    "args": {k: v for k, v in record.items()
                             if k not in ("seq", "t", "ev")},
                }
            )
        elif ev == EventName.RECOVERY_CLOSE:
            out.append(
                {
                    "ph": "e",
                    "pid": PID_EVENTS,
                    "tid": TID_MONITOR,
                    "ts": ts,
                    "id": episode,
                    "name": "recovery",
                    "cat": "recovery",
                }
            )
        elif ev == EventName.FAULT_INJECT:
            if not faults_named:
                faults_named = True
                out.append(
                    {"ph": "M", "pid": PID_FAULTS, "name": "process_name",
                     "args": {"name": "faults"}}
                )
            out.append(
                {
                    "ph": "i",
                    "pid": PID_FAULTS,
                    "tid": 0,
                    "ts": ts,
                    "s": "p",
                    "name": str(record.get("fault", "fault")),
                    "cat": "fault",
                    "args": {k: v for k, v in record.items()
                             if k not in ("seq", "t", "ev")},
                }
            )
        elif ev in (EventName.MONITOR_MISS, EventName.MONITOR_SPEED,
                    EventName.MONITOR_EXIT):
            out.append(
                {
                    "ph": "i",
                    "pid": PID_EVENTS,
                    "tid": TID_MONITOR,
                    "ts": ts,
                    "s": "t",
                    "name": ev,
                    "cat": "monitor",
                    "args": {k: v for k, v in record.items()
                             if k not in ("seq", "t", "ev")},
                }
            )
        # Unknown/auxiliary events (job_preempt, job_migrate, third-party
        # kinds) are deliberately skipped: preemptions and migrations are
        # already visible as interval boundaries on the CPU tracks.
    return out


def chrome_trace_from_jsonl(
    path: Union[str, pathlib.Path], time_scale: float = 1e6
) -> Dict[str, Any]:
    """Read a JSONL trace and return the Chrome trace-event document."""
    return {
        "traceEvents": chrome_trace_events(read_trace(path), time_scale=time_scale),
        "displayTimeUnit": "ms",
        "otherData": {"source": str(path), "format": "repro-trace"},
    }


def write_chrome_trace(
    src: Union[str, pathlib.Path],
    dst: Union[str, pathlib.Path],
    time_scale: float = 1e6,
) -> int:
    """Convert *src* (JSONL) to *dst* (Chrome JSON); returns event count."""
    doc = chrome_trace_from_jsonl(src, time_scale=time_scale)
    with open(dst, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(doc["traceEvents"])
