"""Userspace monitor programs (Algorithms 2-4).

The kernel reports every level-C job completion to the monitor; the
monitor decides when to slow the virtual clock (overload response) and
when to restore speed 1 (recovery complete).  This module reproduces the
paper's pseudocode faithfully:

* :class:`Monitor` — the common logic of Algorithm 2: tracking the set of
  pending jobs, detecting response-time-tolerance misses (Def. 1),
  maintaining the earliest *candidate idle instant* (Def. 3) and its set
  of still-pending jobs, and exiting recovery at the earliest *idle
  normal instant* (Def. 2), justified by Theorem 1.
* :class:`SimpleMonitor` — Algorithm 3 (SIMPLE): on the first miss outside
  recovery, slow the clock to a fixed speed ``s``.
* :class:`AdaptiveMonitor` — Algorithm 4 (ADAPTIVE): choose the speed at
  runtime, maintaining ``s(t) = a * min (Y_i + xi_i) / R_{i,k}`` over jobs
  completed since recovery started (only ever ratcheting downward).
* :class:`NullMonitor` — no-op, for baselines without the mechanism
  (Fig. 2(b)/3(b) and the "without virtual time" bars of Fig. 9).

Line numbers in comments refer to the paper's pseudocode listings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Set, Tuple

from repro.model.task import Task
from repro.obs.tracer import NULL_TRACER, EventName, Tracer

__all__ = [
    "CompletionReport",
    "SpeedController",
    "Monitor",
    "NullMonitor",
    "SimpleMonitor",
    "AdaptiveMonitor",
    "RecoveryEpisode",
]

#: A job identity as reported by the kernel.
Jid = Tuple[int, int]


@dataclass(frozen=True)
class CompletionReport:
    """What ``job_complete`` reports to the monitor (Algorithm 1 line 13).

    Attributes
    ----------
    task:
        The completing job's task (carries ``Y_i`` and ``xi_i``).
    job_index:
        The job's index ``k``.
    release:
        ``r_{i,k}`` (actual time).
    actual_pp:
        ``y_{i,k}`` in actual time, or ``None`` for the paper's bottom
        placeholder — meaning the job completed at or before its PP and
        hence trivially meets any non-negative tolerance (Fig. 5(b)).
    comp_time:
        ``t^c_{i,k}``.
    queue_empty:
        Whether some processor idles at the completion instant (no
        pending level-A/B work claims it and no eligible level-C job is
        left to run on it) — the Def. 3 signal Algorithm 2 uses to
        detect candidate idle instants.  An empty ready queue alone is
        not sufficient: a freed CPU refilled from the queue in the same
        instant leaves every processor busy.
    """

    task: Task
    job_index: int
    release: float
    actual_pp: Optional[float]
    comp_time: float
    queue_empty: bool

    @property
    def jid(self) -> Jid:
        """``(task_id, job_index)``."""
        return (self.task.task_id, self.job_index)

    @property
    def response_time(self) -> float:
        """``R_{i,k} = t^c - r``."""
        return self.comp_time - self.release

    @property
    def misses_tolerance(self) -> bool:
        """Def. 1 violation test: ``comp_time - y > xi`` (lines 10, 13).

        ``actual_pp is None`` means the job completed no later than its PP
        and therefore meets its (non-negative) tolerance.
        """
        if self.actual_pp is None:
            return False
        xi = self.task.tolerance
        if xi is None:
            raise ValueError(
                f"level-C task {self.task.label} has no response-time tolerance configured"
            )
        return self.comp_time - self.actual_pp > xi


class SpeedController(Protocol):
    """The kernel-side system call the monitor uses (Sec. 4)."""

    def change_speed(self, new_speed: float, now: float) -> None:
        """Install a new virtual-clock speed at actual time *now*."""
        ...


@dataclass(frozen=True)
class RecoveryEpisode:
    """One recovery-mode episode, for the experiment metrics.

    ``end`` is ``None`` while the episode is still open.
    """

    start: float
    end: Optional[float]
    trigger: Jid


class Monitor:
    """Common monitor logic (Algorithm 2).

    Subclasses implement :meth:`handle_miss` (Algorithms 3/4).  The
    monitor is driven by the kernel through :meth:`on_job_release` and
    :meth:`on_job_complete`; it acts on the kernel only through the
    ``change_speed`` system call.
    """

    def __init__(self, controller: SpeedController) -> None:
        self.controller = controller
        #: Structured event stream; :meth:`MC2Kernel.attach_monitor`
        #: replaces this with the kernel's tracer so one trace carries
        #: both kernel and monitor events.
        self.tracer: Tracer = NULL_TRACER
        #: Whether we are searching for an idle normal instant.
        self.recovery_mode: bool = False
        #: Earliest candidate idle instant, or None for the bottom value.
        self.idle_cand: Optional[float] = None
        #: Jobs pending at ``idle_cand`` that are still incomplete.
        self.pend_idle_cand: Set[Jid] = set()
        #: All currently pending level-C jobs.
        self.pend_now: Set[Jid] = set()
        # ---- telemetry (not part of the paper's pseudocode) ----
        #: Closed and open recovery episodes.
        self.episodes: List[RecoveryEpisode] = []
        #: Count of tolerance misses observed.
        self.miss_count: int = 0
        #: (time, speed) pairs for every change_speed this monitor issued.
        self.speed_requests: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def init_recovery(self, comp_time: float, queue_empty: bool) -> None:
        """Algorithm 2 ``init_recovery`` (lines 1-7)."""
        self.recovery_mode = True  # line 1
        if queue_empty:  # line 2
            self.idle_cand = comp_time  # line 3
            self.pend_idle_cand = set(self.pend_now)  # line 4
        else:  # line 5
            self.idle_cand = None  # line 6
            self.pend_idle_cand = set()  # line 7

    def on_job_release(self, jid: Jid) -> None:
        """Algorithm 2 ``on_job_release`` (line 8)."""
        self.pend_now.add(jid)

    def on_job_complete(self, report: CompletionReport) -> None:
        """Algorithm 2 ``on_job_complete`` (lines 9-23)."""
        self.pend_now.discard(report.jid)  # line 9
        miss = report.misses_tolerance
        if miss:  # line 10
            self.miss_count += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    EventName.MONITOR_MISS,
                    report.comp_time,
                    task=report.task.task_id,
                    job=report.job_index,
                    response=report.response_time,
                    queue_empty=report.queue_empty,
                )
            self.handle_miss(report)  # line 11
        if self.recovery_mode and self.idle_cand is not None:  # line 12
            if miss:  # line 13
                # A pending-at-idle_cand job missed, so idle_cand cannot be
                # an idle normal instant (Def. 3 fails): discard it.
                self.idle_cand = None  # line 14
                self.pend_idle_cand = set()  # line 15
            else:  # line 16
                self.pend_idle_cand.discard(report.jid)  # line 17
        if self.recovery_mode and self.idle_cand is None and report.queue_empty:  # line 18
            self.idle_cand = report.comp_time  # line 19
            self.pend_idle_cand = set(self.pend_now)  # line 20
        if (
            self.recovery_mode
            and self.idle_cand is not None
            and not self.pend_idle_cand
        ):  # line 21
            # idle_cand is an idle normal instant (Theorem 1): every job
            # pending at it met its tolerance.
            self._exit_recovery(report)  # lines 22-23

    def _exit_recovery(self, report: CompletionReport) -> None:
        """Lines 22-23: restore speed 1 and leave recovery mode.

        Overridable hook — extension policies (e.g. gradual restoration,
        :mod:`repro.core.policies`) replace the one-jump restore.
        """
        if self.tracer.enabled:
            self.tracer.emit(
                EventName.MONITOR_EXIT,
                report.comp_time,
                idle_instant=self.idle_cand,
            )
        self._change_speed(1.0, report.comp_time)  # line 22
        self.recovery_mode = False  # line 23
        self._close_episode(report.comp_time)

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def handle_miss(self, report: CompletionReport) -> None:
        """React to a tolerance miss (Algorithm 3/4 differ here)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Internals / telemetry
    # ------------------------------------------------------------------
    def _change_speed(self, speed: float, now: float) -> None:
        self.speed_requests.append((now, speed))
        if self.tracer.enabled:
            self.tracer.emit(EventName.MONITOR_SPEED, now, speed=speed)
        self.controller.change_speed(speed, now)

    def _open_episode(self, report: CompletionReport) -> None:
        self.episodes.append(
            RecoveryEpisode(start=report.comp_time, end=None, trigger=report.jid)
        )
        if self.tracer.enabled:
            self.tracer.emit(
                EventName.RECOVERY_OPEN,
                report.comp_time,
                trigger_task=report.task.task_id,
                trigger_job=report.job_index,
            )

    def _close_episode(self, end: float) -> None:
        if self.episodes and self.episodes[-1].end is None:
            last = self.episodes[-1]
            self.episodes[-1] = RecoveryEpisode(
                start=last.start, end=end, trigger=last.trigger
            )
            if self.tracer.enabled:
                self.tracer.emit(EventName.RECOVERY_CLOSE, end, start=last.start)

    @property
    def last_recovery_end(self) -> Optional[float]:
        """End time of the most recent closed episode, if any."""
        for ep in reversed(self.episodes):
            if ep.end is not None:
                return ep.end
        return None

    def minimum_requested_speed(self) -> float:
        """Smallest speed this monitor ever requested (1.0 if none)."""
        if not self.speed_requests:
            return 1.0
        return min(s for _, s in self.speed_requests)


class NullMonitor(Monitor):
    """A monitor that never reacts: the no-mechanism baseline.

    It still tracks pending jobs and counts misses so experiments can
    report how degraded the unmanaged system is, but it never enters
    recovery and never touches the clock.
    """

    def on_job_complete(self, report: CompletionReport) -> None:
        self.pend_now.discard(report.jid)
        if report.task.tolerance is not None and report.misses_tolerance:
            self.miss_count += 1

    def handle_miss(self, report: CompletionReport) -> None:  # pragma: no cover
        pass


class SimpleMonitor(Monitor):
    """Algorithm 3 (SIMPLE): fixed recovery speed ``s``.

    ``s = 1`` degenerates to "no slowdown, but still detect recovery",
    which is the paper's baseline point in Fig. 6.
    """

    def __init__(self, controller: SpeedController, s: float) -> None:
        super().__init__(controller)
        if not 0.0 < s <= 1.0:
            raise ValueError(f"SIMPLE requires 0 < s <= 1, got {s}")
        self.s = s

    def handle_miss(self, report: CompletionReport) -> None:
        if not self.recovery_mode:  # line 1
            self._change_speed(self.s, report.comp_time)  # line 2
            self._open_episode(report)
            self.init_recovery(report.comp_time, report.queue_empty)  # line 3


class AdaptiveMonitor(Monitor):
    """Algorithm 4 (ADAPTIVE): runtime-chosen recovery speed.

    Maintains the invariant that after each miss,
    ``s(t) = a * min over completed jobs of (Y_i + xi_i) / R_{i,k}``,
    where the min ranges over jobs completing since recovery last started
    — i.e. the speed is set from the largest *normalized* response time
    observed, and only ever ratchets downward within an episode.
    """

    def __init__(self, controller: SpeedController, a: float) -> None:
        super().__init__(controller)
        if not 0.0 < a <= 1.0:
            raise ValueError(f"ADAPTIVE requires aggressiveness 0 < a <= 1, got {a}")
        self.a = a
        self.current_speed: float = 1.0

    def handle_miss(self, report: CompletionReport) -> None:
        if not self.recovery_mode:  # line 1
            self.current_speed = 1.0  # line 2
            self._open_episode(report)
            self.init_recovery(report.comp_time, report.queue_empty)  # line 3
        y = report.task.relative_pp
        xi = report.task.tolerance
        assert y is not None and xi is not None  # level-C tasks; checked upstream
        response = report.comp_time - report.release
        new_speed = self.a * (y + xi) / response  # line 4
        # A miss implies R > Y + xi (the actual PP is at least Y after the
        # release when s <= 1), so new_speed < a <= 1; the clamp only
        # guards float round-off.
        new_speed = min(new_speed, 1.0)
        if new_speed < self.current_speed:  # line 5
            self._change_speed(new_speed, report.comp_time)  # line 6
            self.current_speed = new_speed  # line 7
