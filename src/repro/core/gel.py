"""GEL and GEL-v priority points.

A GEL (G-EDF-like) scheduler prioritizes each job by a *priority point*
(PP): release time plus a per-task constant ``Y_i`` (eq. 3).  G-EDF is the
special case ``Y_i = T_i``; G-FL ("global fair lateness", Erickson,
Anderson & Ward [9]) chooses

.. math:: Y_i = T_i - \\frac{m-1}{m} C_i,

which provably minimizes the maximum *lateness bound* among all GEL
schedulers and is what the paper uses for its level-C experiments.

Under GEL-v (Sec. 3), the PP is defined in virtual time (eq. 6):
``v(y_{i,k}) = v(r_{i,k}) + Y_i``, and the job's scheduling priority *is*
the virtual PP — the actual-time PP is generally unknowable at release
because the clock's speed may change (Sec. 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.model.job import Job
from repro.model.task import CriticalityLevel, Task

__all__ = [
    "gfl_relative_pp",
    "gfl_relative_pps",
    "gedf_relative_pps",
    "virtual_priority",
    "PriorityKey",
]

#: Sort key for GEL-v dispatching: (virtual PP, task_id, job index).  The
#: id components make equal-PP ties deterministic, which the paper's
#: analysis permits (any consistent tie-break works).
PriorityKey = Tuple[float, int, int]


def gfl_relative_pp(period: float, pwcet_c: float, m: int) -> float:
    """The G-FL relative PP for a single task: ``T - (m-1)/m * C``.

    Clamped at zero: ``Y_i`` must be non-negative in the task model, and
    the clamp only binds for pathological ``C > m/(m-1) * T`` inputs.
    """
    if m <= 0:
        raise ValueError(f"m must be >= 1, got {m}")
    y = period - (m - 1) / m * pwcet_c
    return max(0.0, y)


def gfl_relative_pps(tasks: Iterable[Task], m: int) -> Dict[int, float]:
    """G-FL ``Y_i`` for every level-C task, keyed by ``task_id``."""
    out: Dict[int, float] = {}
    for t in tasks:
        if t.level is not CriticalityLevel.C:
            continue
        out[t.task_id] = gfl_relative_pp(t.period, t.pwcet(CriticalityLevel.C), m)
    return out


def gedf_relative_pps(tasks: Iterable[Task]) -> Dict[int, float]:
    """G-EDF ``Y_i = T_i`` for every level-C task (implicit deadlines)."""
    return {
        t.task_id: t.period for t in tasks if t.level is CriticalityLevel.C
    }


def apply_relative_pps(tasks: Sequence[Task], pps: Dict[int, float]) -> Tuple[Task, ...]:
    """Return copies of *tasks* with level-C relative PPs replaced."""
    out = []
    for t in tasks:
        if t.task_id in pps:
            out.append(t.with_relative_pp(pps[t.task_id]))
        else:
            out.append(t)
    return tuple(out)


def virtual_priority(job: Job) -> PriorityKey:
    """GEL-v dispatch key for a level-C job: earlier virtual PP first.

    Raises :class:`ValueError` for jobs that have no virtual PP (non-C
    jobs, or jobs created outside the kernel's release path).
    """
    if job.virtual_pp is None:
        raise ValueError(f"job {job.label} has no virtual priority point")
    return (job.virtual_pp, job.task.task_id, job.index)
