"""Response-time tolerances (Def. 1) from analytical bounds.

Sec. 3: "Ideally, response-time tolerances should be determined based on
analytical upper bounds of job response times, in order to guarantee
that the virtual clock is never slowed down in the absence of overload."

:func:`assign_tolerances` sets each level-C task's ``xi_i`` to the
PP-relative response bound ``x + C_i`` from
:mod:`repro.analysis.bounds`, optionally scaled by a safety margin.  With
these tolerances, a job completing within the analytical bound never
triggers recovery, so the monitor only reacts to genuine overload — the
property the paper requires and our integration tests verify.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analysis.bounds import gel_response_bounds
from repro.analysis.supply import SupplyModel
from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet

__all__ = ["assign_tolerances", "fixed_tolerances"]


def assign_tolerances(
    ts: TaskSet,
    margin: float = 1.0,
    supply: Optional[SupplyModel] = None,
) -> TaskSet:
    """Return a copy of *ts* with analytical tolerances on level-C tasks.

    Parameters
    ----------
    ts:
        The task set; must be SRT-schedulable at level C, otherwise the
        bounds are infinite and no tolerance assignment is possible.
    margin:
        Multiplier ``>= 1`` applied to the analytical bound.  1.0 uses
        the bound itself; larger values make recovery less trigger-happy
        (an ablation knob, see ``benchmarks/bench_ablation_tolerance.py``).
    supply:
        Optional supply-model override.

    Raises
    ------
    ValueError
        If the analytical bound is infinite (no finite tolerance exists).
    """
    if margin < 1.0:
        raise ValueError(f"margin must be >= 1, got {margin}")
    bounds = gel_response_bounds(ts, supply=supply)
    if not bounds.is_finite:
        raise ValueError(
            "cannot assign analytical tolerances: the response-time bound is "
            "infinite (level C lacks slack; see analysis.check_level_c)"
        )
    new_tasks = []
    for t in ts:
        if t.level is CriticalityLevel.C:
            new_tasks.append(t.with_tolerance(margin * bounds.pp_relative[t.task_id]))
        else:
            new_tasks.append(t)
    return TaskSet(new_tasks, m=ts.m)


def fixed_tolerances(ts: TaskSet, xi: float) -> TaskSet:
    """Return a copy of *ts* with the same tolerance ``xi`` on every level-C task.

    The paper's Fig. 2(c) walkthrough "simply uses a response-time
    tolerance of three for each task" — this helper supports such
    illustrative setups and tests.
    """
    if not math.isfinite(xi) or xi < 0.0:
        raise ValueError(f"xi must be finite and >= 0, got {xi}")
    new_tasks = [
        t.with_tolerance(xi) if t.level is CriticalityLevel.C else t for t in ts
    ]
    return TaskSet(new_tasks, m=ts.m)
