"""Virtual time (Algorithm 1): the piecewise-linear actual<->virtual map.

The paper defines virtual time as :math:`v(t) = \\int_0^t s(t)\\,dt`
(eq. 4) for a global speed function ``s`` with ``s(t) = 1`` in normal
operation and ``0 < s(t) < 1`` during overload recovery.  Because the
monitor changes the speed at discrete instants, ``v`` is piecewise linear,
and the kernel only needs three words of state (Fig. 5(a)):

* ``last_act`` — actual time of the latest speed change,
* ``last_virt`` — the corresponding virtual time,
* ``speed`` — the current slope.

:class:`VirtualClock` reproduces that state machine verbatim, including
the convenience conversions::

    act_to_virt(act)  = last_virt + (act - last_act) * speed
    virt_to_act(virt) = last_act + (virt - last_virt) / speed

Both require their argument to be at or after the latest speed change —
asking about the past would silently use the wrong slope, so we raise.

:class:`SpeedProfile` additionally records the *entire* history of speed
changes, so that tests, traces, and the experiment harness can evaluate
``v(t)`` (and its inverse) at any time, not just after the latest change.
The paper's worked example — ``s = 0.5`` on ``[19, 29)`` gives
``v(25) = 22`` — is a one-liner against it.

Both classes are numeric-type agnostic: they work with ``float`` (used in
the simulator) and with ``fractions.Fraction`` (used by exactness-checking
unit and property tests), because they only use ``+ - * /`` and
comparisons.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, TypeVar

__all__ = ["VirtualClock", "SpeedProfile", "SpeedChange"]

#: Any numeric type closed under +, -, *, / and totally ordered.
N = TypeVar("N")


@dataclass(frozen=True)
class SpeedChange(Generic[N]):
    """One speed change: at actual time ``act`` (virtual ``virt``), the
    clock's slope became ``speed``."""

    act: N
    virt: N
    speed: N


class VirtualClock(Generic[N]):
    """The in-kernel virtual clock state machine of Algorithm 1.

    Parameters
    ----------
    now:
        The actual time at which the clock is initialized; Algorithm 1's
        ``initialize()`` sets ``last_act := now()``, ``last_virt := 0``,
        ``speed := 1``.
    initial_virt:
        Virtual time at initialization (0 in the paper).
    allow_speedup:
        The paper never speeds virtual time up relative to actual time
        ("we never speed up virtual time relative to the normal
        underloaded system, so we avoid problems that have previously
        prevented virtual time from being used on a multiprocessor").
        Accordingly speeds must satisfy ``0 < s <= 1`` unless this flag is
        set (it exists only so tests can demonstrate why s > 1 is
        excluded).
    """

    def __init__(
        self,
        now: N = 0.0,  # type: ignore[assignment]
        initial_virt: Optional[N] = None,
        *,
        allow_speedup: bool = False,
    ) -> None:
        one = now - now + (now + 1 - now)  # a "1" of the same numeric type family
        zero = now - now
        self._one: N = one
        self.last_act: N = now
        self.last_virt: N = initial_virt if initial_virt is not None else zero
        self.speed: N = one
        self.allow_speedup = allow_speedup
        self._history: List[SpeedChange[N]] = [
            SpeedChange(act=self.last_act, virt=self.last_virt, speed=self.speed)
        ]

    # ------------------------------------------------------------------
    # Algorithm 1 conversions
    # ------------------------------------------------------------------
    def act_to_virt(self, act: N) -> N:
        """``last_virt + (act - last_act) * speed``.

        Valid only for ``act >= last_act`` (no speed change between
        ``last_act`` and ``act`` — guaranteed because speed changes always
        advance ``last_act`` to "now").
        """
        if act < self.last_act:
            raise ValueError(
                f"act_to_virt({act!r}) predates the latest speed change at "
                f"{self.last_act!r}; use SpeedProfile for historical queries"
            )
        return self.last_virt + (act - self.last_act) * self.speed

    def virt_to_act(self, virt: N) -> N:
        """``last_act + (virt - last_virt) / speed``.

        Valid only for ``virt >= last_virt``.  If the speed changes before
        the returned instant, the caller must re-invoke after the change —
        exactly what Algorithm 1's ``change_speed`` does for pending
        release timers (lines 21-22).
        """
        if virt < self.last_virt:
            raise ValueError(
                f"virt_to_act({virt!r}) predates the latest speed change at "
                f"virtual time {self.last_virt!r}; use SpeedProfile instead"
            )
        return self.last_act + (virt - self.last_virt) / self.speed

    def now_virt(self, now: N) -> N:
        """Current virtual time, an alias of :meth:`act_to_virt`."""
        return self.act_to_virt(now)

    # ------------------------------------------------------------------
    # Speed changes
    # ------------------------------------------------------------------
    def change_speed(self, new_speed: N, now: N) -> N:
        """Algorithm 1's ``change_speed`` state update (lines 14-20).

        Advances ``(last_act, last_virt)`` to the current instant and
        installs ``new_speed``.  Returns the virtual time of the change so
        callers (the kernel) can actualize priority points that have
        already passed in virtual time (lines 16-17) and retime pending
        releases (lines 21-22).
        """
        self._check_speed(new_speed)
        if now < self.last_act:
            raise ValueError(
                f"change_speed at {now!r} would precede the previous change at "
                f"{self.last_act!r}; time cannot run backwards"
            )
        virt = self.act_to_virt(now)
        self.last_act = now
        self.last_virt = virt
        self.speed = new_speed
        self._history.append(SpeedChange(act=now, virt=virt, speed=new_speed))
        return virt

    def _check_speed(self, speed: N) -> None:
        if not speed > self.last_virt - self.last_virt:  # speed > 0
            raise ValueError(f"virtual-clock speed must be > 0, got {speed!r}")
        if not self.allow_speedup and speed > self._one:
            raise ValueError(
                f"virtual-clock speed must be <= 1 (paper Sec. 3); got {speed!r}. "
                "Pass allow_speedup=True only for counterexample experiments."
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_normal_speed(self) -> bool:
        """Whether the clock currently runs at speed 1."""
        return self.speed == self._one

    @property
    def history(self) -> Sequence[SpeedChange[N]]:
        """All speed changes, in order, starting with initialization."""
        return tuple(self._history)

    def profile(self) -> "SpeedProfile[N]":
        """A :class:`SpeedProfile` over this clock's full history."""
        return SpeedProfile(self._history)

    def __repr__(self) -> str:  # pragma: no cover - formatting only
        return (
            f"VirtualClock(last_act={self.last_act!r}, "
            f"last_virt={self.last_virt!r}, speed={self.speed!r})"
        )


class SpeedProfile(Generic[N]):
    """A complete piecewise-linear virtual-time map over ``[t0, inf)``.

    Built from an ordered sequence of :class:`SpeedChange` records (e.g.
    :attr:`VirtualClock.history`).  Supports evaluating ``v(t)`` and its
    inverse at *any* instant at or after the first record, which the
    one-segment kernel state cannot do.
    """

    def __init__(self, changes: Sequence[SpeedChange[N]]) -> None:
        if not changes:
            raise ValueError("SpeedProfile requires at least one segment")
        self._changes = list(changes)
        for a, b in zip(self._changes, self._changes[1:]):
            if b.act < a.act:
                raise ValueError("speed changes must be ordered by actual time")
            expected_virt = a.virt + (b.act - a.act) * a.speed
            if b.virt != expected_virt:
                raise ValueError(
                    f"inconsistent profile: change at {b.act!r} records virtual "
                    f"time {b.virt!r} but the previous segment implies {expected_virt!r}"
                )
        # Sorted keys for O(log n) segment lookup.  Duplicate-``act``
        # records (two changes at the same instant, i.e. a zero-length
        # segment) are legal; ``bisect_right`` lands *after* the last
        # duplicate, so the LAST record at a tied instant wins — the
        # profile is right-continuous, matching the kernel clock, whose
        # state after two same-instant change_speed calls is the second.
        self._acts: List[N] = [c.act for c in self._changes]
        self._virts: List[N] = [c.virt for c in self._changes]

    @classmethod
    def from_segments(
        cls, start: N, speeds: Sequence[tuple[N, N]], initial_virt: Optional[N] = None
    ) -> "SpeedProfile[N]":
        """Build a profile from ``(change_time, new_speed)`` pairs.

        ``start`` is the profile origin with speed 1 and virtual time
        ``initial_virt`` (default: same as ``start`` minus itself, i.e. 0).
        Example (the paper's Fig. 2(c) profile)::

            SpeedProfile.from_segments(0.0, [(19.0, 0.5), (29.0, 1.0)])
        """
        zero = start - start
        one = start - start + (start + 1 - start)
        virt = initial_virt if initial_virt is not None else zero
        changes: List[SpeedChange[N]] = [SpeedChange(act=start, virt=virt, speed=one)]
        for act, speed in speeds:
            prev = changes[-1]
            if act < prev.act:
                raise ValueError("segment times must be non-decreasing")
            v = prev.virt + (act - prev.act) * prev.speed
            changes.append(SpeedChange(act=act, virt=v, speed=speed))
        return cls(changes)

    # ------------------------------------------------------------------
    def _segment_for_act(self, act: N) -> SpeedChange[N]:
        if act < self._acts[0]:
            raise ValueError(f"time {act!r} precedes the profile origin")
        # Last record with ``change.act <= act`` (ties: last record wins).
        return self._changes[bisect_right(self._acts, act) - 1]

    def _segment_for_virt(self, virt: N) -> SpeedChange[N]:
        if virt < self._virts[0]:
            raise ValueError(f"virtual time {virt!r} precedes the profile origin")
        # Last record with ``change.virt <= virt`` (ties: last record wins).
        return self._changes[bisect_right(self._virts, virt) - 1]

    def v(self, act: N) -> N:
        """Evaluate ``v(act)`` (eq. 4) anywhere at/after the origin."""
        seg = self._segment_for_act(act)
        return seg.virt + (act - seg.act) * seg.speed

    def inverse(self, virt: N) -> N:
        """Earliest actual time ``t`` with ``v(t) == virt``.

        ``v`` is strictly increasing (speeds are positive), so the inverse
        is unique.
        """
        seg = self._segment_for_virt(virt)
        return seg.act + (virt - seg.virt) / seg.speed

    def speed_at(self, act: N) -> N:
        """The slope ``s(act)`` (right-continuous at change instants)."""
        return self._segment_for_act(act).speed

    @property
    def changes(self) -> Sequence[SpeedChange[N]]:
        """The underlying change records."""
        return tuple(self._changes)

    def minimum_speed(self) -> N:
        """Smallest speed ever installed (the paper's Fig. 8 metric)."""
        out = self._changes[0].speed
        for change in self._changes[1:]:
            if change.speed < out:
                out = change.speed
        return out
