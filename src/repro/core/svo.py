"""The SVO release rule (eq. 5) and release-timer management.

Under the *sporadic with virtual time and overload* (SVO) model, the
minimum separation between consecutive releases of a level-C task is
measured in **virtual** time:

.. math:: v(r_{i,k+1}) \\ge v(r_{i,k}) + T_i \\qquad (5)

so slowing the virtual clock stretches actual inter-release times and
sheds level-C utilization — the paper's recovery lever.  Levels A and B
are untouched by virtual time; their separations stay in actual time.

:class:`ReleaseController` owns one task's release state:

* it records ``v(r_{i,k})`` at each release,
* computes the earliest next release — in virtual time for level-C tasks
  (``virt_to_act`` of Algorithm 1's ``schedule_pending_release``), in
  actual time otherwise,
* and is *re-armed* by the kernel after every speed change, mirroring
  Algorithm 1 lines 21-22 (reset each pending release timer to fire at
  ``virt_to_act(v(r_{i,k}))``).

Releases are generated at the earliest legal instant ("periodic in
virtual time"), matching the paper's examples and experiments; an
optional ``release_delay`` hook adds per-release sporadic slack for model
tests.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.virtual_time import VirtualClock
from repro.model.task import CriticalityLevel, Task

__all__ = ["ReleaseController"]

#: Optional sporadic-jitter hook: (task, job_index) -> extra separation.
#: The extra is measured in virtual time for level-C tasks (keeping
#: releases legal under eq. 5) and in actual time otherwise.
DelayFn = Callable[[Task, int], float]


class ReleaseController:
    """Release bookkeeping for a single task under the SVO model."""

    def __init__(self, task: Task, release_delay: Optional[DelayFn] = None) -> None:
        self.task = task
        self._delay = release_delay
        #: Index of the next job to release.
        self.next_index: int = 0
        #: Earliest legal release of the next job:
        #: virtual time for level C, actual time for A/B/D.
        self._next_point: float = task.phase
        if release_delay is not None:
            self._next_point += max(0.0, release_delay(task, 0))

    # ------------------------------------------------------------------
    @property
    def is_virtual(self) -> bool:
        """Whether this task's separations live in virtual time (level C)."""
        return self.task.level is CriticalityLevel.C

    @property
    def next_release_virtual(self) -> float:
        """``v(r_{i,k})`` of the next pending release (level-C tasks only)."""
        if not self.is_virtual:
            raise ValueError(f"task {self.task.label} does not release in virtual time")
        return self._next_point

    def next_release_actual(self, clock: VirtualClock, now: float) -> float:
        """Actual time at which the pending release timer should fire.

        For level-C tasks this is ``virt_to_act(v(r_{i,k}))`` under the
        clock's *current* segment (Algorithm 1 ``schedule_pending_release``).
        If the speed changes before the timer fires, the kernel must call
        this again to re-arm the timer (lines 21-22) — the returned instant
        is only valid until the next speed change.

        For non-virtual tasks the release point is already an actual time.

        The result is clamped at *now*: a release whose earliest legal
        instant has already passed is due immediately.
        """
        if self.is_virtual:
            virt_now = clock.act_to_virt(now)
            if self._next_point <= virt_now:
                return now
            return clock.virt_to_act(self._next_point)
        return max(now, self._next_point)

    def fire(self, clock: VirtualClock, now: float) -> tuple[int, float]:
        """Record a release at actual time *now*; return ``(index, v(r))``.

        Checks eq. 5 (or its actual-time analogue): the release must not
        precede the earliest legal instant.  Advances the controller to
        the next job: ``v(r_{i,k+1}) >= v(r_{i,k}) + T_i`` for level C,
        ``r_{i,k+1} >= r_{i,k} + T_i`` otherwise, plus any sporadic delay.
        """
        index = self.next_index
        if self.is_virtual:
            point = clock.act_to_virt(now)
            # Tolerate the float round-off inherent in firing a timer at
            # virt_to_act(next_point): the virtual separation constraint is
            # semantically met because the timer was armed at the earliest
            # legal instant.  The tolerance is relative (with an absolute
            # floor) so it stays above one ulp at large virtual times.
            if point < self._next_point - max(1e-9, self._next_point * 1e-15):
                raise ValueError(
                    f"release of {self.task.label},{index} at virtual time {point} "
                    f"violates eq. 5 (earliest legal: {self._next_point})"
                )
            point = max(point, self._next_point)
        else:
            point = now
            if point < self._next_point - max(1e-12, self._next_point * 1e-15):
                raise ValueError(
                    f"release of {self.task.label},{index} at {point} violates the "
                    f"minimum separation (earliest legal: {self._next_point})"
                )
            point = max(point, self._next_point)
        sep = self.task.period
        if self._delay is not None:
            sep += max(0.0, self._delay(self.task, index + 1))
        self._next_point = point + sep
        self.next_index = index + 1
        return index, point
