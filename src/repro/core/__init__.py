"""The paper's primary contribution.

* :mod:`repro.core.virtual_time` — the virtual clock of Algorithm 1:
  piecewise-linear mapping between actual and virtual time, with the exact
  kernel state ``(last_act, last_virt, speed)`` and the conversion
  functions ``act_to_virt`` / ``virt_to_act``.
* :mod:`repro.core.gel` — GEL / GEL-v priority points (eqs. 3 and 6) and
  the G-FL assignment of relative PPs.
* :mod:`repro.core.svo` — the SVO (sporadic with virtual time and
  overload) release rule (eq. 5) and release-timer retiming.
* :mod:`repro.core.monitor` — the userspace monitor programs: recovery
  mode, candidate idle instants (Def. 3 / Theorem 1), SIMPLE (Algorithm 3)
  and ADAPTIVE (Algorithm 4).
* :mod:`repro.core.tolerance` — response-time tolerances (Def. 1) derived
  from the analytical bounds in :mod:`repro.analysis`.
* :mod:`repro.core.policies` — extension monitors beyond the paper:
  gradual speed restoration and floor-clamped ADAPTIVE.
"""

from repro.core.gel import (
    gedf_relative_pps,
    gfl_relative_pps,
    virtual_priority,
)
from repro.core.monitor import (
    AdaptiveMonitor,
    CompletionReport,
    Monitor,
    NullMonitor,
    SimpleMonitor,
)
from repro.core.policies import ClampedAdaptiveMonitor, SteppedRestoreMonitor
from repro.core.svo import ReleaseController
from repro.core.tolerance import assign_tolerances
from repro.core.virtual_time import SpeedChange, SpeedProfile, VirtualClock

__all__ = [
    "VirtualClock",
    "SpeedProfile",
    "SpeedChange",
    "ReleaseController",
    "Monitor",
    "NullMonitor",
    "SimpleMonitor",
    "AdaptiveMonitor",
    "ClampedAdaptiveMonitor",
    "SteppedRestoreMonitor",
    "CompletionReport",
    "gfl_relative_pps",
    "gedf_relative_pps",
    "virtual_priority",
    "assign_tolerances",
]
