"""Extension monitor policies beyond the paper's SIMPLE and ADAPTIVE.

The paper's evaluation (Sec. 5) surfaces two rough edges that invite
follow-up policies, both implemented here as extensions and evaluated in
``benchmarks/bench_extension_policies.py``:

* **ADAPTIVE throttles too hard** — "jobs are released at a drastically
  lower frequency during the recovery period".
  :class:`ClampedAdaptiveMonitor` keeps Algorithm 4's runtime speed
  choice but never goes below a configured floor, trading a little
  dissipation time for a bounded impact on releases.

* **SIMPLE restores speed 1 in one jump** — at the idle normal instant
  the release rate snaps back, which re-injects the full level-C arrival
  rate instantly.  :class:`SteppedRestoreMonitor` raises the speed in
  multiplicative steps instead, re-verifying normality (a fresh idle
  normal instant) between steps.  The episode closes only when speed 1
  is reached, so dissipation time remains honestly measured.

Both reuse the Algorithm 2 machinery unchanged — they only override what
happens at a miss (Algorithm 3/4's role) and/or at the recovery-exit
point, so all Theorem 1 reasoning still applies to each individual
speed plateau.
"""

from __future__ import annotations

from repro.core.monitor import CompletionReport, Monitor, SpeedController

__all__ = ["ClampedAdaptiveMonitor", "SteppedRestoreMonitor"]


class ClampedAdaptiveMonitor(Monitor):
    """Algorithm 4 with a floor on the chosen speed.

    ``s(t) = max(floor, a * (Y_i + xi_i) / R_{i,k})`` over the episode's
    misses, ratcheting downward only.  With ``floor = 0`` this is exactly
    ADAPTIVE; with ``floor = a`` it degenerates to SIMPLE(a) triggered by
    the first miss.
    """

    def __init__(self, controller: SpeedController, a: float, floor: float) -> None:
        super().__init__(controller)
        if not 0.0 < a <= 1.0:
            raise ValueError(f"aggressiveness must be in (0, 1], got {a}")
        if not 0.0 <= floor <= 1.0:
            raise ValueError(f"floor must be in [0, 1], got {floor}")
        self.a = a
        self.floor = floor
        self.current_speed: float = 1.0

    def handle_miss(self, report: CompletionReport) -> None:
        if not self.recovery_mode:
            self.current_speed = 1.0
            self._open_episode(report)
            self.init_recovery(report.comp_time, report.queue_empty)
        y = report.task.relative_pp
        xi = report.task.tolerance
        assert y is not None and xi is not None
        response = report.comp_time - report.release
        new_speed = max(self.floor, self.a * (y + xi) / response)
        new_speed = min(new_speed, 1.0)
        if new_speed < self.current_speed:
            self._change_speed(new_speed, report.comp_time)
            self.current_speed = new_speed


class SteppedRestoreMonitor(Monitor):
    """SIMPLE with gradual speed restoration.

    On the first miss outside recovery the clock slows to ``s``.  When an
    idle normal instant is found, instead of jumping to 1 the speed is
    multiplied by ``step_factor`` (capped at 1) and the monitor searches
    for another idle normal instant at the new plateau.  The recovery
    episode closes when speed 1 is reached.
    """

    def __init__(
        self, controller: SpeedController, s: float, step_factor: float = 2.0
    ) -> None:
        super().__init__(controller)
        if not 0.0 < s <= 1.0:
            raise ValueError(f"recovery speed must be in (0, 1], got {s}")
        if step_factor <= 1.0:
            raise ValueError(f"step_factor must be > 1, got {step_factor}")
        self.s = s
        self.step_factor = step_factor
        self.current_speed: float = 1.0

    def handle_miss(self, report: CompletionReport) -> None:
        if not self.recovery_mode:
            self.current_speed = self.s
            self._change_speed(self.s, report.comp_time)
            self._open_episode(report)
            self.init_recovery(report.comp_time, report.queue_empty)

    def _exit_recovery(self, report: CompletionReport) -> None:
        next_speed = min(1.0, self.current_speed * self.step_factor)
        if next_speed < 1.0:
            # Not done: install the next plateau and search for a fresh
            # idle normal instant at it; the episode stays open.
            self._change_speed(next_speed, report.comp_time)
            self.current_speed = next_speed
            self.init_recovery(report.comp_time, report.queue_empty)
        else:
            self.current_speed = 1.0
            super()._exit_recovery(report)
