"""Calibration-based response-time tolerances (extension).

Sec. 3 prescribes analytical bounds as tolerances.  In practice (and for
workloads whose analytical bounds are loose or unavailable), a designer
can instead *measure*: run the system overload-free for a calibration
window, record each task's worst observed PP-relative lateness, and set

.. math:: \\xi_i = margin \\times \\max(\\text{observed}_i, floor)

Smaller tolerances mean faster overload detection (less of the overload
window passes before the first miss) at the price of a higher
false-positive risk if the calibration window missed the true worst
case.  ``benchmarks/bench_extension_calibration.py`` quantifies the
trade-off against the analytical assignment.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.model.behavior import ConstantBehavior, ExecutionBehavior
from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet
from repro.sim.kernel import KernelConfig, MC2Kernel

__all__ = ["measure_pp_lateness", "calibrate_tolerances"]


def measure_pp_lateness(
    ts: TaskSet,
    horizon: float,
    behavior: Optional[ExecutionBehavior] = None,
) -> Dict[int, float]:
    """Worst observed PP-relative lateness per level-C task.

    Runs an overload-free simulation (every job at its level-C PWCET by
    default — the worst admissible normal behaviour) and returns, per
    task, ``max over completed jobs of t^c - y`` clamped at 0.  Jobs that
    completed before their PP contribute 0.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    kernel = MC2Kernel(
        ts,
        behavior=behavior if behavior is not None else ConstantBehavior(),
        config=KernelConfig(),
    )
    trace = kernel.run(horizon)
    worst: Dict[int, float] = {
        t.task_id: 0.0 for t in ts.level(CriticalityLevel.C)
    }
    for rec in trace.completed(CriticalityLevel.C):
        lateness = rec.pp_lateness
        if lateness is not None and lateness > worst[rec.task_id]:
            worst[rec.task_id] = lateness
    return worst


def calibrate_tolerances(
    ts: TaskSet,
    horizon: float = 5.0,
    margin: float = 1.5,
    floor: Optional[float] = None,
    behavior: Optional[ExecutionBehavior] = None,
) -> TaskSet:
    """Return a copy of *ts* with measured (calibrated) tolerances.

    Parameters
    ----------
    ts:
        The task set; existing tolerances are replaced.
    horizon:
        Calibration window (simulated seconds of normal operation).
    margin:
        Safety multiplier (> 1) over the worst observed lateness.
    floor:
        Minimum pre-margin lateness, guarding tasks that happened never
        to complete after their PP during calibration.  Defaults to each
        task's level-C PWCET.
    behavior:
        Calibration behaviour (default: level-C PWCET execution).
    """
    if margin < 1.0:
        raise ValueError(f"margin must be >= 1, got {margin}")
    worst = measure_pp_lateness(ts, horizon, behavior)
    new_tasks = []
    for t in ts:
        if t.level is CriticalityLevel.C:
            base = floor if floor is not None else t.pwcet(CriticalityLevel.C)
            xi = margin * max(worst[t.task_id], base)
            new_tasks.append(t.with_tolerance(xi))
        else:
            new_tasks.append(t)
    return TaskSet(new_tasks, m=ts.m)
