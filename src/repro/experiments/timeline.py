"""Response-time timelines: the quantitative view behind Figs. 2-3.

The paper argues about *patterns over time* — "response times of level-C
jobs settle into a pattern that is degraded compared to (a)" — which a
single max/mean cannot show.  This module bins completed level-C jobs by
release time and reports the worst normalized response per bin, giving a
degradation/recovery curve:

* before the overload: a flat baseline;
* during/after it without recovery: a step up that never comes back
  (Figs. 2(b)/3(b));
* with recovery: a spike followed by return to baseline (Fig. 2(c)).

``render_sparkline`` draws the curve as a Unicode sparkline for CLI and
example output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet
from repro.sim.trace import Trace

__all__ = ["TimelineBin", "response_timeline", "render_sparkline"]

_SPARK = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class TimelineBin:
    """One time bin of the response timeline."""

    start: float
    end: float
    #: Jobs released in the bin that completed.
    jobs: int
    #: Worst response time among them (0.0 when empty).
    max_response: float
    #: Worst response normalized by the task's period (comparability
    #: across tasks with very different rates).
    max_normalized: float


def response_timeline(
    trace: Trace,
    ts: TaskSet,
    bin_width: float,
    horizon: Optional[float] = None,
) -> List[TimelineBin]:
    """Bin completed level-C jobs by release time.

    Parameters
    ----------
    trace:
        A finished run.
    ts:
        The task set (for period normalization).
    bin_width:
        Bin size in seconds.
    horizon:
        Timeline end; defaults to the last completion.
    """
    if bin_width <= 0:
        raise ValueError(f"bin_width must be > 0, got {bin_width}")
    completed = trace.completed(CriticalityLevel.C)
    if horizon is None:
        horizon = max((r.completion for r in completed), default=0.0)
    n_bins = max(1, int(round(horizon / bin_width)))
    counts = [0] * n_bins
    worst = [0.0] * n_bins
    worst_norm = [0.0] * n_bins
    for rec in completed:
        b = int(rec.release / bin_width)
        if b >= n_bins:
            continue
        counts[b] += 1
        resp = rec.response_time or 0.0
        if resp > worst[b]:
            worst[b] = resp
        norm = resp / ts[rec.task_id].period
        if norm > worst_norm[b]:
            worst_norm[b] = norm
    return [
        TimelineBin(
            start=i * bin_width,
            end=(i + 1) * bin_width,
            jobs=counts[i],
            max_response=worst[i],
            max_normalized=worst_norm[i],
        )
        for i in range(n_bins)
    ]


def render_sparkline(
    bins: Sequence[TimelineBin],
    value: str = "max_normalized",
    width: Optional[int] = None,
) -> str:
    """Draw the timeline as a Unicode sparkline.

    ``value`` selects the per-bin quantity (an attribute of
    :class:`TimelineBin`); ``width`` optionally downsamples to that many
    characters (taking the max within each group, so spikes survive).
    """
    xs = [getattr(b, value) for b in bins]
    if not xs:
        return ""
    if width is not None and width < len(xs):
        grouped = []
        per = len(xs) / width
        for i in range(width):
            lo, hi = int(i * per), max(int(i * per) + 1, int((i + 1) * per))
            grouped.append(max(xs[lo:hi]))
        xs = grouped
    top = max(xs)
    if top <= 0:
        return _SPARK[0] * len(xs)
    out = []
    for x in xs:
        idx = min(len(_SPARK) - 1, int(x / top * (len(_SPARK) - 1) + 0.5))
        out.append(_SPARK[idx])
    return "".join(out)
