"""Fig. 9: scheduling overhead with and without the virtual-time mechanism.

The paper measures in-kernel scheduling overheads (Feather-Trace) with
and without virtual time, reporting average- and worst-case values and
finding: average +~40 %, worst case ~2x, both small in absolute terms.

Our substitution (DESIGN.md, substitution 3): we time the simulator's
scheduler invocation — the pick-next pass plus, for the virtual-time
variant, the Algorithm 1 bookkeeping (conversions, PP actualization,
timer re-arming) — via the kernel's :mod:`repro.obs` timing spans
(``with kernel.spans.span("pick_next")``, backed by
``time.perf_counter_ns``).  The raw nanosecond samples are read back
from the ``kernel.pick_next.ns`` / ``kernel.change_speed.ns``
histograms of each kernel's metrics registry — the simulator analogue
of Feather-Trace's in-kernel event buffers.

For a fair comparison the two variants must schedule the *same* job
population: a no-mechanism baseline left in overload accumulates backlog
and pays more per pick-next pass, which would mask the mechanism's cost.
We therefore compare three configurations:

* ``without_vt`` — plain GEL (identity clock), normal execution;
* ``with_vt`` — virtual-time mechanism present but idle (speed stays 1),
  same normal execution → an event-for-event identical schedule, so the
  timing difference is exactly the mechanism's bookkeeping;
* ``with_vt_active`` — SIMPLE recovering from a SHORT overload, which
  additionally exercises the ``change_speed`` path (PP actualization and
  release-timer re-arming).

Absolute values are Python-simulator artifacts; the *comparison* (the
mechanism adds modest average overhead) is the reproduced claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.experiments.runner import MonitorSpec, run_overload_experiment
from repro.model.behavior import ConstantBehavior
from repro.model.taskset import TaskSet
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.workload.scenarios import SHORT, OverloadScenario

__all__ = ["OverheadResult", "measure_overheads"]


@dataclass(frozen=True)
class OverheadResult:
    """Scheduling-overhead comparison (all values in microseconds)."""

    avg_with_vt: float
    max_with_vt: float
    avg_without_vt: float
    max_without_vt: float
    samples_with_vt: int
    samples_without_vt: int
    #: The active-recovery variant (speed changes exercised); informative.
    avg_with_vt_active: float = 0.0
    max_with_vt_active: float = 0.0
    samples_with_vt_active: int = 0

    @property
    def avg_ratio(self) -> float:
        """Average-case overhead ratio, mechanism present vs. absent."""
        if self.avg_without_vt == 0:
            return float("inf")
        return self.avg_with_vt / self.avg_without_vt

    @property
    def max_ratio(self) -> float:
        """Worst-case overhead ratio."""
        if self.max_without_vt == 0:
            return float("inf")
        return self.max_with_vt / self.max_without_vt

    def render(self) -> str:
        """Format like the Fig. 9 bar groups."""
        rows = [
            "Fig. 9: Scheduling overhead measurements (simulator scheduler path)",
            f"  {'variant':<26}{'avg (us)':>12}{'max (us)':>12}{'samples':>10}",
            f"  {'without virtual time':<26}{self.avg_without_vt:>12.3f}"
            f"{self.max_without_vt:>12.3f}{self.samples_without_vt:>10d}",
            f"  {'with virtual time (idle)':<26}{self.avg_with_vt:>12.3f}"
            f"{self.max_with_vt:>12.3f}{self.samples_with_vt:>10d}",
        ]
        if self.samples_with_vt_active:
            rows.append(
                f"  {'with virtual time (active)':<26}{self.avg_with_vt_active:>12.3f}"
                f"{self.max_with_vt_active:>12.3f}{self.samples_with_vt_active:>10d}"
            )
        rows.append(
            f"  average-case ratio: {self.avg_ratio:.2f}x   "
            f"worst-case ratio: {self.max_ratio:.2f}x"
        )
        return "\n".join(rows)


#: Span histograms that make up the scheduler path (see repro.sim.kernel).
_SCHED_SPANS = ("kernel.pick_next.ns", "kernel.change_speed.ns")


def _span_samples(kernel: MC2Kernel) -> List[int]:
    """Raw scheduler-path samples (ns) from *kernel*'s metrics registry."""
    return [
        int(v)
        for name in _SCHED_SPANS
        for v in kernel.metrics.histogram(name).samples
    ]


def _normal_run_samples(ts: TaskSet, use_virtual_time: bool, horizon: float) -> List[int]:
    kernel = MC2Kernel(
        ts,
        behavior=ConstantBehavior(),
        config=KernelConfig(use_virtual_time=use_virtual_time, measure_overhead=True),
    )
    kernel.run(horizon)
    return _span_samples(kernel)


def measure_overheads(
    tasksets: Sequence[TaskSet],
    scenario: OverloadScenario = SHORT,
    s: float = 0.6,
    horizon: float = 5.0,
    trim_max_quantile: float = 1.0,
) -> OverheadResult:
    """Measure scheduler-path overheads over *tasksets*.

    ``trim_max_quantile < 1`` reports that quantile instead of the true
    maximum, which suppresses OS-scheduling noise in wall-clock timings.
    """
    with_vt: List[int] = []
    without_vt: List[int] = []
    active: List[int] = []
    for ts in tasksets:
        # Interleave the two idle-mechanism variants so OS noise (cache
        # state, frequency scaling) hits both alike.
        without_vt.extend(_normal_run_samples(ts, use_virtual_time=False, horizon=horizon))
        with_vt.extend(_normal_run_samples(ts, use_virtual_time=True, horizon=horizon))
        out = run_overload_experiment(
            ts,
            scenario,
            MonitorSpec("simple", s),
            horizon=horizon,
            config=KernelConfig(use_virtual_time=True, measure_overhead=True),
            keep_artifacts=True,
        )
        active.extend(_span_samples(out.kernel))  # type: ignore[union-attr]
    wv = np.asarray(with_vt, dtype=float) / 1e3  # ns -> us
    wo = np.asarray(without_vt, dtype=float) / 1e3
    ac = np.asarray(active, dtype=float) / 1e3
    if wv.size == 0 or wo.size == 0:
        raise ValueError("no overhead samples collected")

    def _max(xs: np.ndarray) -> float:
        if xs.size == 0:
            return 0.0
        if trim_max_quantile >= 1.0:
            return float(xs.max())
        return float(np.quantile(xs, trim_max_quantile))

    return OverheadResult(
        avg_with_vt=float(wv.mean()),
        max_with_vt=_max(wv),
        avg_without_vt=float(wo.mean()),
        max_without_vt=_max(wo),
        samples_with_vt=int(wv.size),
        samples_without_vt=int(wo.size),
        avg_with_vt_active=float(ac.mean()) if ac.size else 0.0,
        max_with_vt_active=_max(ac),
        samples_with_vt_active=int(ac.size),
    )
