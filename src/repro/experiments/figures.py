"""Reproduction of the paper's experimental figures (Figs. 6-9).

Each ``figureN`` function runs the corresponding sweep and returns a
:class:`FigureData` whose :meth:`~FigureData.render` prints the same
series the paper plots: one line per overload scenario, one point per
parameter value, with means and 95 % confidence intervals over the
generated task sets.

Figs. 7 and 8 are two views of the *same* ADAPTIVE runs (dissipation
time and minimum speed), so :func:`adaptive_sweep` runs them once and
both figure builders consume the cached results.

The sweeps themselves are grids of frozen
:class:`~repro.runtime.spec.RunSpec` cells submitted through a
:class:`~repro.runtime.executor.SweepExecutor` — pass ``executor=`` to
parallelize over processes and/or reuse a content-addressed result
cache; the default is an uncached :class:`~repro.runtime.executor.SerialBackend`.
Task sets may be given as :class:`~repro.model.taskset.TaskSet` objects
(embedded by value) or as :class:`~repro.runtime.spec.TaskSetSpec`
references (reconstructed worker-side from their generator seed, the
cheap and cache-stable form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.metrics import RunResult
from repro.model.taskset import TaskSet
from repro.runtime.executor import SerialBackend, SweepExecutor
from repro.runtime.spec import (
    KernelSpec,
    MonitorSpec,
    ObsSpec,
    RunSpec,
    ScenarioSpec,
    TaskSetSpec,
)
from repro.sim.kernel import KernelConfig
from repro.util.stats import ConfidenceInterval, mean_ci
from repro.workload.scenarios import OverloadScenario, standard_scenarios

__all__ = [
    "SeriesPoint",
    "FigureSeries",
    "FigureData",
    "monitor_sweep",
    "figure6",
    "adaptive_sweep",
    "figure7",
    "figure8",
    "DEFAULT_SWEEP_VALUES",
]

#: A task set by value or by reconstructible reference.
TaskSetLike = Union[TaskSet, TaskSetSpec]

#: The paper sweeps s (SIMPLE) and a (ADAPTIVE) from 0.2 to 1.0 in 0.2 steps.
DEFAULT_SWEEP_VALUES: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class SeriesPoint:
    """One plotted point: parameter value -> mean with CI."""

    x: float
    ci: ConfidenceInterval
    #: How many of the underlying runs hit the simulation horizon.
    truncated_runs: int = 0


@dataclass(frozen=True)
class FigureSeries:
    """One line of a figure (one overload scenario)."""

    label: str
    points: Tuple[SeriesPoint, ...]


@dataclass(frozen=True)
class FigureData:
    """A reproduced figure: titled series of mean+CI points."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: Tuple[FigureSeries, ...]

    def render(self, unit_scale: float = 1.0, unit: str = "") -> str:
        """Format the figure as the table of values the paper plots."""
        lines = [f"{self.figure_id}: {self.title}", f"  x = {self.xlabel}; y = {self.ylabel}"]
        xs = sorted({p.x for s in self.series for p in s.points})
        header = f"  {'scenario':<10}" + "".join(f"{x:>16.2f}" for x in xs)
        lines.append(header)
        for s in self.series:
            by_x = {p.x: p for p in s.points}
            cells = []
            for x in xs:
                p = by_x.get(x)
                if p is None:
                    cells.append(f"{'-':>16}")
                else:
                    mark = "*" if p.truncated_runs else " "
                    cells.append(
                        f"{p.ci.mean * unit_scale:9.2f}±{p.ci.half_width * unit_scale:5.2f}{mark}"
                    )
            lines.append(f"  {s.label:<10}" + "".join(cells))
        if unit:
            lines.append(f"  (values in {unit}; '*' marks points with horizon-truncated runs)")
        return "\n".join(lines)

    def point(self, label: str, x: float) -> SeriesPoint:
        """Look up one point by series label and x value."""
        for s in self.series:
            if s.label == label:
                for p in s.points:
                    if abs(p.x - x) < 1e-9:
                        return p
        raise KeyError(f"no point ({label!r}, {x})")


def _aggregate(
    figure_id: str,
    title: str,
    xlabel: str,
    ylabel: str,
    results: Dict[Tuple[str, float], List[RunResult]],
    value: str,
) -> FigureData:
    scenarios = sorted({k[0] for k in results}, key=lambda s: s)
    # Keep the paper's presentation order where possible.
    order = {"SHORT": 0, "LONG": 1, "DOUBLE": 2}
    scenarios.sort(key=lambda s: order.get(s, 99))
    series = []
    for sc in scenarios:
        pts = []
        for (name, x), runs in sorted(results.items(), key=lambda kv: kv[0][1]):
            if name != sc:
                continue
            vals = [getattr(r, value) for r in runs]
            pts.append(
                SeriesPoint(
                    x=x,
                    ci=mean_ci(vals),
                    truncated_runs=sum(1 for r in runs if r.truncated),
                )
            )
        series.append(FigureSeries(label=sc, points=tuple(pts)))
    return FigureData(
        figure_id=figure_id,
        title=title,
        xlabel=xlabel,
        ylabel=ylabel,
        series=tuple(series),
    )


def _as_taskset_spec(ts: TaskSetLike) -> TaskSetSpec:
    if isinstance(ts, TaskSetSpec):
        return ts
    return TaskSetSpec.from_taskset(ts)


def monitor_sweep(
    tasksets: Sequence[TaskSetLike],
    kind: str,
    values: Sequence[float],
    scenarios: Sequence[OverloadScenario] = standard_scenarios(),
    horizon: float = 30.0,
    config: Optional[KernelConfig] = None,
    executor: Optional[SweepExecutor] = None,
    obs: Optional[ObsSpec] = None,
) -> Dict[Tuple[str, float], List[RunResult]]:
    """Run the scenario x value x task-set grid for one monitor *kind*.

    Builds one :class:`~repro.runtime.spec.RunSpec` per cell and submits
    the whole grid through *executor* in a single batch (so a process
    pool sees every cell at once and the cache is consulted per cell).
    Returns ``{(scenario name, value): [RunResult per task set]}``.

    *obs* (observation-only; never hashed) is attached to every cell —
    with a ``trace_dir`` set, each simulated cell streams a JSONL event
    trace named after its spec key.
    """
    ex = executor if executor is not None else SerialBackend()
    kernel = KernelSpec.from_config(config) if config is not None else KernelSpec()
    obs_spec = obs if obs is not None else ObsSpec()
    ts_specs = [_as_taskset_spec(ts) for ts in tasksets]
    cells = [
        (sc.name, x)
        for sc in scenarios
        for x in values
        for _ in ts_specs
    ]
    specs = [
        RunSpec(
            taskset=ts_spec,
            scenario=ScenarioSpec.from_scenario(sc),
            monitor=MonitorSpec(kind, x),
            kernel=kernel,
            horizon=horizon,
            obs=obs_spec,
        )
        for sc in scenarios
        for x in values
        for ts_spec in ts_specs
    ]
    runs = ex.run(specs)
    results: Dict[Tuple[str, float], List[RunResult]] = {}
    for cell, run in zip(cells, runs):
        results.setdefault(cell, []).append(run)
    return results


def figure6(
    tasksets: Sequence[TaskSetLike],
    s_values: Sequence[float] = DEFAULT_SWEEP_VALUES,
    scenarios: Sequence[OverloadScenario] = standard_scenarios(),
    horizon: float = 30.0,
    config: Optional[KernelConfig] = None,
    executor: Optional[SweepExecutor] = None,
    obs: Optional[ObsSpec] = None,
) -> FigureData:
    """Fig. 6: average dissipation time for SIMPLE vs. recovery speed s.

    ``s = 1`` is the paper's no-slowdown baseline.
    """
    results = monitor_sweep(
        tasksets, "simple", s_values, scenarios=scenarios, horizon=horizon,
        config=config, executor=executor, obs=obs,
    )
    return _aggregate(
        "Fig. 6",
        "Dissipation time for SIMPLE",
        "virtual-time speed s(t)",
        "dissipation time (s)",
        results,
        value="dissipation",
    )


def adaptive_sweep(
    tasksets: Sequence[TaskSetLike],
    a_values: Sequence[float] = DEFAULT_SWEEP_VALUES,
    scenarios: Sequence[OverloadScenario] = standard_scenarios(),
    horizon: float = 30.0,
    config: Optional[KernelConfig] = None,
    executor: Optional[SweepExecutor] = None,
    obs: Optional[ObsSpec] = None,
) -> Dict[Tuple[str, float], List[RunResult]]:
    """Run the ADAPTIVE sweep once; Figs. 7 and 8 both read from it."""
    return monitor_sweep(
        tasksets, "adaptive", a_values, scenarios=scenarios, horizon=horizon,
        config=config, executor=executor, obs=obs,
    )


def figure7(sweep: Dict[Tuple[str, float], List[RunResult]]) -> FigureData:
    """Fig. 7: average dissipation time for ADAPTIVE vs. aggressiveness a."""
    return _aggregate(
        "Fig. 7",
        "Dissipation time for ADAPTIVE",
        "aggressiveness a",
        "dissipation time (s)",
        sweep,
        value="dissipation",
    )


def figure8(sweep: Dict[Tuple[str, float], List[RunResult]]) -> FigureData:
    """Fig. 8: average minimum s(t) chosen by ADAPTIVE vs. aggressiveness a."""
    return _aggregate(
        "Fig. 8",
        "Minimum s(t) for ADAPTIVE",
        "aggressiveness a",
        "minimum virtual-time speed",
        sweep,
        value="min_speed",
    )
