"""Run one (task set, overload scenario, monitor) experiment.

The procedure mirrors Sec. 5: simulate the task set under the scenario's
execution behaviour with the chosen monitor, then record the dissipation
time and the minimum virtual-clock speed.

Termination: the run may not simply stop at the first instant the
monitor is out of recovery — jobs released during the overload can still
be pending, and their late completions can start a *new* recovery
episode.  The runner therefore stops only when, past the last overload
window, (a) the monitor is out of recovery, (b) the clock runs at speed
1, (c) no job released during the overload is still pending, and then
(d) a confirmation window passes with no new recovery episode.  A hard
horizon caps pathological runs (flagged ``truncated``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.monitor import Monitor
from repro.core.virtual_time import VirtualClock
from repro.experiments.metrics import RunResult, dissipation_time
from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.runtime.spec import MonitorSpec
from repro.sim.backend import create_kernel
from repro.sim.budgets import BudgetEnforcedBehavior
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.sim.trace import Trace
from repro.workload.scenarios import OverloadScenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> runner)
    from repro.faults.plane import FaultPlane
    from repro.workload.traffic import TrafficSpec

# MonitorSpec moved to repro.runtime.spec (registry-backed); re-exported
# here because this was its historical home.
__all__ = ["MonitorSpec", "run_overload_experiment", "ExperimentOutput"]


@dataclass(frozen=True)
class ExperimentOutput:
    """A :class:`RunResult` plus the raw trace/kernel/monitor for inspection.

    ``kernel`` is whichever backend ``config.backend`` selected — the
    object-based :class:`MC2Kernel` or the struct-of-arrays
    :class:`~repro.sim.soa.SoAKernel`; both expose the backend-neutral
    surface documented in :mod:`repro.sim.backend`.
    """

    result: RunResult
    trace: Trace
    kernel: "MC2Kernel | object"
    monitor: Monitor


def run_overload_experiment(
    ts: TaskSet,
    scenario: OverloadScenario,
    spec: MonitorSpec,
    horizon: float = 30.0,
    confirm_window: float = 0.5,
    config: Optional[KernelConfig] = None,
    keep_artifacts: bool = False,
    level_c_budgets: bool = True,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    fault_plane: Optional["FaultPlane"] = None,
    traffic: Optional["TrafficSpec"] = None,
) -> RunResult | ExperimentOutput:
    """Run one overload-recovery experiment.

    Parameters
    ----------
    ts:
        The task set (level-C tasks must carry tolerances).
    scenario:
        Overload scenario (drives the execution behaviour).
    spec:
        Which monitor to attach.
    horizon:
        Hard simulation-time cap.
    confirm_window:
        Quiet time required after recovery looks complete before the run
        is accepted as settled.
    config:
        Kernel configuration override.
    keep_artifacts:
        Return the full :class:`ExperimentOutput` instead of just the
        :class:`RunResult` (used by examples and debugging; traces are
        dropped by default to keep sweeps lean).
    level_c_budgets:
        Enforce level-C execution budgets (paper footnotes 2-3): level-C
        jobs cannot exceed their level-C PWCETs, so the overload consists
        of level-A/B jobs occupying essentially all CPUs during the
        window (Sec. 5's "all CPUs are occupied by level-A and -B
        work").  This is the configuration whose dissipation magnitudes
        match the paper's concrete claims (e.g. s = 0.6 keeping
        dissipation under twice the overload length).  Set ``False`` for
        the harsher no-budget variant in which level-C demand itself
        inflates 10x (ablation).
    tracer:
        Structured event stream (:mod:`repro.obs`); observation only —
        the :class:`RunResult` is identical with or without it.
    metrics:
        Metrics registry shared with the kernel (counters + span
        histograms); defaults to a fresh per-kernel registry.
    fault_plane:
        Optional :class:`~repro.faults.plane.FaultPlane` injecting
        environment degradations (dropped monitor reports, delayed speed
        commands, clock skew, execution spikes, release jitter, CPU
        stalls).  ``None`` (default) leaves the run untouched — no
        wrapper objects, no extra branches on the hot path.
    traffic:
        Optional :class:`~repro.workload.traffic.TrafficSpec`: an
        open-system workload.  The spec's server tasks are appended to
        *ts* and the execution behaviour is wrapped so server jobs
        execute their granted request backlog; the dissipation origin
        becomes the later of the scenario's last window end and the
        traffic's last burst end.
    """
    if traffic is not None:
        ts = traffic.augment(ts)
    for t in ts.level(CriticalityLevel.C):
        if t.tolerance is None:
            raise ValueError(
                f"level-C task {t.label} has no tolerance; run assign_tolerances first"
            )
    cfg = config if config is not None else KernelConfig()
    behavior = scenario.behavior()
    if level_c_budgets:
        behavior = BudgetEnforcedBehavior(
            behavior, enforce_a=False, enforce_b=False, enforce_c=True
        )
    traffic_behavior = None
    if traffic is not None:
        # Outside budget enforcement: grants are already capped at the
        # server budget (== its level-C PWCET), so clipping is a no-op;
        # wrapping outside keeps the scenario/budget pair untouched for
        # the periodic tasks.
        behavior = traffic_behavior = traffic.build_behavior(behavior, horizon)
    if fault_plane is not None:
        # Spikes wrap *outside* budget enforcement: an execution spike is
        # extra demand beyond the PWCETs, so budgets must not clip it.
        if cfg.backend != "reference":
            raise ValueError(
                "fault injection hooks into MC2Kernel internals; "
                f"backend {cfg.backend!r} does not support a fault plane"
            )
        cfg = fault_plane.amend_config(cfg)
        behavior = fault_plane.wrap_behavior(behavior)
    kernel = create_kernel(ts, behavior=behavior, config=cfg, tracer=tracer, metrics=metrics)
    monitor = spec.build(kernel)
    kernel.attach_monitor(monitor)
    if fault_plane is not None:
        fault_plane.install(kernel, monitor)

    end = scenario.last_overload_end
    if traffic is not None:
        end = max(end, traffic.last_burst_end(horizon))

    def settled() -> bool:
        if kernel.now <= end:
            return False
        if monitor.recovery_mode:
            return False
        if isinstance(kernel.clock, VirtualClock) and not kernel.clock.is_normal_speed:
            return False
        # Jobs released during (or before) the overload must be gone:
        # their late completions can still trigger recovery.
        return not kernel.pending_c_released_before(end)

    kernel.start()
    while True:
        kernel.run_until(horizon, stop=settled)
        if kernel.now >= horizon or not settled():
            break
        # Confirmation: simulate a quiet window; if recovery re-arms
        # (settled() flips false), loop and keep going.
        target = min(horizon, kernel.now + confirm_window)
        kernel.run_until(target, stop=lambda: not settled())
        if settled() and kernel.now >= target - 1e-9:
            break
    trace = kernel.finish()

    diss, truncated = dissipation_time(monitor, end, kernel.now)
    sojourn = None
    if traffic_behavior is not None:
        from repro.experiments.metrics import SojournStats

        samples, requests = traffic_behavior.sojourn_samples(trace)
        sojourn = SojournStats.from_samples(samples, requests)
    result = RunResult(
        scenario=scenario.name,
        monitor=spec.label,
        dissipation=diss,
        truncated=truncated or (kernel.now >= horizon and monitor.recovery_mode),
        min_speed=monitor.minimum_requested_speed(),
        miss_count=monitor.miss_count,
        episodes=len(monitor.episodes),
        max_response_c=trace.max_response_time(CriticalityLevel.C),
        sim_end=kernel.now,
        events=kernel.events_processed,
        sojourn=sojourn,
    )
    if keep_artifacts:
        return ExperimentOutput(result=result, trace=trace, kernel=kernel, monitor=monitor)
    return result
