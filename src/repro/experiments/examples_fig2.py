"""The paper's worked example systems (Figs. 2 and 3).

The figures themselves are schedule graphics whose full parameter tables
are not recoverable from the text, so we *reconstruct* concrete 2-CPU
systems matching every waypoint the prose fixes (DESIGN.md,
substitution 5):

**Fig. 2 system** — two level-A tasks, one per CPU, ``(T, C^C, C^A) =
(12, 2, 4)``, and three level-C tasks that fully utilize the remaining
capacity (``U_C = 2 - 2/6 = 5/3``):

* ``tau1 = (T=4, Y=3, C=2)`` — the prose fixes T=4 and Y=3 exactly
  ("released at actual time 0, has its PP three units of time later at
  actual time 3, and tau_{1,1} can be released four units later at
  time 4");
* ``tau2 = (T=6, Y=5, C=3)`` — T=6 matches tau_{2,6} being released at
  actual time 36;
* ``tau3 = (T=6, Y=7, C=4)``.

The Y values of tau2/tau3 are chosen so that, like the paper's example,
the worst overload-free PP-relative lateness exactly reaches the
illustrative tolerance 3 ("barely within its tolerance") but never
exceeds it — so recovery triggers only under genuine overload.

All level-C tasks use the paper's illustrative response-time tolerance
of 3.  The overload is the one described: "both level-A tasks released
at time 12 run for their full level-A PWCETs" (4 instead of 2), and in
variant (c) recovery runs SIMPLE with ``s = 0.5``.

**Fig. 3 system** — the same two level-A tasks plus a *single* level-C
task ``tau1 = (T=6, Y=5, C=5)`` whose utilization ``5/6`` exactly equals
the per-CPU capacity left by level A: system-wide slack exists (the
second CPU is mostly idle), but the task itself has none, so a transient
overload degrades it permanently — the paper's per-task-utilization
phenomenon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.monitor import Monitor, NullMonitor, SimpleMonitor
from repro.core.tolerance import fixed_tolerances
from repro.model.behavior import ConstantBehavior, TraceBehavior
from repro.model.task import CriticalityLevel, Task
from repro.model.taskset import TaskSet
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.sim.trace import Trace

__all__ = [
    "figure2_taskset",
    "figure3_taskset",
    "overload_behavior",
    "ExampleRun",
    "run_example",
    "FIG2_TOLERANCE",
]

#: The paper's illustrative response-time tolerance ("we simply use a
#: response-time tolerance of three for each task").
FIG2_TOLERANCE = 3.0

#: Task ids of the two per-CPU level-A tasks in both example systems.
A0, A1 = 100, 101


def _level_a_tasks() -> Tuple[Task, Task]:
    pw = {CriticalityLevel.A: 4.0, CriticalityLevel.B: 4.0, CriticalityLevel.C: 2.0}
    return (
        Task(task_id=A0, level=CriticalityLevel.A, period=12.0, pwcets=pw, cpu=0, name="A"),
        Task(task_id=A1, level=CriticalityLevel.A, period=12.0, pwcets=pw, cpu=1, name="B"),
    )


def figure2_taskset() -> TaskSet:
    """The reconstructed Fig. 2 system (fully utilized at level C)."""
    a0, a1 = _level_a_tasks()
    cs = [
        Task(task_id=1, level=CriticalityLevel.C, period=4.0,
             pwcets={CriticalityLevel.C: 2.0}, relative_pp=3.0, name="tau1"),
        Task(task_id=2, level=CriticalityLevel.C, period=6.0,
             pwcets={CriticalityLevel.C: 3.0}, relative_pp=5.0, name="tau2"),
        Task(task_id=3, level=CriticalityLevel.C, period=6.0,
             pwcets={CriticalityLevel.C: 4.0}, relative_pp=7.0, name="tau3"),
    ]
    ts = TaskSet([a0, a1, *cs], m=2)
    return fixed_tolerances(ts, FIG2_TOLERANCE)


def figure3_taskset() -> TaskSet:
    """The reconstructed Fig. 3 system (one level-C task with zero per-task slack)."""
    a0, a1 = _level_a_tasks()
    c1 = Task(task_id=1, level=CriticalityLevel.C, period=6.0,
              pwcets={CriticalityLevel.C: 5.0}, relative_pp=5.0, name="tau1")
    ts = TaskSet([a0, a1, c1], m=2)
    return fixed_tolerances(ts, FIG2_TOLERANCE)


def overload_behavior(overloaded: bool) -> TraceBehavior:
    """Execution behaviour for the examples.

    Without overload every job runs its level-C PWCET.  With overload,
    the level-A jobs released at time 12 (job index 1 of each) run their
    full level-A PWCET of 4 — the paper's Fig. 2(b)/3(b) condition.
    """
    overrides = {}
    if overloaded:
        overrides = {(A0, 1): 4.0, (A1, 1): 4.0}
    return TraceBehavior(overrides, default=ConstantBehavior(CriticalityLevel.C))


@dataclass
class ExampleRun:
    """Outcome of one example-schedule run."""

    trace: Trace
    kernel: MC2Kernel
    monitor: Monitor

    def response_time(self, task_id: int, index: int) -> float:
        """Response time of one job (raises if it never completed)."""
        rec = self.trace.job(task_id, index)
        r = rec.response_time
        if r is None:
            raise ValueError(f"job ({task_id},{index}) did not complete")
        return r


def run_example(
    ts: TaskSet,
    overloaded: bool,
    recovery_speed: Optional[float] = None,
    until: float = 72.0,
    record_intervals: bool = True,
) -> ExampleRun:
    """Run one variant of an example schedule.

    Parameters
    ----------
    ts:
        :func:`figure2_taskset` or :func:`figure3_taskset`.
    overloaded:
        Inject the time-12 level-A overload (variants (b)/(c)).
    recovery_speed:
        ``None`` disables recovery (variants (a)/(b)); a value in (0, 1]
        attaches SIMPLE with that speed (variant (c); the paper uses 0.5).
    until:
        Simulation horizon (6 level-A periods by default).
    """
    kernel = MC2Kernel(
        ts,
        behavior=overload_behavior(overloaded),
        config=KernelConfig(record_intervals=record_intervals),
    )
    monitor: Monitor
    if recovery_speed is None:
        monitor = NullMonitor(kernel)
    else:
        monitor = SimpleMonitor(kernel, s=recovery_speed)
    kernel.attach_monitor(monitor)
    trace = kernel.run(until)
    return ExampleRun(trace=trace, kernel=kernel, monitor=monitor)
