"""One-call programmatic reproduction of the paper's evaluation.

``examples/reproduce_paper.py`` drives this module; library users can
call :func:`full_reproduction` directly to get every figure as
structured data (and optionally as JSON files) without going through the
CLI.  Scale knobs (`tasksets`, sweep values) trade fidelity for time:
the paper's scale is 20 task sets and the full 0.2-1.0 sweeps.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.figures import (
    DEFAULT_SWEEP_VALUES,
    FigureData,
    adaptive_sweep,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.overhead import OverheadResult, measure_overheads
from repro.io.results_json import figure_to_json
from repro.model.taskset import TaskSet
from repro.runtime.executor import SweepExecutor, make_executor
from repro.runtime.spec import TaskSetSpec
from repro.workload.generator import GeneratorParams, taskset_seeds
from repro.workload.scenarios import OverloadScenario, standard_scenarios

__all__ = ["ReproductionReport", "full_reproduction"]


@dataclass(frozen=True)
class ReproductionReport:
    """All regenerated evaluation figures."""

    fig6: FigureData
    fig7: FigureData
    fig8: FigureData
    fig9: OverheadResult
    #: How many task sets the sweeps ran over.
    tasksets: int

    def render(self) -> str:
        """Every figure as the text tables EXPERIMENTS.md is built from."""
        parts = [
            self.fig6.render(unit_scale=1e3, unit="ms"),
            "",
            self.fig7.render(unit_scale=1e3, unit="ms"),
            "",
            self.fig8.render(unit_scale=1.0, unit="virtual speed"),
            "",
            self.fig9.render(),
        ]
        return "\n".join(parts)

    def write_json(self, directory: str | pathlib.Path) -> List[pathlib.Path]:
        """Archive each figure as JSON under *directory*; returns the paths."""
        out_dir = pathlib.Path(directory)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths = []
        for name, fig in (("fig6", self.fig6), ("fig7", self.fig7),
                          ("fig8", self.fig8)):
            p = out_dir / f"{name}.json"
            p.write_text(figure_to_json(fig) + "\n", encoding="utf-8")
            paths.append(p)
        p = out_dir / "fig9.json"
        p.write_text(
            json.dumps(
                {
                    "format": "repro-figure",
                    "version": 1,
                    "figure_id": "Fig. 9",
                    "avg_with_vt_us": self.fig9.avg_with_vt,
                    "max_with_vt_us": self.fig9.max_with_vt,
                    "avg_without_vt_us": self.fig9.avg_without_vt,
                    "max_without_vt_us": self.fig9.max_without_vt,
                    "avg_with_vt_active_us": self.fig9.avg_with_vt_active,
                    "avg_ratio": self.fig9.avg_ratio,
                },
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
        paths.append(p)
        return paths


def full_reproduction(
    tasksets: int = 20,
    base_seed: int = 2015,
    sweep_values: Sequence[float] = DEFAULT_SWEEP_VALUES,
    scenarios: Optional[Sequence[OverloadScenario]] = None,
    params: Optional[GeneratorParams] = None,
    horizon: float = 30.0,
    overhead_tasksets: int = 5,
    overhead_horizon: float = 3.0,
    prebuilt: Optional[Sequence[TaskSet]] = None,
    executor: Optional[SweepExecutor] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
) -> ReproductionReport:
    """Regenerate Figs. 6-9 and return them as a report.

    Parameters
    ----------
    tasksets, base_seed, params:
        Workload generation (paper: 20 sets, the default parameters).
    sweep_values:
        s values for SIMPLE / a values for ADAPTIVE.
    scenarios:
        Overload scenarios (default: SHORT/LONG/DOUBLE).
    horizon:
        Per-run simulation cap.
    overhead_tasksets, overhead_horizon:
        Scale of the Fig. 9 measurement.
    prebuilt:
        Skip generation and use these task sets instead.
    executor:
        Sweep executor for the Fig. 6-8 grids; overrides *jobs* /
        *cache_dir*.  Default: built by
        :func:`repro.runtime.executor.make_executor` from *jobs* and
        *cache_dir* — ``jobs > 1`` parallelizes the sweeps over worker
        processes, *cache_dir* makes re-runs incremental (only cells
        whose spec changed are simulated).  Fig. 9 measures wall-clock
        scheduler overhead and therefore always runs serially and
        uncached.
    checkpoint_dir:
        Checkpoint the Fig. 6-8 sweeps into durable content-addressed
        shards under this directory
        (:class:`~repro.runtime.shard.ShardedBackend`): a reproduction
        killed partway — machine reboot, OOM, ``kill -9`` — picks up
        from its completed shards on the next call (or via
        ``repro-mc2 sweep resume``) instead of starting over.
    """
    if prebuilt is not None:
        refs: List[TaskSetSpec] = [TaskSetSpec.from_taskset(ts) for ts in prebuilt]
        sets = list(prebuilt)
    else:
        # Thread the explicit per-set seeds into the specs so workers
        # regenerate exactly the sets the report claims to cover.
        refs = [TaskSetSpec.generated(seed, params)
                for seed in taskset_seeds(tasksets, base_seed)]
        sets = [r.materialize() for r in refs]
    ex = executor if executor is not None else make_executor(
        jobs=jobs, cache_dir=cache_dir, checkpoint_dir=checkpoint_dir)
    scen = tuple(scenarios) if scenarios is not None else standard_scenarios()
    fig6 = figure6(refs, s_values=sweep_values, scenarios=scen, horizon=horizon,
                   executor=ex)
    sweep = adaptive_sweep(refs, a_values=sweep_values, scenarios=scen,
                           horizon=horizon, executor=ex)
    fig7 = figure7(sweep)
    fig8 = figure8(sweep)
    fig9 = measure_overheads(
        sets[: min(overhead_tasksets, len(sets))],
        horizon=overhead_horizon,
        trim_max_quantile=0.999,
    )
    return ReproductionReport(fig6=fig6, fig7=fig7, fig8=fig8, fig9=fig9,
                              tasksets=len(sets))
