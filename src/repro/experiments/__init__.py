"""Experiment harness: the paper's Sec. 5 evaluation, end to end.

* :mod:`repro.experiments.runner` — run one (task set, scenario,
  monitor) experiment and extract its metrics.
* :mod:`repro.experiments.metrics` — dissipation time and run summaries.
* :mod:`repro.experiments.figures` — Figs. 6-8 sweeps and table printers.
* :mod:`repro.experiments.overhead` — Fig. 9 scheduling-overhead
  comparison.
* :mod:`repro.experiments.examples_fig2` — the reconstructed Fig. 2/3
  example systems.
"""

from repro.experiments.calibration import calibrate_tolerances, measure_pp_lateness
from repro.experiments.figures import (
    DEFAULT_SWEEP_VALUES,
    FigureData,
    FigureSeries,
    SeriesPoint,
    adaptive_sweep,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.metrics import RunResult, dissipation_time
from repro.experiments.overhead import OverheadResult, measure_overheads
from repro.experiments.suite import ReproductionReport, full_reproduction
from repro.experiments.timeline import TimelineBin, render_sparkline, response_timeline
from repro.experiments.runner import (
    ExperimentOutput,
    MonitorSpec,
    run_overload_experiment,
)

__all__ = [
    "RunResult",
    "dissipation_time",
    "MonitorSpec",
    "ExperimentOutput",
    "run_overload_experiment",
    "FigureData",
    "FigureSeries",
    "SeriesPoint",
    "DEFAULT_SWEEP_VALUES",
    "figure6",
    "adaptive_sweep",
    "figure7",
    "figure8",
    "OverheadResult",
    "measure_overheads",
    "calibrate_tolerances",
    "measure_pp_lateness",
    "response_timeline",
    "render_sparkline",
    "TimelineBin",
    "ReproductionReport",
    "full_reproduction",
]
