"""Experiment metrics: dissipation time and friends.

The paper's headline metric (Figs. 6-7) is **dissipation time**: "the
amount of time from when the last overload stopped until the
virtual-time clock was returned to normal".  We read it off the
monitor's recovery episodes: the clock is "returned to normal" when the
final recovery episode closes (the monitor issues ``change_speed(1)`` and
leaves recovery mode at the detected idle normal instant).

Fig. 8's metric is the **minimum virtual-time speed** chosen during the
run (interesting for ADAPTIVE, constant-by-construction for SIMPLE).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.monitor import Monitor
from repro.model.task import CriticalityLevel
from repro.sim.trace import Trace

__all__ = ["RunResult", "SojournStats", "dissipation_time"]


def dissipation_time(monitor: Monitor, last_overload_end: float, sim_end: float) -> tuple[float, bool]:
    """Compute (dissipation, truncated) from the monitor's episodes.

    * No recovery episode ever ran, or the final one closed before the
      overload ended: dissipation 0 (the clock was already normal when
      the overload stopped).
    * Final episode closed at ``t >= last_overload_end``: dissipation is
      ``t - last_overload_end``.
    * Final episode still open at the simulation horizon: the run was
      truncated; report the horizon-relative lower bound and flag it.
    """
    if not monitor.episodes:
        return 0.0, False
    last = monitor.episodes[-1]
    if last.end is None:
        return max(0.0, sim_end - last_overload_end), True
    return max(0.0, last.end - last_overload_end), False


@dataclass(frozen=True)
class SojournStats:
    """Per-request queueing delay of a traffic run (open-system runs only).

    The *sojourn time* of a request is the span from its arrival to the
    completion of the server job whose grant finally covered its demand
    — the queueing-theory response time of the open system, and the
    user-visible latency the offered-load/burst-size figures trade
    against dissipation.  Requests whose serving job never completed by
    the horizon (or whose demand was never fully granted) are censored:
    they count in ``requests`` but contribute no sample.

    Percentiles use the nearest-rank method on the served samples
    (deterministic, no interpolation), so the stats are byte-stable
    across backends and platforms.
    """

    #: Requests that arrived within the horizon (across all flows).
    requests: int
    #: Requests fully served by a completed server job.
    served: int
    #: Mean sojourn time over served requests (seconds).
    mean_s: float
    #: Median (nearest-rank) sojourn time.
    p50_s: float
    #: 95th-percentile (nearest-rank) sojourn time.
    p95_s: float
    #: Largest observed sojourn time.
    max_s: float

    @classmethod
    def from_samples(cls, samples: Sequence[float], requests: int) -> "SojournStats":
        served = len(samples)
        if served == 0:
            return cls(requests=requests, served=0,
                       mean_s=0.0, p50_s=0.0, p95_s=0.0, max_s=0.0)
        s = sorted(samples)

        def rank(q: float) -> float:
            return s[min(served - 1, max(0, math.ceil(q * served) - 1))]

        return cls(
            requests=requests,
            served=served,
            mean_s=sum(s) / served,
            p50_s=rank(0.5),
            p95_s=rank(0.95),
            max_s=s[-1],
        )

    def row(self) -> str:
        """One formatted table row (used by ``repro-mc2 traffic``)."""
        return (
            f"requests={self.requests:6d}  served={self.served:6d}  "
            f"sojourn mean={self.mean_s * 1e3:8.2f} ms  "
            f"p50={self.p50_s * 1e3:8.2f} ms  "
            f"p95={self.p95_s * 1e3:8.2f} ms  "
            f"max={self.max_s * 1e3:8.2f} ms"
        )


@dataclass(frozen=True)
class RunResult:
    """Everything one overload-recovery run produces."""

    #: Scenario name (SHORT/LONG/DOUBLE/...).
    scenario: str
    #: Monitor label, e.g. "SIMPLE(s=0.6)".
    monitor: str
    #: Dissipation time (seconds).
    dissipation: float
    #: Whether the run hit the horizon before recovery completed.
    truncated: bool
    #: Minimum virtual-clock speed requested during the run (Fig. 8).
    min_speed: float
    #: Number of response-time-tolerance misses observed.
    miss_count: int
    #: Number of recovery episodes.
    episodes: int
    #: Largest completed level-C response time.
    max_response_c: float
    #: Simulation time at which the run stopped.
    sim_end: float
    #: Simulator events processed (throughput diagnostics).
    events: int
    #: Per-request queueing metrics (open-system traffic runs only;
    #: ``None`` for scripted-overload runs, and omitted from canonical
    #: result JSON when ``None`` so pre-traffic artifacts keep their
    #: bytes).
    sojourn: Optional[SojournStats] = None

    def row(self) -> str:
        """One formatted table row (used by the figure printers)."""
        trunc = " (truncated)" if self.truncated else ""
        return (
            f"{self.scenario:<8} {self.monitor:<18} "
            f"dissipation={self.dissipation * 1e3:9.1f} ms{trunc}  "
            f"min_s={self.min_speed:5.3f}  misses={self.miss_count:5d}  "
            f"max_R_C={self.max_response_c * 1e3:8.2f} ms"
        )


def summarize_trace(trace: Trace) -> dict:
    """Compact level-C response-time statistics from a trace."""
    rs: List[float] = trace.response_times(CriticalityLevel.C)
    if not rs:
        return {"jobs": 0, "max": 0.0, "mean": 0.0}
    return {
        "jobs": len(rs),
        "max": max(rs),
        "mean": sum(rs) / len(rs),
    }
