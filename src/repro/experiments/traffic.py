"""Open-system traffic sweeps: capacity figures beyond the paper's grid.

The paper's Figs. 6-8 script overload into fixed windows; these sweeps
let overload *emerge* from request traffic
(:mod:`repro.workload.traffic`) and plot the recovery story against the
two capacity-planning axes the ROADMAP names:

* **dissipation time vs. offered load** — homogeneous Poisson flows at
  increasing demand rates through a fixed server bank
  (:func:`figure_offered_load`); past the bank's guaranteed service
  rate the backlog stops dissipating and points truncate;
* **minimum s(t) vs. burst size** — MMPP flows whose peak dwell is
  sized to inject a target excess demand per burst
  (:func:`figure_burst_size`); bigger bursts push the monitors to
  deeper slowdowns.

Axes are expressed *per CPU* so the same sweep reads identically at
6 or 64 CPUs.  One series per recovery monitor, mean + 95 % CI over the
task sets, same presentation as :mod:`repro.experiments.figures`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.figures import FigureData, TaskSetLike, _aggregate, _as_taskset_spec
from repro.experiments.metrics import RunResult
from repro.runtime.executor import SerialBackend, SweepExecutor
from repro.runtime.spec import (
    KernelSpec,
    MonitorSpec,
    ObsSpec,
    RunSpec,
    ScenarioSpec,
)
from repro.sim.kernel import KernelConfig
from repro.workload.scenarios import CALM, OverloadScenario
from repro.workload.traffic import (
    MMPPSource,
    PoissonSource,
    ServerSpec,
    TrafficFlow,
    TrafficSpec,
)

__all__ = [
    "DEFAULT_TRAFFIC_MONITORS",
    "DEFAULT_LOADS_PER_CPU",
    "DEFAULT_BURSTS_PER_CPU",
    "poisson_traffic",
    "mmpp_traffic",
    "traffic_sweep",
    "figure_offered_load",
    "figure_burst_size",
    "render_sojourn_table",
]

#: One series per monitor: the paper's headline SIMPLE/ADAPTIVE settings.
DEFAULT_TRAFFIC_MONITORS: Tuple[MonitorSpec, ...] = (
    MonitorSpec("simple", 0.6),
    MonitorSpec("adaptive", 0.5),
)

#: Offered load per CPU (CPU-seconds of demand per second per CPU).  The
#: default server bank guarantees 0.35 CPU-s/s per CPU — just beyond the
#: generated task sets' level-C slack — so the sweep crosses from
#: comfortably served (no recovery) into bank saturation, where the busy
#: servers overload level C and dissipation climbs to the horizon.
DEFAULT_LOADS_PER_CPU: Tuple[float, ...] = (0.15, 0.3, 0.4, 0.5)

#: Burst excess per CPU (CPU-seconds of demand above baseline, per CPU).
DEFAULT_BURSTS_PER_CPU: Tuple[float, ...] = (0.02, 0.05, 0.1, 0.2)

#: Shared flow shape: small requests, tight server periods.
_MEAN_DEMAND = 0.002
_SERVER_PERIOD = 0.02
_SERVER_BUDGET = 0.004  # one server = 0.2 CPUs of guaranteed service


def _server_bank(m: int, capacity_per_cpu: float) -> ServerSpec:
    """A polling level-C bank guaranteeing ``capacity_per_cpu * m`` CPU-s/s."""
    per_server = _SERVER_BUDGET / _SERVER_PERIOD
    count = max(1, math.ceil(capacity_per_cpu * m / per_server))
    return ServerSpec(
        period=_SERVER_PERIOD, budget=_SERVER_BUDGET, level="C", count=count
    )


def poisson_traffic(
    load_per_cpu: float,
    m: int,
    seed: int = 0,
    capacity_per_cpu: float = 0.35,
) -> TrafficSpec:
    """A Poisson flow offering ``load_per_cpu * m`` CPU-s/s of demand."""
    rate = load_per_cpu * m / _MEAN_DEMAND
    return TrafficSpec(flows=(
        TrafficFlow(
            PoissonSource(rate=rate, mean_demand=_MEAN_DEMAND, seed=seed),
            _server_bank(m, capacity_per_cpu),
        ),
    ))


def mmpp_traffic(
    burst_per_cpu: float,
    m: int,
    seed: int = 0,
    base_load_per_cpu: float = 0.05,
    peak_load_per_cpu: float = 0.5,
    capacity_per_cpu: float = 0.35,
    base_dwell: float = 0.5,
) -> TrafficSpec:
    """An MMPP flow whose peak dwell injects ``burst_per_cpu * m`` CPU-s.

    The peak rate is fixed (well above the bank's guaranteed service
    rate, so every burst overloads) and the peak *dwell* is solved from
    the requested burst size:
    ``burst = (peak - base) rate x dwell x mean demand``.
    """
    base_rate = base_load_per_cpu * m / _MEAN_DEMAND
    peak_rate = peak_load_per_cpu * m / _MEAN_DEMAND
    peak_dwell = burst_per_cpu * m / ((peak_rate - base_rate) * _MEAN_DEMAND)
    return TrafficSpec(flows=(
        TrafficFlow(
            MMPPSource(
                rates=(base_rate, peak_rate),
                dwells=(base_dwell, peak_dwell),
                mean_demand=_MEAN_DEMAND,
                seed=seed,
            ),
            _server_bank(m, capacity_per_cpu),
        ),
    ))


def traffic_sweep(
    tasksets: Sequence[TaskSetLike],
    traffics: Sequence[Tuple[float, TrafficSpec]],
    monitors: Sequence[MonitorSpec] = DEFAULT_TRAFFIC_MONITORS,
    scenario: OverloadScenario = CALM,
    horizon: float = 10.0,
    config: Optional[KernelConfig] = None,
    executor: Optional[SweepExecutor] = None,
    obs: Optional[ObsSpec] = None,
) -> Dict[Tuple[str, float], List[RunResult]]:
    """Run the monitor x traffic x task-set grid, one batch.

    *traffics* pairs each x-axis value with its expanded
    :class:`~repro.workload.traffic.TrafficSpec`.  Traffic cells are
    ordinary :class:`~repro.runtime.spec.RunSpec` cells — they shard,
    cache, and batch through any executor like the closed-grid sweeps.
    Returns ``{(monitor label, x): [RunResult per task set]}``.
    """
    ex = executor if executor is not None else SerialBackend()
    kernel = KernelSpec.from_config(config) if config is not None else KernelSpec()
    obs_spec = obs if obs is not None else ObsSpec()
    ts_specs = [_as_taskset_spec(ts) for ts in tasksets]
    cells = [
        (mon.label, x)
        for mon in monitors
        for x, _ in traffics
        for _ in ts_specs
    ]
    specs = [
        RunSpec(
            taskset=ts_spec,
            scenario=ScenarioSpec.from_scenario(scenario),
            monitor=mon,
            kernel=kernel,
            horizon=horizon,
            obs=obs_spec,
            traffic=tspec,
        )
        for mon in monitors
        for _, tspec in traffics
        for ts_spec in ts_specs
    ]
    runs = ex.run(specs)
    results: Dict[Tuple[str, float], List[RunResult]] = {}
    for cell, run in zip(cells, runs):
        results.setdefault(cell, []).append(run)
    return results


def render_sojourn_table(
    results: Dict[Tuple[str, float], List[RunResult]], xlabel: str = "x"
) -> str:
    """Per-request queueing metrics of a traffic sweep, one row per cell.

    Sojourn samples are pooled across the cell's task sets by combining
    counts and (count-weighted) means; percentiles/max are the worst per
    cell across task sets — conservative, and computable from the
    per-run :class:`~repro.experiments.metrics.SojournStats` alone.
    """
    lines = [f"{'monitor':<18} {xlabel:>10}  per-request sojourn"]
    for (label, x) in sorted(results, key=lambda k: (k[0], k[1])):
        stats = [r.sojourn for r in results[(label, x)] if r.sojourn is not None]
        if not stats:
            continue
        requests = sum(s.requests for s in stats)
        served = sum(s.served for s in stats)
        mean = (
            sum(s.mean_s * s.served for s in stats) / served if served else 0.0
        )
        p50 = max(s.p50_s for s in stats)
        p95 = max(s.p95_s for s in stats)
        peak = max(s.max_s for s in stats)
        lines.append(
            f"{label:<18} {x:>10.3f}  "
            f"requests={requests:6d} served={served:6d}  "
            f"mean={mean * 1e3:8.2f} ms  p50={p50 * 1e3:8.2f} ms  "
            f"p95={p95 * 1e3:8.2f} ms  max={peak * 1e3:8.2f} ms"
        )
    return "\n".join(lines)


def figure_offered_load(
    tasksets: Sequence[TaskSetLike],
    m: int,
    loads_per_cpu: Sequence[float] = DEFAULT_LOADS_PER_CPU,
    monitors: Sequence[MonitorSpec] = DEFAULT_TRAFFIC_MONITORS,
    horizon: float = 10.0,
    seed: int = 0,
    config: Optional[KernelConfig] = None,
    executor: Optional[SweepExecutor] = None,
    obs: Optional[ObsSpec] = None,
    results_out: Optional[Dict[Tuple[str, float], List[RunResult]]] = None,
) -> FigureData:
    """Traffic figure A: dissipation time vs. offered load per CPU.

    *results_out*, when given, receives the raw per-cell
    :class:`RunResult` lists (keyed ``(monitor label, x)``) so callers
    can report per-request sojourn metrics alongside the figure.
    """
    traffics = [
        (load, poisson_traffic(load, m, seed=seed)) for load in loads_per_cpu
    ]
    results = traffic_sweep(
        tasksets, traffics, monitors=monitors, horizon=horizon,
        config=config, executor=executor, obs=obs,
    )
    if results_out is not None:
        results_out.update(results)
    return _aggregate(
        "Fig. T1",
        f"Dissipation time vs offered load (Poisson, m={m})",
        "offered load per CPU (CPU-s/s)",
        "dissipation time (s)",
        results,
        value="dissipation",
    )


def figure_burst_size(
    tasksets: Sequence[TaskSetLike],
    m: int,
    bursts_per_cpu: Sequence[float] = DEFAULT_BURSTS_PER_CPU,
    monitors: Sequence[MonitorSpec] = DEFAULT_TRAFFIC_MONITORS,
    horizon: float = 10.0,
    seed: int = 0,
    config: Optional[KernelConfig] = None,
    executor: Optional[SweepExecutor] = None,
    obs: Optional[ObsSpec] = None,
    results_out: Optional[Dict[Tuple[str, float], List[RunResult]]] = None,
) -> FigureData:
    """Traffic figure B: minimum s(t) vs. burst size per CPU.

    *results_out* as in :func:`figure_offered_load`.
    """
    traffics = [
        (burst, mmpp_traffic(burst, m, seed=seed)) for burst in bursts_per_cpu
    ]
    results = traffic_sweep(
        tasksets, traffics, monitors=monitors, horizon=horizon,
        config=config, executor=executor, obs=obs,
    )
    if results_out is not None:
        results_out.update(results)
    return _aggregate(
        "Fig. T2",
        f"Minimum s(t) vs burst size (MMPP, m={m})",
        "burst excess per CPU (CPU-s)",
        "minimum virtual-time speed",
        results,
        value="min_speed",
    )
