"""Time-unit conventions.

All simulator and analysis code in this repository expresses time in
**seconds** as plain Python numbers.  The paper's workloads are specified in
milliseconds (periods of 10-300 ms, overload windows of 500 ms / 1 s), so
these helpers make workload definitions read like the paper.

The core :class:`repro.core.virtual_time.VirtualClock` is deliberately
numeric-type agnostic (it works with ``float`` as well as
``fractions.Fraction``), so nothing here enforces floats.
"""

from __future__ import annotations

from typing import TypeVar

__all__ = ["SEC", "MS", "US", "NS", "from_ms", "to_ms", "from_us", "to_us"]

Number = TypeVar("Number", int, float)

#: One second, the base unit.
SEC: float = 1.0
#: One millisecond in seconds.
MS: float = 1e-3
#: One microsecond in seconds.
US: float = 1e-6
#: One nanosecond in seconds.
NS: float = 1e-9


def from_ms(value_ms: float) -> float:
    """Convert milliseconds to seconds (``from_ms(25) == 0.025``)."""
    return value_ms * MS


def to_ms(value_s: float) -> float:
    """Convert seconds to milliseconds (``to_ms(0.025) == 25.0``)."""
    return value_s / MS


def from_us(value_us: float) -> float:
    """Convert microseconds to seconds."""
    return value_us * US


def to_us(value_s: float) -> float:
    """Convert seconds to microseconds."""
    return value_s / US
