"""Statistics helpers used by the experiment harness.

The paper reports, for every experimental series, the *mean over 20
generated task sets* together with *95 % confidence intervals* (Figs. 6-8).
This module provides exactly that: Student-t confidence intervals for the
mean of small samples, plus a compact multi-statistic summary used when
printing reproduction tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats as _sps

__all__ = ["ConfidenceInterval", "mean_ci", "summarize", "Summary"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval for a sample mean.

    Attributes
    ----------
    mean:
        Sample mean.
    half_width:
        Half-width of the interval; the interval is
        ``[mean - half_width, mean + half_width]``.
    confidence:
        Confidence level, e.g. ``0.95``.
    n:
        Sample size the interval was computed from.
    """

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        """Lower endpoint of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper endpoint of the interval."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Return ``True`` if *value* lies within the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return f"{self.mean:.6g} ± {self.half_width:.3g}"


def mean_ci(samples: Iterable[float], confidence: float = 0.95) -> ConfidenceInterval:
    """Compute the mean and a Student-t confidence interval.

    Parameters
    ----------
    samples:
        The observations (one per generated task set in the paper's
        experiments).
    confidence:
        Two-sided confidence level.  The paper uses 95 %.

    Returns
    -------
    ConfidenceInterval
        Interval with half-width ``t_{n-1, (1+c)/2} * s / sqrt(n)``.  For a
        single observation the half-width is 0 (no dispersion estimate is
        possible); for an empty sample a :class:`ValueError` is raised.
    """
    xs = np.asarray(list(samples), dtype=float)
    if xs.size == 0:
        raise ValueError("mean_ci() requires at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    m = float(np.mean(xs))
    if xs.size == 1:
        return ConfidenceInterval(mean=m, half_width=0.0, confidence=confidence, n=1)
    sem = float(np.std(xs, ddof=1)) / math.sqrt(xs.size)
    if sem == 0.0:
        return ConfidenceInterval(mean=m, half_width=0.0, confidence=confidence, n=int(xs.size))
    tcrit = float(_sps.t.ppf((1.0 + confidence) / 2.0, df=xs.size - 1))
    return ConfidenceInterval(
        mean=m, half_width=tcrit * sem, confidence=confidence, n=int(xs.size)
    )


@dataclass(frozen=True)
class Summary:
    """Compact five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return (
            f"n={self.n} mean={self.mean:.6g} std={self.std:.3g} "
            f"min={self.minimum:.6g} med={self.median:.6g} max={self.maximum:.6g}"
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Summarize a non-empty sample (mean/std/min/median/max)."""
    xs = np.asarray(samples, dtype=float)
    if xs.size == 0:
        raise ValueError("summarize() requires at least one sample")
    return Summary(
        n=int(xs.size),
        mean=float(np.mean(xs)),
        std=float(np.std(xs, ddof=1)) if xs.size > 1 else 0.0,
        minimum=float(np.min(xs)),
        maximum=float(np.max(xs)),
        median=float(np.median(xs)),
    )
