"""Small argument-validation helpers.

Scheduling parameters have hard domain constraints from the task model in
Sec. 2 of the paper (``C_i > 0``, ``T_i > 0``, ``Y_i >= 0``,
``xi_i >= 0``, ``0 < s(t) <= 1`` during recovery, ...).  Centralizing the
checks keeps the dataclass ``__post_init__`` bodies declarative and the
error messages uniform.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_finite",
    "check_in_range",
]


def _is_real(value: Any) -> bool:
    try:
        float(value)
    except (TypeError, ValueError):
        return False
    return True


def check_finite(name: str, value: Any) -> None:
    """Raise :class:`ValueError` unless *value* is a finite real number."""
    if not _is_real(value) or not math.isfinite(float(value)):
        raise ValueError(f"{name} must be a finite real number, got {value!r}")


def check_positive(name: str, value: Any) -> None:
    """Raise :class:`ValueError` unless *value* is finite and > 0."""
    check_finite(name, value)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: Any) -> None:
    """Raise :class:`ValueError` unless *value* is finite and >= 0."""
    check_finite(name, value)
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(
    name: str,
    value: Any,
    low: float,
    high: float,
    *,
    low_open: bool = False,
    high_open: bool = False,
) -> None:
    """Raise :class:`ValueError` unless *value* lies in the given interval.

    ``low_open``/``high_open`` select open endpoints, e.g. the recovery
    speed constraint ``0 < s <= 1`` is
    ``check_in_range("s", s, 0, 1, low_open=True)``.
    """
    check_finite(name, value)
    ok_low = value > low if low_open else value >= low
    ok_high = value < high if high_open else value <= high
    if not (ok_low and ok_high):
        lb = "(" if low_open else "["
        hb = ")" if high_open else "]"
        raise ValueError(f"{name} must be in {lb}{low}, {high}{hb}, got {value!r}")
