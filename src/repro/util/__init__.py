"""Utility layer: statistics, time-unit helpers, validation helpers.

These modules are dependency-free within :mod:`repro` (they only use the
standard library, NumPy, and SciPy) and are shared by the task model, the
simulator, the analysis, and the experiment harness.
"""

from repro.util.stats import ConfidenceInterval, mean_ci, summarize
from repro.util.timeunits import MS, US, NS, SEC, from_ms, to_ms
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
)

__all__ = [
    "ConfidenceInterval",
    "mean_ci",
    "summarize",
    "MS",
    "US",
    "NS",
    "SEC",
    "from_ms",
    "to_ms",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
]
