"""Atomic file writes: temp file + ``os.replace``, with optional fsync.

Several layers persist JSON artifacts that other processes read
concurrently — the content-addressed result cache, the sharded campaign
orchestrator's shard manifests and lease files, saved scorecards.  All
of them share the same durability contract, implemented once here:

* a reader can only ever observe a **complete** file (``os.replace`` is
  atomic on POSIX within one filesystem, and the temp file lives in the
  destination directory to guarantee that);
* an interrupted writer (exception, SIGKILL, power loss) leaves at most
  a stray ``*.tmp`` file next to the destination, never a torn
  destination — strays are ignored by readers and harmless to re-write;
* with ``fsync=True`` (default) the data hits the disk before the
  rename, so a crash immediately after a successful write cannot roll
  the content back to an empty or partial file.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import tempfile
from typing import Any, Iterator, TextIO, Union

__all__ = ["atomic_write_text", "atomic_write_json", "atomic_writer", "append_line"]

Pathish = Union[str, "os.PathLike[str]"]


def atomic_write_text(path: Pathish, text: str, *, fsync: bool = True) -> None:
    """Write *text* to *path* atomically (all-or-nothing).

    The temp file is created in ``path``'s directory (same filesystem,
    so the final ``os.replace`` is atomic) with a ``.tmp`` suffix so
    directory scans can recognize and skip strays from crashed writers.
    """
    dest = pathlib.Path(path)
    dest.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=dest.parent, prefix=dest.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, dest)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@contextlib.contextmanager
def atomic_writer(path: Pathish, *, fsync: bool = True) -> Iterator[TextIO]:
    """Context manager: stream text into *path*, atomically.

    Yields a text handle onto a same-directory temp file; on clean exit
    the temp file is (optionally fsynced and) renamed over *path* in one
    ``os.replace``.  On any exception the temp file is removed and the
    destination is untouched.  This is the streaming complement of
    :func:`atomic_write_text` — large merged artifacts are produced
    record by record without ever holding the whole document in memory,
    with the same all-or-nothing guarantee.
    """
    dest = pathlib.Path(path)
    dest.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=dest.parent, prefix=dest.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            yield fh
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, dest)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def append_line(path: Pathish, line: str) -> None:
    """Append one ``\\n``-terminated record to *path* in a single write.

    The complement of the temp-file/rename pattern for *append-only*
    NDJSON streams (telemetry, logs): ``os.replace`` cannot express an
    append, so instead the record is written with ``O_APPEND`` as one
    ``os.write`` call.  On POSIX local filesystems an ``O_APPEND``
    write lands at the end of the file as a unit with respect to other
    appenders; a crash mid-write leaves at most one torn *final* line,
    which stream readers (e.g.
    :func:`repro.obs.telemetry.read_telemetry`) must skip — mirroring
    how torn shard manifests read as missing.
    """
    dest = pathlib.Path(path)
    dest.parent.mkdir(parents=True, exist_ok=True)
    data = line.encode("utf-8")
    if not data.endswith(b"\n"):
        data += b"\n"
    fd = os.open(dest, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def atomic_write_json(
    path: Pathish,
    doc: Any,
    *,
    indent: int | None = 2,
    sort_keys: bool = False,
    fsync: bool = True,
) -> None:
    """:func:`atomic_write_text` of ``json.dumps(doc) + "\\n"``."""
    atomic_write_text(
        path,
        json.dumps(doc, indent=indent, sort_keys=sort_keys) + "\n",
        fsync=fsync,
    )
