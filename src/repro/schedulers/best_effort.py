"""Level-D best-effort scheduling.

Level-D work has no guarantees in MC²; it soaks up whatever capacity
levels A-C leave behind.  We schedule it FIFO by release time (ties by
task id then index), which is what "best effort" background execution
amounts to in the absence of any further policy.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.model.job import Job

__all__ = ["pick_best_effort"]


def pick_best_effort(jobs: Sequence[Job]) -> Optional[Job]:
    """The first-released job among *jobs* (``None`` if empty)."""
    best: Optional[Job] = None
    best_key: Tuple[float, int, int] = (math.inf, -1, -1)
    for j in jobs:
        key = (j.release, j.task.task_id, j.index)
        if best is None or key < best_key:
            best, best_key = j, key
    return best
