"""Level-C global GEL-v job selection.

At every scheduling point the kernel hands this policy the set of
incomplete released level-C jobs and the CPUs currently free of level-A/B
work; the policy returns which jobs should occupy those CPUs.

Selection is by virtual priority point (eq. 6) — the GEL-v priority — and
is *migration-averse*: a selected job already running on one of the free
CPUs stays put, minimizing preemption/migration churn without affecting
which jobs run (the paper's analysis is indifferent to placement, only to
the selected set).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.gel import virtual_priority
from repro.model.job import Job

__all__ = ["select_gel_jobs", "place_gel_jobs"]


def place_gel_jobs(
    chosen: Sequence[Job], free_cpus: Sequence[int]
) -> Dict[int, Optional[Job]]:
    """Place an already-selected priority-ordered job list onto CPUs.

    *chosen* must hold at most ``len(free_cpus)`` jobs in ascending
    priority order.  Placement is migration-averse: a selected job
    already running on a free CPU stays put; the rest fill the remaining
    CPUs in priority order.  Shared by :func:`select_gel_jobs` (which
    sorts the whole pool) and the kernel's incremental dispatcher (which
    pops the same jobs from its ready heap) so both produce bit-identical
    placements.
    """
    assignment: Dict[int, Optional[Job]] = dict.fromkeys(free_cpus)
    # First pass: keep running jobs in place; collect the rest in
    # priority order.
    rest = []
    for job in chosen:
        cpu = job.running_on
        if cpu is not None and cpu in assignment and assignment[cpu] is None:
            assignment[cpu] = job
        else:
            rest.append(job)
    # Second pass: put the rest on the remaining CPUs in priority order.
    if rest:
        it = iter([cpu for cpu in free_cpus if assignment[cpu] is None])
        for job in rest:
            assignment[next(it)] = job
    return assignment


def select_gel_jobs(
    jobs: Sequence[Job], free_cpus: Sequence[int]
) -> Dict[int, Optional[Job]]:
    """Assign the highest-priority level-C jobs to *free_cpus*.

    Parameters
    ----------
    jobs:
        Incomplete released level-C jobs (running or ready).
    free_cpus:
        CPUs not occupied by level-A/B work, in ascending order.

    Returns
    -------
    dict
        ``cpu -> job-or-None`` for every CPU in *free_cpus*.  The selected
        set is exactly the ``len(free_cpus)`` earliest-virtual-PP jobs
        (fewer if fewer exist); placement keeps already-running selected
        jobs on their CPUs where possible.
    """
    k = len(free_cpus)
    if k == 0 or not jobs:
        return {cpu: None for cpu in free_cpus}
    chosen = sorted(jobs, key=virtual_priority)[:k]
    return place_gel_jobs(chosen, free_cpus)
