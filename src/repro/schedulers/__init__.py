"""Per-level scheduling policies of the MC² architecture (Fig. 1).

Each module implements the *policy* (who should run, given eligible
jobs); the mechanics (preemption, accounting, timers) live in
:mod:`repro.sim.kernel`, which consults these policies at every event.

* :mod:`repro.schedulers.table_driven` — level A: per-CPU cyclic-executive
  time tables built over the hyperperiod.
* :mod:`repro.schedulers.pedf` — level B: partitioned EDF.
* :mod:`repro.schedulers.gel_global` — level C: global GEL-v selection by
  virtual priority point.
* :mod:`repro.schedulers.best_effort` — level D: FIFO background.
"""

from repro.schedulers.best_effort import pick_best_effort
from repro.schedulers.gel_global import select_gel_jobs
from repro.schedulers.pedf import edf_key, pick_edf
from repro.schedulers.table_driven import (
    TableSlot,
    TimeTable,
    build_preemptive_table,
    build_table,
    pick_table_driven,
    rm_key,
)

__all__ = [
    "TimeTable",
    "TableSlot",
    "build_preemptive_table",
    "rm_key",
    "build_table",
    "pick_table_driven",
    "pick_edf",
    "edf_key",
    "select_gel_jobs",
    "pick_best_effort",
]
