"""Level-B partitioned EDF.

Level-B tasks are pinned to CPUs and scheduled there by
earliest-deadline-first with implicit deadlines (``d = r + T``).  Level B
preempts levels C/D but never level A.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.model.job import Job

__all__ = ["edf_key", "pick_edf"]


def edf_key(job: Job) -> Tuple[float, int, int]:
    """EDF sort key: (absolute deadline, task_id, job index).

    Jobs without an explicit deadline use the implicit one,
    ``release + period``.
    """
    d = job.deadline if job.deadline is not None else job.release + job.task.period
    return (d, job.task.task_id, job.index)


def pick_edf(jobs: Sequence[Job]) -> Optional[Job]:
    """The earliest-deadline job among *jobs* (``None`` if empty)."""
    best: Optional[Job] = None
    best_key: Tuple[float, int, int] = (math.inf, -1, -1)
    for j in jobs:
        key = edf_key(j)
        if best is None or key < best_key:
            best, best_key = j, key
    return best
