"""Level-A table-driven (cyclic executive) scheduling.

MC² schedules level-A tasks with per-CPU dispatch tables: over one
hyperperiod, every level-A job receives reserved processor slots sized to
its level-A PWCET.  Because the paper's generator fills each CPU's
level-A partition to 100 % of its capacity *at level-A PWCETs* (5 % of
the CPU at level-C PWCETs x the 20x ratio), slots must in general be
**split** (a job is preempted by a shorter-period job's slot and resumes
later) — a contiguous slot longer than the shortest period on the CPU
could never be placed.

Two table builders are provided:

* :func:`build_table` — contiguous (non-preemptive) slots, placed
  greedily in release order with shortest-period-first tie-breaking.
  Suitable for the hand-built example systems; fails loudly when a
  contiguous placement does not exist.
* :func:`build_preemptive_table` — split slots, obtained by simulating
  preemptive rate-monotonic dispatching over one hyperperiod with every
  job demanding its full level-A PWCET.  For the harmonic period grids
  the paper uses ({25, 50, 100} ms), RM is optimal on one CPU and packs
  100 % utilization.

At runtime the kernel dispatches eligible level-A jobs in the same RM
order (:func:`pick_table_driven`): when every job consumes its full
level-A PWCET the online schedule coincides with the offline preemptive
table (tested in ``tests/schedulers/test_table_driven.py``), and when a
job finishes early the slot remainder immediately falls through to lower
levels, which is MC²'s slack-shifting behaviour.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.job import Job
from repro.model.task import CriticalityLevel, Task
from repro.model.taskset import hyperperiod

__all__ = [
    "TimeTable",
    "TableSlot",
    "build_table",
    "build_preemptive_table",
    "pick_table_driven",
    "rm_key",
]


def _check_level_a(tasks: Sequence[Task], cpu: int) -> None:
    for t in tasks:
        if t.level is not CriticalityLevel.A:
            raise ValueError(f"task {t.label} is not level A")
        if t.cpu != cpu:
            raise ValueError(f"task {t.label} is pinned to cpu {t.cpu}, not {cpu}")


@dataclass(frozen=True)
class TableSlot:
    """One (possibly partial) reserved slot of a level-A job."""

    task_id: int
    job_within_hp: int
    start: float
    end: float

    @property
    def length(self) -> float:
        """Slot duration."""
        return self.end - self.start


@dataclass(frozen=True)
class TimeTable:
    """A per-CPU level-A dispatch table over one hyperperiod.

    ``slots`` lists every reserved slot within ``[0, hyperperiod)`` in
    time order; a job may own several (split slots).  The pattern repeats
    with period ``hyperperiod``.
    """

    cpu: int
    hyperperiod: float
    slots: Tuple[TableSlot, ...]
    jobs_per_hp: Dict[int, int]

    def job_slots(self, task_id: int, job_index: int) -> List[Tuple[float, float]]:
        """Absolute (start, end) slots of one job, across hyperperiods."""
        per = self.jobs_per_hp[task_id]
        cycle, within = divmod(job_index, per)
        base = cycle * self.hyperperiod
        return [
            (base + s.start, base + s.end)
            for s in self.slots
            if s.task_id == task_id and s.job_within_hp == within
        ]

    def slot_start(self, task_id: int, job_index: int) -> float:
        """Absolute start of the job's first slot (its dispatch time)."""
        slots = self.job_slots(task_id, job_index)
        if not slots:
            raise KeyError(f"no slots for ({task_id}, {job_index})")
        return slots[0][0]

    def allocation(self, task_id: int, job_index: int) -> float:
        """Total reserved time for one job (equals the level-A PWCET)."""
        return sum(e - s for s, e in self.job_slots(task_id, job_index))

    def busy_fraction(self) -> float:
        """Fraction of the hyperperiod covered by slots."""
        if self.hyperperiod == 0.0:
            return 0.0
        return sum(s.length for s in self.slots) / self.hyperperiod


def build_table(tasks: Sequence[Task], cpu: int) -> TimeTable:
    """Contiguous-slot table: greedy placement in release order.

    Simultaneous releases are placed shortest-period first (RM order).
    Raises :class:`ValueError` when a slot cannot end by the job's next
    release — use :func:`build_preemptive_table` for such partitions.
    """
    _check_level_a(tasks, cpu)
    if not tasks:
        return TimeTable(cpu=cpu, hyperperiod=0.0, slots=(), jobs_per_hp={})
    hp = hyperperiod(tasks)
    by_id = {t.task_id: t for t in tasks}
    releases: List[Tuple[float, float, int, int, float]] = []
    jobs_per_hp: Dict[int, int] = {}
    for t in tasks:
        per = int(round(hp / t.period))
        jobs_per_hp[t.task_id] = per
        slot_len = t.pwcet(CriticalityLevel.A)
        for k in range(per):
            releases.append((t.phase + k * t.period, t.period, t.task_id, k, slot_len))
    releases.sort()
    slots: List[TableSlot] = []
    cursor = 0.0
    for release, period, task_id, k, slot_len in releases:
        start = max(release, cursor)
        if start + slot_len > release + by_id[task_id].period + 1e-9:
            raise ValueError(
                f"cpu {cpu}: cannot place a contiguous level-A slot of length "
                f"{slot_len} for tau{task_id} job {k} released at {release}; "
                "use build_preemptive_table for this partition"
            )
        slots.append(TableSlot(task_id=task_id, job_within_hp=k, start=start, end=start + slot_len))
        cursor = start + slot_len
    return TimeTable(cpu=cpu, hyperperiod=hp, slots=tuple(slots), jobs_per_hp=jobs_per_hp)


def build_preemptive_table(tasks: Sequence[Task], cpu: int) -> TimeTable:
    """Split-slot table from a preemptive RM simulation over one hyperperiod.

    Every job demands its full level-A PWCET; dispatching is preemptive
    rate-monotonic (shorter period = higher priority; ties by task id).
    Raises :class:`ValueError` if some job misses its implicit deadline —
    the level-A partition is then infeasible under RM.
    """
    _check_level_a(tasks, cpu)
    if not tasks:
        return TimeTable(cpu=cpu, hyperperiod=0.0, slots=(), jobs_per_hp={})
    hp = hyperperiod(tasks)
    jobs_per_hp: Dict[int, int] = {}
    # (release, period, task_id, k, remaining)
    pending: List[List[float]] = []
    for t in tasks:
        per = int(round(hp / t.period))
        jobs_per_hp[t.task_id] = per
        for k in range(per):
            r = t.phase + k * t.period
            pending.append([r, t.period, float(t.task_id), float(k), t.pwcet(CriticalityLevel.A)])
    slots: List[TableSlot] = []
    t_now = 0.0
    ready: List[Tuple[float, int, int, List[float]]] = []  # (period, task_id, k, rec)
    while t_now < hp - 1e-12:
        # Admit newly released jobs.
        for rec in pending:
            if rec[0] <= t_now + 1e-12 and rec[4] > 0 and not any(r is rec for *_, r in ready):
                heapq.heappush(ready, (rec[1], int(rec[2]), int(rec[3]), rec))
        if not ready:
            future = [rec[0] for rec in pending if rec[4] > 0 and rec[0] > t_now]
            if not future:
                break
            t_now = min(future)
            continue
        period, task_id, k, rec = ready[0]
        # Run until the job finishes or a higher-priority release occurs.
        next_rel = min(
            (r[0] for r in pending if r[4] > 0 and r[0] > t_now + 1e-12 and r[1] < period),
            default=math.inf,
        )
        run_end = min(t_now + rec[4], next_rel, hp)
        if run_end > t_now:
            if rec[0] + rec[1] + 1e-9 < run_end:
                raise ValueError(
                    f"cpu {cpu}: level-A job tau{task_id},{k} misses its deadline "
                    f"under preemptive RM; partition infeasible"
                )
            slots.append(TableSlot(task_id=task_id, job_within_hp=k, start=t_now, end=run_end))
            rec[4] -= run_end - t_now
        t_now = run_end
        if rec[4] <= 1e-12:
            heapq.heappop(ready)
    if any(rec[4] > 1e-9 for rec in pending):
        raise ValueError(f"cpu {cpu}: level-A demand exceeds the hyperperiod; infeasible")
    merged = _merge_adjacent(slots)
    return TimeTable(cpu=cpu, hyperperiod=hp, slots=tuple(merged), jobs_per_hp=jobs_per_hp)


def _merge_adjacent(slots: List[TableSlot]) -> List[TableSlot]:
    """Merge back-to-back slots of the same job."""
    out: List[TableSlot] = []
    for s in sorted(slots, key=lambda s: s.start):
        if (
            out
            and out[-1].task_id == s.task_id
            and out[-1].job_within_hp == s.job_within_hp
            and abs(out[-1].end - s.start) < 1e-12
        ):
            out[-1] = TableSlot(s.task_id, s.job_within_hp, out[-1].start, s.end)
        else:
            out.append(s)
    return out


def rm_key(job: Job) -> Tuple[float, int, int]:
    """Rate-monotonic dispatch key: (period, task_id, job index)."""
    return (job.task.period, job.task.task_id, job.index)


def pick_table_driven(jobs: Sequence[Job]) -> Optional[Job]:
    """Choose the level-A job to run on a CPU.

    Eligible jobs are dispatched in RM order — the same order the offline
    preemptive table encodes — so the online schedule matches the table
    whenever jobs consume their full allocations, and hands slack to
    lower levels when they finish early.
    """
    best: Optional[Job] = None
    best_key: Tuple[float, int, int] = (math.inf, -1, -1)
    for j in jobs:
        key = rm_key(j)
        if best is None or key < best_key:
            best, best_key = j, key
    return best
