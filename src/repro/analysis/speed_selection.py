"""Designer tool: pick the recovery speed from a dissipation target.

Fig. 6's trade-off in reverse: rather than sweeping s(t) and reading off
dissipation times, a system designer usually starts from a requirement —
"after a provisioning-scale transient overload the system must be back
to normal within D seconds" — and wants the *gentlest* (largest) speed
that meets it, since larger s means less disruption to job releases
(Sec. 3's explicit trade-off).

Inverting the dissipation bound of :mod:`repro.analysis.dissipation`
(``bound(s) = B / (M_eff - s * U_C) + settle``, decreasing in drain rate
and hence increasing in s):

.. math::
    s^* = \\frac{M_{eff} - B / (D - settle)}{U_C}

clamped into the paper's legal range ``(0, 1]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.bounds import gel_response_bounds
from repro.analysis.dissipation import dissipation_bound
from repro.analysis.supply import SupplyModel
from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet

__all__ = ["SpeedChoice", "select_recovery_speed"]


@dataclass(frozen=True)
class SpeedChoice:
    """Outcome of the speed selection."""

    #: The recommended recovery speed in (0, 1], or None if infeasible.
    speed: Optional[float]
    #: Guaranteed dissipation bound at that speed (inf if infeasible).
    guaranteed_dissipation: float
    #: The requested target.
    target: float

    @property
    def feasible(self) -> bool:
        """Whether any legal speed meets the target."""
        return self.speed is not None


def select_recovery_speed(
    ts: TaskSet,
    overload_length: float,
    target_dissipation: float,
    overload_factor: float = 10.0,
    supply: Optional[SupplyModel] = None,
) -> SpeedChoice:
    """Largest s in (0, 1] whose dissipation bound meets the target.

    Parameters
    ----------
    ts:
        The task set (must be level-C schedulable, i.e. finite bounds).
    overload_length:
        Length of the transient overload the system must survive.
    target_dissipation:
        Required bound on dissipation time (seconds).
    overload_factor:
        How far actual execution exceeds level-C provisioning during the
        overload (the paper's scenarios: 10x).
    supply:
        Optional supply-model override.

    Returns
    -------
    SpeedChoice
        With ``speed=None`` when even the most aggressive slowdown
        (s -> 0) cannot guarantee the target; otherwise the analytic
        optimum, re-validated through the forward bound.
    """
    if target_dissipation <= 0.0:
        raise ValueError(f"target_dissipation must be > 0, got {target_dissipation}")
    if supply is None:
        supply = SupplyModel.from_taskset(ts)
    bounds = gel_response_bounds(ts, supply=supply)
    if not bounds.is_finite:
        raise ValueError("task set has no finite response-time bounds; "
                         "see analysis.check_level_c")
    # Ingredients of the forward bound (same derivation as
    # dissipation_bound; computed once here for the inversion).
    probe = dissipation_bound(
        ts, overload_length, speed=1.0, overload_factor=overload_factor,
        supply=supply, bounds=bounds,
    )
    settle = probe.settling
    backlog = probe.backlog
    u_c = ts.utilization(CriticalityLevel.C, level=CriticalityLevel.C)
    headroom = target_dissipation - settle
    if headroom <= 0.0:
        return SpeedChoice(speed=None, guaranteed_dissipation=math.inf,
                           target=target_dissipation)
    # Required drain rate, then the speed achieving it.
    needed_drain = backlog / headroom
    if u_c <= 0.0:
        s_star = 1.0 if supply.total_rate >= needed_drain else None
    else:
        s_star = (supply.total_rate - needed_drain) / u_c
        if s_star <= 0.0:
            s_star = None
    if s_star is None:
        return SpeedChoice(speed=None, guaranteed_dissipation=math.inf,
                           target=target_dissipation)
    s_star = min(1.0, s_star)
    check = dissipation_bound(
        ts, overload_length, speed=s_star, overload_factor=overload_factor,
        supply=supply, bounds=bounds,
    )
    return SpeedChoice(speed=s_star, guaranteed_dissipation=check.bound,
                       target=target_dissipation)
