"""Analytical dissipation bounds.

The paper's technical report [8] derives an upper bound on *dissipation
time* — how long after a transient overload ends the system needs before
all pending jobs again meet their response-time tolerances and the
virtual clock returns to speed 1.  The report is not part of the provided
text; this module implements the natural demand-based instantiation and
documents it (DESIGN.md, substitution 4):

1. **Backlog at overload end.**  During an overload window of total
   length ``L``, jobs are provisioned at level C but demand inflated
   execution (level-B PWCETs in the paper's scenarios: ``kappa = 10x``).
   Demand arrives at rate at most ``kappa * U_all`` (``U_all`` = level-C
   utilization of *all* levels, since A/B jobs also overrun their level-C
   PWCETs) while at most ``m`` units of capacity are served, so the extra
   backlog is at most ``B = L * max(0, kappa * U_all - m) + J`` with
   ``J = sum_i kappa * C_i`` accounting for carry-in jobs released just
   before the window ends.

2. **Drain rate during recovery.**  With the virtual clock at speed
   ``s``, level-C work arrives at rate at most ``s * U_C`` (separations
   stretched by ``1/s``) while levels A/B consume their normal share, so
   backlog drains at rate at least ``M_eff - s * U_C``.

3. **Settling.**  Once the backlog is gone the last pending jobs must
   complete within tolerance, adding at most the largest absolute
   response bound ``max_i (Y_i + x + C_i)`` (and the monitor can only
   *observe* the idle normal instant at a completion, adding the same
   order of slack once more).

Hence::

    dissipation <= B / (M_eff - s * U_C) + 2 * max_abs_bound

The bound exists whenever ``s * U_C < M_eff``; the paper notes the bound
always exists because slowing the clock creates slack both system-wide
and per-task.  Integration tests check measured dissipation against this
bound on the paper's workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.bounds import BoundsResult, gel_response_bounds
from repro.analysis.supply import SupplyModel
from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet

__all__ = ["DissipationBound", "dissipation_bound"]


@dataclass(frozen=True)
class DissipationBound:
    """An analytical dissipation bound and its ingredients."""

    #: The bound itself (seconds; ``inf`` when no slack at speed ``s``).
    bound: float
    #: Estimated extra backlog at the end of the overload (seconds of work).
    backlog: float
    #: Guaranteed drain rate ``M_eff - s * U_C`` during recovery.
    drain_rate: float
    #: Settling allowance (twice the largest absolute response bound).
    settling: float
    #: The recovery speed the bound was computed for.
    speed: float

    @property
    def is_finite(self) -> bool:
        """Whether the bound is finite."""
        return math.isfinite(self.bound)


def dissipation_bound(
    ts: TaskSet,
    overload_length: float,
    speed: float,
    overload_factor: float = 10.0,
    supply: Optional[SupplyModel] = None,
    bounds: Optional[BoundsResult] = None,
) -> DissipationBound:
    """Bound the dissipation time of a transient overload.

    Parameters
    ----------
    ts:
        The task set (all levels).
    overload_length:
        Total length ``L`` of the overload window(s), seconds.
    speed:
        Recovery speed ``s`` in ``(0, 1]``.
    overload_factor:
        ``kappa``: how much actual execution exceeded level-C PWCETs
        during the overload (the paper's scenarios use level-B PWCETs,
        i.e. 10x).
    supply, bounds:
        Optional precomputed supply model / response bounds.
    """
    if not 0.0 < speed <= 1.0:
        raise ValueError(f"speed must be in (0, 1], got {speed}")
    if overload_length < 0.0:
        raise ValueError(f"overload_length must be >= 0, got {overload_length}")
    if overload_factor < 1.0:
        raise ValueError(f"overload_factor must be >= 1, got {overload_factor}")
    if supply is None:
        supply = SupplyModel.from_taskset(ts)
    if bounds is None:
        bounds = gel_response_bounds(ts, supply=supply)

    # Level-C-PWCET utilization of every task that participates in the
    # overload (levels A, B and C all overrun in the paper's scenarios).
    u_all = 0.0
    carry_in = 0.0
    for t in ts:
        if CriticalityLevel.C in t.pwcets:
            c = t.pwcet(CriticalityLevel.C)
            u_all += c / t.period
            carry_in += overload_factor * c
    u_c = ts.utilization(CriticalityLevel.C, level=CriticalityLevel.C)

    backlog = overload_length * max(0.0, overload_factor * u_all - ts.m) + carry_in
    drain = supply.total_rate - speed * u_c
    settling = 2.0 * bounds.max_absolute() if bounds.is_finite else math.inf
    if drain <= 0.0 or not math.isfinite(settling):
        return DissipationBound(
            bound=math.inf, backlog=backlog, drain_rate=drain, settling=settling, speed=speed
        )
    return DissipationBound(
        bound=backlog / drain + settling,
        backlog=backlog,
        drain_rate=drain,
        settling=settling,
        speed=speed,
    )
