"""Level-C SRT schedulability: when are response times bounded?

Prior work cited in Sec. 2 ([14, 17]) shows bounded level-C response
times under GEL scheduling given utilization constraints.  With levels
A/B folded into the supply model, the conditions are:

1. **capacity**: total level-C utilization must not exceed the long-run
   level-C capacity, ``U_C <= M_eff`` (strict for a finite analytical
   bound);
2. **per-task rate**: every level-C task's utilization must not exceed
   the largest single-CPU availability, ``u_i <= max_p alpha_p`` — a job
   runs on one CPU at a time, so this caps its sustainable service rate.
   This is exactly the phenomenon of the paper's Fig. 3, where a single
   high-utilization task cannot recover despite system-wide slack.

:func:`check_level_c` evaluates both and reports margins, which the
workload generator uses to guarantee it emits schedulable sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.supply import SupplyModel
from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet

__all__ = ["SchedulabilityResult", "check_level_c"]


@dataclass(frozen=True)
class SchedulabilityResult:
    """Outcome of the level-C SRT test.

    Attributes
    ----------
    schedulable:
        Whether bounded response times are guaranteed (both conditions
        hold with strict slack).
    capacity_margin:
        ``M_eff - U_C``; negative means over-committed.
    per_task_margin:
        ``max_p alpha_p - max_i u_i``; negative means some task outstrips
        every CPU (Fig. 3).
    bottleneck_task:
        ``task_id`` of the task with the largest utilization, if any.
    """

    schedulable: bool
    capacity_margin: float
    per_task_margin: float
    bottleneck_task: Optional[int]

    def explain(self) -> str:
        """Human-readable verdict used by examples and the CLI."""
        lines = [
            f"schedulable (bounded level-C response times): {self.schedulable}",
            f"  capacity margin  M_eff - U_C          = {self.capacity_margin:+.4f}",
            f"  per-task margin  max alpha - max u_i  = {self.per_task_margin:+.4f}",
        ]
        if self.bottleneck_task is not None:
            lines.append(f"  highest-utilization level-C task: tau{self.bottleneck_task}")
        return "\n".join(lines)


def check_level_c(
    ts: TaskSet, supply: Optional[SupplyModel] = None, strict: bool = True
) -> SchedulabilityResult:
    """Run the level-C SRT schedulability test on *ts*.

    Parameters
    ----------
    ts:
        The task set (A/B tasks define the supply unless *supply* given).
    supply:
        Override the supply model.
    strict:
        If ``True`` (default), require strictly positive margins, which is
        what the finite response-time bound needs.  If ``False``, accept
        zero margins (response times may still be bounded, as in the
        paper's fully-utilized Fig. 2(a), but no finite analytical bound
        is produced).
    """
    if supply is None:
        supply = SupplyModel.from_taskset(ts)
    cs = ts.level(CriticalityLevel.C)
    u_total = sum(t.utilization(CriticalityLevel.C) for t in cs)
    capacity_margin = supply.total_rate - u_total
    worst: Tuple[float, Optional[int]] = (0.0, None)
    for t in cs:
        u = t.utilization(CriticalityLevel.C)
        if u > worst[0]:
            worst = (u, t.task_id)
    per_task_margin = supply.max_alpha - worst[0]
    eps = 1e-12
    if strict:
        ok = capacity_margin > eps and per_task_margin > eps
    else:
        ok = capacity_margin >= -eps and per_task_margin >= -eps
    return SchedulabilityResult(
        schedulable=ok,
        capacity_margin=capacity_margin,
        per_task_margin=per_task_margin,
        bottleneck_task=worst[1],
    )
