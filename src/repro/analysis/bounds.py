"""GEL response-time bounds relative to the priority point.

This module is our instantiation of the bounds the paper takes from its
technical report [8] and from the G-FL analysis of Erickson, Anderson &
Ward [9].  The structure follows the compliant-vector / tardiness-bound
literature for G-EDF-like schedulers:

For a level-C system with total utilization ``U`` on effective capacity
``M_eff`` (the supply model's long-run rate), the response time of every
job of task ``tau_i`` relative to its *priority point* is at most

.. math:: x + C_i,

where ``x`` bounds the maximum backlog-induced delay shared by all tasks:

.. math::
   x = \\max(x_{rate}, x_{burst})

.. math::
   x_{rate} = \\frac{\\sum_{(m-1)\\text{ largest}} G_j + \\Sigma_\\sigma}
                    {M_{eff} - U},
   \\qquad
   x_{burst} = \\frac{\\sum_j G_j - \\min_j G_j + \\Sigma_\\sigma}{M_{eff}}

with one carry-in term ``G_j = (C_j - U_j Y_j)^+`` per level-C task (the
classic GEL carry-in quantity; G-FL's choice of ``Y_i`` equalizes
``C_i + x``-driven lateness over tasks by balancing the ``G_j``) and
``Sigma_sigma`` the total supply burst of the A/B interference
(:class:`~repro.analysis.supply.SupplyModel`).  ``x_rate`` is the
long-run backlog term; ``x_burst`` covers instantaneous same-priority
contention — with small ``Y_j`` many jobs can share one priority point,
and a job may have to wait for up to all other tasks' carry-in demand to
drain at rate ``M_eff`` before running (e.g. n equal tasks with
``Y = 0`` released together on m CPUs: the last job starts only after
``(n-1)/m`` predecessors' worth of work).  The absolute response bound
is ``Y_i + x + C_i`` (Sec. 2: converting a PP-relative response time to
an absolute one adds ``Y_i``).

The bound requires ``U < M_eff`` (strictly positive slack).  At ``U ==
M_eff`` the system can still have bounded response times in special cases
(the paper's Fig. 2(a) is fully utilized), but no finite bound is
produced here — callers fall back to explicit tolerances.

These formulas are *validated empirically* by the test suite: on the
paper's generated workloads, overload-free simulation never produces a
response time above the bound.  They are also deliberately monotone in the
inputs (more utilization, less supply, larger bursts => larger bound),
which property tests check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.analysis.supply import SupplyModel
from repro.model.task import CriticalityLevel, Task
from repro.model.taskset import TaskSet

__all__ = ["response_bound_x", "gel_response_bounds", "BoundsResult"]


def response_bound_x(
    tasks: Sequence[Task],
    supply: SupplyModel,
    pps: Optional[Dict[int, float]] = None,
) -> float:
    """The shared delay term ``x`` of the GEL response-time bound.

    Parameters
    ----------
    tasks:
        The level-C tasks (tasks of other levels are ignored).
    supply:
        Level-C supply model; use :meth:`SupplyModel.unrestricted` for a
        pure level-C system.
    pps:
        Relative PPs ``Y_i`` keyed by ``task_id``; defaults to each task's
        own ``relative_pp``.

    Returns
    -------
    float
        ``x >= 0``, or ``math.inf`` when the system has no long-run slack
        (``U >= M_eff``) and no finite bound exists in this analysis.
    """
    cs = [t for t in tasks if t.level is CriticalityLevel.C]
    if not cs:
        return 0.0
    m = supply.m
    u_total = 0.0
    carry: list[float] = []
    for t in cs:
        c = t.pwcet(CriticalityLevel.C)
        u = c / t.period
        y = pps.get(t.task_id) if pps is not None else t.relative_pp
        if y is None:
            raise ValueError(f"task {t.label} has no relative PP")
        u_total += u
        carry.append(max(0.0, c - u * y))
        if u > supply.max_alpha + 1e-12:
            # The Fig. 3 phenomenon: one task outstrips every single CPU's
            # available rate; its response time is unbounded.
            return math.inf
    slack = supply.total_rate - u_total
    if slack <= 1e-12:
        return math.inf
    carry.sort(reverse=True)
    top = sum(carry[: max(0, m - 1)])
    x_rate = (top + supply.total_burst) / slack
    rate = supply.total_rate
    if rate <= 1e-12:
        return math.inf
    x_burst = (sum(carry) - min(carry) + supply.total_burst) / rate
    return max(0.0, x_rate, x_burst)


@dataclass(frozen=True)
class BoundsResult:
    """Per-task GEL response-time bounds.

    Attributes
    ----------
    x:
        The shared delay term (possibly ``inf``).
    pp_relative:
        ``x + C_i`` per ``task_id``: bound on completion minus actual PP.
        These are the natural response-time tolerances ``xi_i``.
    absolute:
        ``Y_i + x + C_i`` per ``task_id``: bound on response time
        ``t^c - r``.
    """

    x: float
    pp_relative: Dict[int, float]
    absolute: Dict[int, float]

    @property
    def is_finite(self) -> bool:
        """Whether the analysis produced finite bounds."""
        return math.isfinite(self.x)

    def max_absolute(self) -> float:
        """Largest absolute response-time bound over all tasks."""
        return max(self.absolute.values()) if self.absolute else 0.0


def gel_response_bounds(
    ts: TaskSet,
    pps: Optional[Dict[int, float]] = None,
    supply: Optional[SupplyModel] = None,
) -> BoundsResult:
    """Compute :class:`BoundsResult` for the level-C tasks of *ts*.

    ``supply`` defaults to the task set's own A/B interference
    (:meth:`SupplyModel.from_taskset`).
    """
    if supply is None:
        supply = SupplyModel.from_taskset(ts)
    cs = ts.level(CriticalityLevel.C)
    x = response_bound_x(cs, supply, pps)
    rel: Dict[int, float] = {}
    absolute: Dict[int, float] = {}
    for t in cs:
        c = t.pwcet(CriticalityLevel.C)
        y = pps.get(t.task_id) if pps is not None else t.relative_pp
        if y is None:
            raise ValueError(f"task {t.label} has no relative PP")
        rel[t.task_id] = x + c
        absolute[t.task_id] = y + x + c
    return BoundsResult(x=x, pp_relative=rel, absolute=absolute)
