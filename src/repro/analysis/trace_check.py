"""Brute-force verification of monitor decisions against a trace.

The monitor detects idle normal instants *online* from a stream of
completions (Algorithm 2); this module recomputes the same notions
*offline* from a finished trace, by direct application of the paper's
definitions:

* **Def. 1** — a completed job misses its tolerance iff
  ``t^c > y + xi`` (jobs completing at or before their PP meet any
  non-negative tolerance);
* **Def. 2** — ``t`` is an *idle normal instant* iff some processor is
  idle at ``t`` (fewer eligible level-C jobs than available CPUs, in the
  level-C view) and every job pending at ``t`` meets its tolerance.

:func:`verify_monitor_decisions` then cross-checks a monitor's recovery
episodes: every episode must end at (a completion revealing) an idle
normal instant.  The property suite uses this as the ground truth for
Theorem 1; it is also a practical debugging tool for custom policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.monitor import Monitor
from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet
from repro.sim.trace import JobRecord, Trace

__all__ = [
    "job_misses_tolerance",
    "pending_jobs_at",
    "is_idle_normal_instant",
    "idle_normal_instants",
    "verify_monitor_decisions",
    "MonitorVerdict",
]


def job_misses_tolerance(rec: JobRecord, ts: TaskSet) -> bool:
    """Def. 1 on a completed record (False for incomplete/non-C jobs)."""
    if rec.level is not CriticalityLevel.C or rec.completion is None:
        return False
    xi = ts[rec.task_id].tolerance
    if xi is None:
        raise ValueError(f"task {rec.task_id} has no tolerance configured")
    lateness = rec.pp_lateness
    return lateness is not None and lateness > xi


def pending_jobs_at(trace: Trace, t: float) -> List[JobRecord]:
    """Level-C jobs pending at *t* (paper Sec. 2: ``r <= t < t^c``)."""
    out = []
    for rec in trace.jobs:
        if rec.level is not CriticalityLevel.C:
            continue
        if rec.release <= t and (rec.completion is None or t < rec.completion):
            out.append(rec)
    return out


def _eligible_pending(pending: Sequence[JobRecord]) -> List[JobRecord]:
    """Heads of each task's pending queue (intra-task precedence)."""
    heads = {}
    for rec in pending:
        cur = heads.get(rec.task_id)
        if cur is None or rec.index < cur.index:
            heads[rec.task_id] = rec
    return list(heads.values())


def is_idle_normal_instant(
    trace: Trace, ts: TaskSet, t: float, available_cpus: Optional[int] = None
) -> bool:
    """Def. 2 at instant *t*, recomputed from the trace.

    "Some processor is idle" is evaluated in the level-C view the paper's
    analysis uses: fewer *eligible* pending level-C jobs than CPUs
    available to level C at that instant.  ``available_cpus`` defaults to
    the platform size (exact when levels A/B are idle at ``t``; callers
    with heavy A/B load should pass the instantaneous availability).
    """
    m = available_cpus if available_cpus is not None else ts.m
    pending = pending_jobs_at(trace, t)
    if len(_eligible_pending(pending)) >= m:
        return False
    for rec in pending:
        if rec.completion is None:
            return False  # unfinished at trace end: cannot certify Def. 1
        if job_misses_tolerance(rec, ts):
            return False
    return True


def idle_normal_instants(
    trace: Trace, ts: TaskSet, instants: Sequence[float]
) -> List[float]:
    """Filter *instants* down to the idle normal ones (Def. 2)."""
    return [t for t in instants if is_idle_normal_instant(trace, ts, t)]


@dataclass(frozen=True)
class MonitorVerdict:
    """Outcome of :func:`verify_monitor_decisions`."""

    episodes_checked: int
    #: (episode_end, reason) for every violation found.
    violations: Tuple[Tuple[float, str], ...]

    @property
    def ok(self) -> bool:
        """Whether every episode exit was justified."""
        return not self.violations


def verify_monitor_decisions(
    monitor: Monitor,
    trace: Trace,
    ts: TaskSet,
    probe_back: float = 1e-6,
) -> MonitorVerdict:
    """Check each closed recovery episode against Def. 2 ground truth.

    An episode ending at completion time ``t_end`` is justified if some
    instant in ``[episode.start, t_end]`` is an idle normal instant.  We
    probe just before ``t_end`` (the accepted candidate idle instant is
    at or before the completion that revealed it) and at the recorded
    candidate completion times.
    """
    violations: List[Tuple[float, str]] = []
    checked = 0
    completions = sorted(
        rec.completion
        for rec in trace.jobs
        if rec.level is CriticalityLevel.C and rec.completion is not None
    )
    for ep in monitor.episodes:
        if ep.end is None:
            continue
        checked += 1
        probes = [ep.end - probe_back]
        probes.extend(c for c in completions if ep.start <= c <= ep.end)
        if not any(is_idle_normal_instant(trace, ts, p) for p in probes):
            violations.append(
                (ep.end, "no idle normal instant found within the episode")
            )
    return MonitorVerdict(episodes_checked=checked, violations=tuple(violations))
