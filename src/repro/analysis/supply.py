"""Level-A/B interference modelled as restricted per-CPU supply.

Sec. 2 of the paper analyzes level C by treating levels A and B "as CPU
supply that is unavailable to level C, rather than as explicit tasks".
This module computes that supply view from a :class:`TaskSet`:

* **rate**: CPU ``p`` delivers a long-run fraction
  ``alpha_p = 1 - U_AB^C(p)`` of its capacity to level C, where the A/B
  utilizations are taken at their *level-C* PWCETs (normal operation: no
  job exceeds its level-C PWCET);
* **burst**: over a finite interval the delivered supply can fall short of
  the rate by a bounded burst ``sigma_p``.  We use the classic periodic
  supply/availability bound: a periodic interferer with period ``T_j``
  and execution ``c_j`` can deny up to ``c_j`` extra over any interval
  beyond its rate share, twice at the boundaries, giving
  ``sigma_p = sum_j 2 * c_j * (1 - c_j / T_j)``.

Both quantities feed the response-time bound of
:mod:`repro.analysis.bounds` and the dissipation bound of
:mod:`repro.analysis.dissipation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet

__all__ = ["SupplyModel"]


@dataclass(frozen=True)
class SupplyModel:
    """Per-CPU level-C supply restriction derived from a task set.

    Attributes
    ----------
    alphas:
        ``alpha_p`` for each CPU: long-run fraction available to level C.
    sigmas:
        ``sigma_p`` for each CPU: worst-case supply burst deficit.
    """

    alphas: Tuple[float, ...]
    sigmas: Tuple[float, ...]

    @classmethod
    def from_taskset(cls, ts: TaskSet) -> "SupplyModel":
        """Build the normal-operation supply model of *ts*.

        A/B tasks lacking a level-C PWCET contribute nothing (they cannot
        occur in valid MC² task sets; tolerated for partial inputs).
        """
        alphas: List[float] = []
        sigmas: List[float] = []
        for p in range(ts.m):
            u = 0.0
            sigma = 0.0
            for t in ts.on_cpu(p):
                if not t.level.is_hard:
                    continue
                if CriticalityLevel.C not in t.pwcets:
                    continue
                c = t.pwcet(CriticalityLevel.C)
                uj = c / t.period
                u += uj
                sigma += 2.0 * c * (1.0 - uj)
            alphas.append(max(0.0, 1.0 - u))
            sigmas.append(sigma)
        return cls(alphas=tuple(alphas), sigmas=tuple(sigmas))

    @classmethod
    def unrestricted(cls, m: int) -> "SupplyModel":
        """Full supply on *m* CPUs (no A/B interference)."""
        return cls(alphas=(1.0,) * m, sigmas=(0.0,) * m)

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of CPUs."""
        return len(self.alphas)

    @property
    def total_rate(self) -> float:
        """Long-run level-C capacity ``M_eff = sum_p alpha_p``."""
        return sum(self.alphas)

    @property
    def total_burst(self) -> float:
        """Total burst deficit ``sum_p sigma_p``."""
        return sum(self.sigmas)

    @property
    def max_alpha(self) -> float:
        """Largest single-CPU availability — caps any one task's service rate.

        A single level-C job executes on at most one CPU at a time, so
        sustained per-task utilization above ``max_alpha`` is unschedulable
        even if total capacity suffices (the phenomenon of the paper's
        Fig. 3).
        """
        return max(self.alphas) if self.alphas else 0.0

    def supply_lower_bound(self, delta: float) -> float:
        """Guaranteed aggregate level-C supply over any interval of length *delta*."""
        if delta <= 0.0:
            return 0.0
        return max(0.0, self.total_rate * delta - self.total_burst)
