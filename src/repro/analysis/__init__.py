"""Schedulability and response-time analysis substrate.

The paper provisions level-C response-time tolerances from "analytical
upper bounds of job response times" (Sec. 3, citing tech report
TR14-001).  The technical report itself is not part of the provided
text, so this package implements a documented instantiation:

* :mod:`repro.analysis.supply` — levels A/B seen from level C as reduced,
  bursty per-CPU supply (Sec. 2: "level-A and -B tasks as CPU supply that
  is unavailable to level C").
* :mod:`repro.analysis.bounds` — GEL response-time bounds relative to the
  priority point, in the compliant-vector style of Erickson et al. [9],
  extended with the supply model's rate and burst terms.
* :mod:`repro.analysis.schedulability` — the level-C SRT schedulability
  test (bounded response times) that gates the bound's validity.
* :mod:`repro.analysis.dissipation` — an analytical dissipation-time bound
  (how long recovery at speed ``s`` can take after a transient overload).

All bounds are validated empirically by the test suite: in overload-free
simulation no generated task set ever misses its assigned tolerance, and
measured dissipation never exceeds the dissipation bound.
"""

from repro.analysis.bounds import (
    BoundsResult,
    gel_response_bounds,
    response_bound_x,
)
from repro.analysis.dissipation import DissipationBound, dissipation_bound
from repro.analysis.schedulability import SchedulabilityResult, check_level_c
from repro.analysis.speed_selection import SpeedChoice, select_recovery_speed
from repro.analysis.supply import SupplyModel
from repro.analysis.trace_check import (
    MonitorVerdict,
    idle_normal_instants,
    is_idle_normal_instant,
    verify_monitor_decisions,
)

__all__ = [
    "SupplyModel",
    "BoundsResult",
    "gel_response_bounds",
    "response_bound_x",
    "SchedulabilityResult",
    "check_level_c",
    "DissipationBound",
    "dissipation_bound",
    "SpeedChoice",
    "select_recovery_speed",
    "is_idle_normal_instant",
    "idle_normal_instants",
    "verify_monitor_decisions",
    "MonitorVerdict",
]
