"""Provenance manifests + attestation-by-re-execution (``repro-provenance`` v1).

Every merged artifact this repo produces is deterministic: a campaign's
cells are content-addressed (RunSpec / FaultPlan sha256 keys), execution
is seeded, and the streaming merges write byte-identical output no
matter how many workers ran, in how many attempts, on which machine.
This module closes the trust loop over that determinism:

* a :class:`ProvenanceManifest` is written next to every merged
  artifact — the input cell keys in merge order, a sha256 digest of
  each cell's result document, the kernel backends/dispatchers that
  produced them, the code version (package version + a sha256 over the
  ``repro`` source tree), and the sha256 of the merged output bytes;
* :func:`verify_manifest` (the body of ``repro-mc2 verify``) attests a
  manifest: it re-hashes the merged artifact, re-checks every cell
  digest recorded *in* the artifact, and re-executes a seeded sample
  (or all) of the cells through the ordinary executor stack
  (:func:`repro.runtime.shard.get_kind`), comparing recomputed digests
  byte-for-byte.  Any divergence names the first divergent cell in a
  machine-readable :class:`VerifyReport`.

Because verification is *re-execution*, no signing infrastructure is
needed: an artifact is trusted iff an independent party, running the
same code over the same content-addressed inputs, reproduces the same
bytes.  The coordinator's ``--verify-fraction`` spot-check mode
(:mod:`repro.serve.coordinator`) applies the same digest comparison to
a seeded fraction of each untrusted worker's streamed cells before
committing their shards.

Manifest identity: :meth:`ProvenanceManifest.key` hashes only the
result-determining core (campaign, cells+digests, artifact sha256,
kernel) — **not** the ``owners`` stamp (which worker ran which shard)
and **not** the code version.  Same cells ⇒ same manifest key no matter
how the work was interleaved across workers; the owners and code
version ride along as attestation metadata.

Result-neutrality: the manifest is a *sibling* file
(``<artifact>.provenance.json`` via :func:`provenance_path`), written
atomically after the artifact.  Merged artifacts are byte-identical
with or without provenance emission.
"""

from __future__ import annotations

import json
import pathlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.io.canonical import canonical_json, doc_digest, sha256_hex
from repro.util.atomicio import atomic_write_text

__all__ = [
    "PROVENANCE_FORMAT",
    "PROVENANCE_VERSION",
    "VERIFY_REPORT_FORMAT",
    "VERIFY_REPORT_VERSION",
    "ProvenanceError",
    "ProvenanceManifest",
    "CellCheck",
    "VerifyReport",
    "source_tree_digest",
    "code_version",
    "kernel_info",
    "provenance_path",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "verify_manifest",
]

PROVENANCE_FORMAT = "repro-provenance"
PROVENANCE_VERSION = 1
VERIFY_REPORT_FORMAT = "repro-verify-report"
VERIFY_REPORT_VERSION = 1

Pathish = Union[str, "pathlib.Path"]


class ProvenanceError(ValueError):
    """A provenance manifest that is corrupt, forged, or unreadable."""


# ----------------------------------------------------------------------
# Code identity
# ----------------------------------------------------------------------
_SOURCE_DIGEST_CACHE: Dict[str, str] = {}


def source_tree_digest(package_root: Optional[Pathish] = None) -> str:
    """sha256 over the ``repro`` package's Python source tree.

    Every ``*.py`` file under the package directory is hashed in sorted
    relative-path order (path, NUL, content, NUL), so the digest pins
    exactly the code that executed the cells — byte-level, not just the
    declared package version.  Memoized per path: the tree is immutable
    within one process's lifetime for provenance purposes.
    """
    if package_root is None:
        import repro

        package_root = pathlib.Path(repro.__file__).parent
    root = pathlib.Path(package_root)
    cached = _SOURCE_DIGEST_CACHE.get(str(root))
    if cached is not None:
        return cached
    import hashlib

    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        h.update(rel.encode("utf-8"))
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    digest = h.hexdigest()
    _SOURCE_DIGEST_CACHE[str(root)] = digest
    return digest


def code_version() -> Dict[str, str]:
    """The producing code's identity: package version + source digest."""
    import repro

    return {
        "package": getattr(repro, "__version__", "0"),
        "source_sha256": source_tree_digest(),
    }


def kernel_info(kind: str, cells: Sequence[Any]) -> Dict[str, List[str]]:
    """The kernel backends/dispatchers a campaign's cells execute under.

    ``kind="sweep"`` cells are :class:`~repro.runtime.spec.RunSpec`;
    ``kind="faults"`` cells carry their spec as ``cell.run``.  Both are
    reduced to the sorted distinct backend and dispatcher names so the
    manifest records *what simulator core* produced the results.
    """
    backends = set()
    dispatchers = set()
    for cell in cells:
        spec = cell if kind == "sweep" else cell.run
        backends.add(spec.kernel.backend)
        dispatchers.add(spec.kernel.to_config().dispatcher)
    return {"backends": sorted(backends), "dispatchers": sorted(dispatchers)}


# ----------------------------------------------------------------------
# The manifest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProvenanceManifest:
    """One merged artifact's attested lineage (``repro-provenance`` v1).

    ``cells`` is the ordered (cell key, result digest) list — merge
    order, which is campaign cell order.  ``owners`` records which
    worker committed each shard (display/audit metadata; excluded from
    :meth:`key`).  ``code`` pins the producing package version + source
    tree digest (also excluded from :meth:`key`, so golden manifest
    keys survive code changes that do not change result bytes).
    """

    kind: str
    campaign: str
    artifact: str
    artifact_sha256: str
    cells: Tuple[Tuple[str, str], ...]
    kernel: Dict[str, Any] = field(default_factory=dict)
    code: Dict[str, str] = field(default_factory=dict)
    owners: Tuple[Dict[str, Any], ...] = ()

    def _identity_doc(self) -> Dict[str, Any]:
        return {
            "format": PROVENANCE_FORMAT,
            "version": PROVENANCE_VERSION,
            "kind": self.kind,
            "campaign": self.campaign,
            "artifact_sha256": self.artifact_sha256,
            "cells": [{"key": k, "digest": d} for k, d in self.cells],
            "kernel": self.kernel,
        }

    def key(self) -> str:
        """Content address of the manifest's result-determining core."""
        return sha256_hex(canonical_json(self._identity_doc()))

    def to_dict(self) -> Dict[str, Any]:
        doc = self._identity_doc()
        doc["artifact"] = self.artifact
        doc["code"] = dict(self.code)
        doc["owners"] = [dict(o) for o in self.owners]
        doc["key"] = self.key()
        return doc

    def canonical(self) -> str:
        """The canonical JSON text of the full manifest document."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ProvenanceManifest":
        if not isinstance(doc, dict):
            raise ProvenanceError("manifest is not a JSON object")
        if doc.get("format") != PROVENANCE_FORMAT:
            raise ProvenanceError(
                f"not a {PROVENANCE_FORMAT} document: {doc.get('format')!r}"
            )
        if doc.get("version") != PROVENANCE_VERSION:
            raise ProvenanceError(
                f"unsupported {PROVENANCE_FORMAT} version {doc.get('version')!r}"
            )
        try:
            cells = tuple(
                (str(c["key"]), str(c["digest"])) for c in doc["cells"]
            )
            manifest = cls(
                kind=str(doc["kind"]),
                campaign=str(doc["campaign"]),
                artifact=str(doc.get("artifact", "merged.json")),
                artifact_sha256=str(doc["artifact_sha256"]),
                cells=cells,
                kernel=dict(doc.get("kernel", {})),
                code=dict(doc.get("code", {})),
                owners=tuple(dict(o) for o in doc.get("owners", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProvenanceError(f"malformed manifest: {exc}") from exc
        recorded = doc.get("key")
        if recorded is not None and recorded != manifest.key():
            raise ProvenanceError(
                f"manifest key {str(recorded)[:12]} does not match its "
                f"recomputed content ({manifest.key()[:12]}); the manifest "
                "was tampered with or is from an incompatible version"
            )
        return manifest


def provenance_path(artifact: Pathish) -> pathlib.Path:
    """The manifest's sibling path: ``merged.json`` → ``merged.provenance.json``."""
    p = pathlib.Path(artifact)
    return p.with_name(p.stem + ".provenance.json")


def build_manifest(
    kind: str,
    campaign_key: str,
    cell_keys: Sequence[str],
    cell_digests: Sequence[str],
    artifact: Pathish,
    artifact_sha256: str,
    cells: Sequence[Any] = (),
    owners: Iterable[Dict[str, Any]] = (),
) -> ProvenanceManifest:
    """Assemble a manifest from one merge pass's observations.

    *cell_digests* are the sha256 digests of the canonical per-cell
    result JSON exactly as streamed into the artifact; *cells* (the
    live cell objects, when available) feed :func:`kernel_info`.
    """
    if len(cell_keys) != len(cell_digests):
        raise ValueError(
            f"{len(cell_keys)} cell keys but {len(cell_digests)} digests"
        )
    return ProvenanceManifest(
        kind=kind,
        campaign=campaign_key,
        artifact=pathlib.Path(artifact).name,
        artifact_sha256=artifact_sha256,
        cells=tuple(zip(cell_keys, cell_digests)),
        kernel=kernel_info(kind, cells) if cells else {},
        code=code_version(),
        owners=tuple(dict(o) for o in owners),
    )


def write_manifest(manifest: ProvenanceManifest, path: Pathish) -> pathlib.Path:
    """Atomically write *manifest* as canonical JSON; returns the path."""
    dest = pathlib.Path(path)
    atomic_write_text(dest, manifest.canonical() + "\n")
    return dest


def load_manifest(path: Pathish) -> ProvenanceManifest:
    """Read + validate a manifest; :class:`ProvenanceError` on any damage.

    A truncated file, invalid JSON, wrong format tag, or a recorded
    ``key`` that does not match the recomputed content address all
    raise — a verifier must fail loudly on a doctored manifest, never
    fall back to partial trust.
    """
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ProvenanceError(f"cannot read manifest {path}: {exc}") from exc
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise ProvenanceError(
            f"manifest {path} is not valid JSON (truncated or corrupt): {exc}"
        ) from exc
    return ProvenanceManifest.from_dict(doc)


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellCheck:
    """One verified cell: expected vs recomputed digest."""

    pos: int
    key: str
    expected: str
    actual: str
    #: ``"artifact"`` (digest of the cell document stored in the merged
    #: artifact) or ``"re-execution"`` (digest of a fresh execution).
    source: str

    @property
    def ok(self) -> bool:
        return self.expected == self.actual

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pos": self.pos,
            "key": self.key,
            "expected": self.expected,
            "actual": self.actual,
            "source": self.source,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class VerifyReport:
    """Machine-readable outcome of one ``repro-mc2 verify`` run."""

    manifest_path: str
    ok: bool
    manifest_key: str = ""
    campaign: str = ""
    kind: str = ""
    cells_total: int = 0
    artifact_path: str = ""
    artifact_expected_sha256: str = ""
    artifact_actual_sha256: str = ""
    artifact_ok: bool = False
    checked: Tuple[CellCheck, ...] = ()
    reexecuted: Tuple[int, ...] = ()
    sample_seed: int = 0
    code_recorded: Dict[str, str] = field(default_factory=dict)
    code_current: Dict[str, str] = field(default_factory=dict)
    error: str = ""

    @property
    def divergent(self) -> List[CellCheck]:
        return [c for c in self.checked if not c.ok]

    @property
    def first_divergent(self) -> Optional[CellCheck]:
        bad = self.divergent
        return min(bad, key=lambda c: c.pos) if bad else None

    @property
    def code_match(self) -> bool:
        return self.code_recorded == self.code_current

    def to_dict(self) -> Dict[str, Any]:
        first = self.first_divergent
        return {
            "format": VERIFY_REPORT_FORMAT,
            "version": VERIFY_REPORT_VERSION,
            "ok": self.ok,
            "manifest": self.manifest_path,
            "manifest_key": self.manifest_key,
            "campaign": self.campaign,
            "kind": self.kind,
            "cells_total": self.cells_total,
            "artifact": {
                "path": self.artifact_path,
                "expected_sha256": self.artifact_expected_sha256,
                "actual_sha256": self.artifact_actual_sha256,
                "ok": self.artifact_ok,
            },
            "checked": [c.to_dict() for c in self.checked],
            "divergent": [c.to_dict() for c in self.divergent],
            "first_divergent": (
                {"pos": first.pos, "key": first.key, "source": first.source}
                if first is not None
                else None
            ),
            "reexecuted": list(self.reexecuted),
            "sample_seed": self.sample_seed,
            "code": {
                "recorded": dict(self.code_recorded),
                "current": dict(self.code_current),
                "match": self.code_match,
            },
            "error": self.error,
        }

    def render(self) -> str:
        """A short human summary (the non-``--json`` CLI output)."""
        lines = []
        if self.error:
            lines.append(f"verify FAILED: {self.error}")
            return "\n".join(lines)
        status = "ok" if self.ok else "FAILED"
        lines.append(
            f"verify {status}: manifest {self.manifest_key[:12]} "
            f"campaign {self.campaign[:12]} [{self.kind}] "
            f"({self.cells_total} cells)"
        )
        art = "matches" if self.artifact_ok else "DIVERGES"
        lines.append(
            f"  artifact {self.artifact_path}: sha256 {art} "
            f"({self.artifact_actual_sha256[:12]} vs "
            f"{self.artifact_expected_sha256[:12]})"
        )
        lines.append(
            f"  cells checked: {len(self.checked)} "
            f"(re-executed {len(self.reexecuted)}, "
            f"seed {self.sample_seed})"
        )
        first = self.first_divergent
        if first is not None:
            lines.append(
                f"  first divergent cell: pos {first.pos} "
                f"key {first.key[:12]} via {first.source} "
                f"(expected {first.expected[:12]}, got {first.actual[:12]})"
            )
        if not self.code_match:
            lines.append(
                "  note: verifying code differs from the producing code "
                f"(recorded {self.code_recorded.get('source_sha256', '?')[:12]}, "
                f"current {self.code_current.get('source_sha256', '?')[:12]})"
            )
        return "\n".join(lines)


def _artifact_cell_docs(artifact_doc: Any, kind: str) -> Optional[List[Any]]:
    """The per-cell documents stored in a merged artifact, or ``None``."""
    if not isinstance(artifact_doc, dict):
        return None
    docs = artifact_doc.get("results" if kind != "faults" else "outcomes")
    return docs if isinstance(docs, list) else None


def _sample_positions(n: int, sample: int, seed: int, all_cells: bool) -> List[int]:
    """The seeded, sorted cell positions to re-execute."""
    if all_cells or sample >= n:
        return list(range(n))
    k = max(1, sample)
    return sorted(random.Random(seed).sample(range(n), k))


def verify_manifest(
    manifest_path: Pathish,
    campaign_path: Optional[Pathish] = None,
    artifact_path: Optional[Pathish] = None,
    all_cells: bool = False,
    sample: int = 4,
    sample_seed: int = 0,
    reexecute: bool = True,
) -> VerifyReport:
    """Attest one provenance manifest; never raises on tampering.

    Three layers, cheapest first:

    1. **manifest integrity** — parse + recorded-key check
       (:func:`load_manifest`); a forged or truncated manifest yields an
       ``error`` report immediately;
    2. **artifact integrity** — sha256 of the merged artifact bytes
       against ``artifact_sha256``, then every cell document *stored in*
       the artifact re-digested against the manifest (this is what names
       the first divergent cell of a byte-flipped or cell-swapped
       artifact);
    3. **re-execution** — a seeded sample (or ``all_cells``) of the
       campaign's cells re-executed through
       :func:`repro.runtime.shard.get_kind` (the exact executor the
       file queue and service workers use) and re-digested.  Requires
       the campaign document (``campaign.json`` next to the manifest,
       or *campaign_path*).

    The report's ``ok`` is true iff every layer passed.
    """
    mpath = pathlib.Path(manifest_path)
    try:
        manifest = load_manifest(mpath)
    except ProvenanceError as exc:
        return VerifyReport(manifest_path=str(mpath), ok=False, error=str(exc))

    apath = (
        pathlib.Path(artifact_path)
        if artifact_path is not None
        else mpath.parent / manifest.artifact
    )
    checks: List[CellCheck] = []
    error = ""
    try:
        blob = apath.read_bytes()
        actual_sha = sha256_hex(blob)
    except OSError as exc:
        blob = b""
        actual_sha = ""
        error = f"cannot read artifact {apath}: {exc}"
    artifact_ok = actual_sha == manifest.artifact_sha256

    # Layer 2: per-cell digests of what the artifact actually contains.
    if blob:
        try:
            artifact_doc = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            artifact_doc = None
        docs = _artifact_cell_docs(artifact_doc, manifest.kind)
        if docs is not None and len(docs) == len(manifest.cells):
            for pos, (doc, (key, expected)) in enumerate(zip(docs, manifest.cells)):
                try:
                    actual = doc_digest(doc)
                except (TypeError, ValueError):
                    actual = "<undigestable>"
                if actual != expected:
                    checks.append(CellCheck(
                        pos=pos, key=key, expected=expected,
                        actual=actual, source="artifact",
                    ))
        elif not artifact_ok and not error:
            error = (
                f"artifact {apath} is corrupt beyond cell attribution "
                "(unparseable or wrong cell count)"
            )

    # Layer 3: seeded re-execution through the ordinary executor stack.
    reexecuted: List[int] = []
    if reexecute and not error:
        if campaign_path is not None:
            cpath = pathlib.Path(campaign_path)
        else:
            # Campaign dirs keep campaign.json; standalone artifacts
            # (serial/pool --merged-out) keep <stem>.campaign.json.
            stem = pathlib.Path(manifest.artifact).stem
            candidates = [
                mpath.parent / "campaign.json",
                mpath.parent / (stem + ".campaign.json"),
            ]
            cpath = next((c for c in candidates if c.exists()), candidates[0])
        try:
            from repro.runtime.shard import ShardedCampaign, get_kind

            with open(cpath, "r", encoding="utf-8") as fh:
                campaign = ShardedCampaign.from_dict(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            campaign = None
            error = f"cannot load campaign document {cpath}: {exc}"
        if campaign is not None:
            if campaign.campaign_key != manifest.campaign:
                error = (
                    f"campaign document {campaign.campaign_key[:12]} does not "
                    f"match manifest campaign {manifest.campaign[:12]}"
                )
            elif list(campaign.cell_keys) != [k for k, _ in manifest.cells]:
                error = "campaign cell keys do not match the manifest's cells"
            else:
                kind = get_kind(campaign.kind)
                positions = _sample_positions(
                    len(campaign.cells), sample, sample_seed, all_cells
                )
                for pos in positions:
                    key, expected = manifest.cells[pos]
                    actual = doc_digest(kind.execute(campaign.cells[pos]))
                    reexecuted.append(pos)
                    if actual != expected:
                        checks.append(CellCheck(
                            pos=pos, key=key, expected=expected,
                            actual=actual, source="re-execution",
                        ))

    ok = artifact_ok and not checks and not error
    return VerifyReport(
        manifest_path=str(mpath),
        ok=ok,
        manifest_key=manifest.key(),
        campaign=manifest.campaign,
        kind=manifest.kind,
        cells_total=len(manifest.cells),
        artifact_path=str(apath),
        artifact_expected_sha256=manifest.artifact_sha256,
        artifact_actual_sha256=actual_sha,
        artifact_ok=artifact_ok,
        checked=tuple(checks),
        reexecuted=tuple(reexecuted),
        sample_seed=sample_seed,
        code_recorded=dict(manifest.code),
        code_current=code_version(),
        error=error,
    )
