"""The fault plane: injects a :class:`~repro.faults.spec.FaultPlan`
into one kernel run at the existing seams.

The kernel has **no** fault branches.  Every degradation rides an
interface the simulator already exposes:

=====================  ============================================
fault                  seam
=====================  ============================================
``MonitorOutage``      ``kernel.monitor`` (the notification link) is
                       wrapped by a window-gating proxy
``SpeedCommandDelay``  ``monitor.controller`` (the ``change_speed``
``SpeedCommandDrop``   syscall path) is wrapped; delayed commands
                       ride generic ``CALLBACK`` timer events
``ClockSkew``          ``kernel.clock`` is swapped for a
                       :class:`VirtualClock` subclass that jitters
                       the virtual→actual direction
``ExecutionSpike``     the :class:`ExecutionBehavior` is wrapped
                       (outside budget enforcement — spikes are
                       demand *beyond* the PWCETs)
``ReleaseJitter``      ``KernelConfig.release_delay`` is composed
``CpuStall``           a synthetic top-priority pinned level-A job
                       occupies the CPU for the stall window
=====================  ============================================

A plane is single-use: build one per run, let the experiment runner
call :meth:`FaultPlane.amend_config` / :meth:`FaultPlane.wrap_behavior`
before kernel construction and :meth:`FaultPlane.install` after the
monitor is attached (``run_overload_experiment(..., fault_plane=...)``
does all three).  With no plane attached nothing is wrapped and the
run is bit-identical to an unfaulted one.

Every perturbation emits a ``fault_inject`` trace event when tracing
is on, so injected faults line up against the recovery episodes they
provoke in Perfetto (:mod:`repro.obs.chrome_trace` gives them their
own process row).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.core.virtual_time import VirtualClock
from repro.faults.spec import (
    ClockSkew,
    CpuStall,
    ExecutionSpike,
    FaultPlan,
    MonitorOutage,
    ReleaseJitter,
    SpeedCommandDelay,
    SpeedCommandDrop,
    unit_rand,
)
from repro.model.behavior import ExecutionBehavior
from repro.model.job import Job
from repro.model.task import CriticalityLevel, Task
from repro.obs.tracer import NULL_TRACER, EventName, Tracer
from repro.sim.events import Event, EventKind
from repro.sim.kernel import KernelConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.monitor import CompletionReport, Monitor
    from repro.sim.kernel import MC2Kernel

__all__ = ["FAULT_TASK_BASE_ID", "FaultPlane"]

#: Synthetic task ids used for CpuStall jobs.  Far above both real task
#: ids and the level-D probe base (10_000) used by repro.sim.diffcheck;
#: the invariant checkers exclude ids at or above this base from the
#: criticality-isolation oracle (a stalled CPU *should* delay its
#: level-A/B partition — that is the fault).
FAULT_TASK_BASE_ID = 900_000

#: Period of the synthetic stall tasks: shorter than any real level-A
#: period, so the RM dispatch key ``(period, task_id, index)`` ranks the
#: stall job first on its CPU.
_STALL_PERIOD = 1e-6


class FaultPlane:
    """Injects one :class:`FaultPlan` into one kernel run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._installed = False
        self._kernel: Optional["MC2Kernel"] = None
        self._tracer: Tracer = NULL_TRACER
        self._outages: List[MonitorOutage] = []
        self._speed_faults: List[Any] = []  # delays + drops, plan order
        self._skews: List[ClockSkew] = []
        self._spikes: List[ExecutionSpike] = []
        self._jitters: List[ReleaseJitter] = []
        self._stalls: List[CpuStall] = []
        for f in plan.faults:
            if isinstance(f, MonitorOutage):
                self._outages.append(f)
            elif isinstance(f, (SpeedCommandDelay, SpeedCommandDrop)):
                self._speed_faults.append(f)
            elif isinstance(f, ClockSkew):
                self._skews.append(f)
            elif isinstance(f, ExecutionSpike):
                self._spikes.append(f)
            elif isinstance(f, ReleaseJitter):
                self._jitters.append(f)
            elif isinstance(f, CpuStall):
                self._stalls.append(f)
            else:  # pragma: no cover - FaultSpec is closed
                raise TypeError(f"unknown fault spec {f!r}")

    # ------------------------------------------------------------------
    # Pre-kernel hooks (the runner calls these before building the kernel)
    # ------------------------------------------------------------------
    def amend_config(self, config: KernelConfig) -> KernelConfig:
        """Compose :class:`ReleaseJitter` into ``config.release_delay``.

        Windows are tested against the job's *nominal* release
        ``phase + index*T`` (the hook is evaluated at arm time, before
        the realized release is known); level A is exempt because the
        kernel never applies release delays to table-driven tasks.
        """
        if not self._jitters:
            return config
        base = config.release_delay
        jitters = tuple(self._jitters)
        seed = self.plan.seed
        plane = self

        def delayed(task: Task, index: int) -> float:
            extra = base(task, index) if base is not None else 0.0
            nominal = task.phase + index * task.period
            for j in jitters:
                if j.start <= nominal < j.end:
                    if j.prob >= 1.0 or unit_rand(
                        seed, "release_jitter", task.task_id, index
                    ) < j.prob:
                        amt = j.magnitude * unit_rand(
                            seed, "release_jitter_mag", task.task_id, index
                        )
                        if amt > 0.0:
                            plane._emit(
                                nominal,
                                fault=ReleaseJitter.kind,
                                task=task.task_id,
                                job=index,
                                delay=amt,
                            )
                            extra += amt
                    break
            return extra

        return dc_replace(config, release_delay=delayed)

    def wrap_behavior(self, behavior: ExecutionBehavior) -> ExecutionBehavior:
        """Wrap the execution behavior with :class:`ExecutionSpike`s.

        Must wrap *outside* budget enforcement: a spike is extra demand
        beyond the PWCETs, so budgets must not clip it.
        """
        if not self._spikes:
            return behavior
        return _SpikedBehavior(self, behavior, tuple(self._spikes), self.plan.seed)

    # ------------------------------------------------------------------
    # Installation (after attach_monitor, before kernel.start())
    # ------------------------------------------------------------------
    def install(self, kernel: "MC2Kernel", monitor: "Monitor") -> None:
        """Attach the remaining interceptors to a built kernel."""
        if self._installed:
            raise RuntimeError("a FaultPlane is single-use; build a new one per run")
        if kernel._started:
            raise RuntimeError("FaultPlane.install must run before kernel.start()")
        self._installed = True
        self._kernel = kernel
        self._tracer = kernel.tracer

        if self._skews:
            if not isinstance(kernel.clock, VirtualClock):
                raise ValueError("ClockSkew requires use_virtual_time=True")
            kernel.clock = _SkewedClock(self, tuple(self._skews), self.plan.seed)

        if self._speed_faults:
            monitor.controller = _SpeedPath(self, monitor.controller)

        if self._outages:
            gate = _MonitorGate(self, kernel.monitor)
            kernel.monitor = gate
            for o in self._outages:
                if o.mode == "queue":
                    kernel.engine.push(
                        Event(time=o.end, kind=EventKind.CALLBACK, payload=gate.flush)
                    )

        for i, st in enumerate(self._stalls):
            if st.cpu >= kernel.taskset.m:
                raise ValueError(
                    f"CpuStall.cpu={st.cpu} out of range for m={kernel.taskset.m}"
                )
            task = Task(
                task_id=FAULT_TASK_BASE_ID + i,
                level=CriticalityLevel.A,
                period=_STALL_PERIOD,
                pwcets={CriticalityLevel.A: st.end - st.start},
                cpu=st.cpu,
                name=f"stall-cpu{st.cpu}",
            )
            kernel.engine.push(
                Event(
                    time=st.start,
                    kind=EventKind.CALLBACK,
                    payload=lambda now, st=st, task=task: self._begin_stall(st, task, now),
                )
            )

    def _begin_stall(self, stall: CpuStall, task: Task, now: float) -> None:
        """CALLBACK at the stall start: release the synthetic hog job."""
        kernel = self._kernel
        assert kernel is not None
        job = Job(task=task, index=0, release=now, exec_time=stall.end - stall.start)
        kernel.jobs_a[stall.cpu].append(job)
        if kernel._incremental:
            kernel._index_release(job)
        if kernel._trace_on:
            kernel._trace_release(job, now)
        self._emit(now, fault=CpuStall.kind, cpu=stall.cpu, until=stall.end)

    # ------------------------------------------------------------------
    def _emit(self, t: float, **fields: Any) -> None:
        if self._tracer.enabled:
            self._tracer.emit(EventName.FAULT_INJECT, t, **fields)


class _SpikedBehavior:
    """ExecutionBehavior wrapper applying :class:`ExecutionSpike`s."""

    def __init__(
        self,
        plane: FaultPlane,
        inner: ExecutionBehavior,
        spikes: Tuple[ExecutionSpike, ...],
        seed: int,
    ) -> None:
        self._plane = plane
        self._inner = inner
        self._spikes = spikes
        self._seed = seed

    def exec_time(self, task: Task, job_index: int, release: float) -> float:
        e = self._inner.exec_time(task, job_index, release)
        if e <= 0.0:
            return e
        for sp in self._spikes:
            if sp.start <= release < sp.end and task.level.name == sp.level:
                if sp.prob >= 1.0 or unit_rand(
                    self._seed, "execution_spike", task.task_id, job_index
                ) < sp.prob:
                    self._plane._emit(
                        release,
                        fault=ExecutionSpike.kind,
                        task=task.task_id,
                        job=job_index,
                        factor=sp.factor,
                    )
                    e *= sp.factor
                break
        return e


class _SpeedPath:
    """``change_speed`` interceptor (wraps ``monitor.controller``)."""

    def __init__(self, plane: FaultPlane, inner: Any) -> None:
        self._plane = plane
        self._inner = inner

    def change_speed(self, speed: float, now: float) -> None:
        plane = self._plane
        for f in plane._speed_faults:
            if f.start <= now < f.end:
                if isinstance(f, SpeedCommandDrop):
                    plane._emit(now, fault=SpeedCommandDrop.kind, speed=speed)
                    return
                plane._emit(
                    now, fault=SpeedCommandDelay.kind, speed=speed, delay=f.delay
                )
                inner = self._inner
                assert plane._kernel is not None
                plane._kernel.engine.push(
                    Event(
                        time=now + f.delay,
                        kind=EventKind.CALLBACK,
                        # Delivered late: the command takes effect at the
                        # *callback's* time, not the issue time.
                        payload=lambda t, s=speed: inner.change_speed(s, t),
                    )
                )
                return
        self._inner.change_speed(speed, now)


class _MonitorGate:
    """Monitor-notification interceptor (wraps ``kernel.monitor``).

    Covers both delivery paths: with zero monitor latency the kernel
    calls ``on_job_release`` / ``on_job_complete`` directly; with
    latency they arrive via ``MONITOR_REPORT`` events — in either case
    through ``kernel.monitor``, i.e. this gate.  The window test uses
    the *delivery* time (``engine.now``), matching the fault model: the
    notification link is down, not the kernel event itself.
    """

    def __init__(self, plane: FaultPlane, inner: "Monitor") -> None:
        self._plane = plane
        self._inner = inner
        self._queue: List[Tuple[str, Any]] = []

    def _mode(self, now: float) -> Optional[str]:
        for o in self._plane._outages:
            if o.start <= now < o.end:
                return o.mode
        return None

    def on_job_release(self, jid: Tuple[int, int]) -> None:
        plane = self._plane
        assert plane._kernel is not None
        now = plane._kernel.engine.now
        mode = self._mode(now)
        if mode is None:
            self._inner.on_job_release(jid)
            return
        plane._emit(
            now, fault=MonitorOutage.kind, action=mode,
            event="release", task=jid[0], job=jid[1],
        )
        if mode == "queue":
            self._queue.append(("release", jid))

    def on_job_complete(self, report: "CompletionReport") -> None:
        plane = self._plane
        assert plane._kernel is not None
        now = plane._kernel.engine.now
        mode = self._mode(now)
        if mode is None:
            self._inner.on_job_complete(report)
            return
        plane._emit(
            now, fault=MonitorOutage.kind, action=mode,
            event="complete", task=report.task.task_id, job=report.job_index,
        )
        if mode == "queue":
            self._queue.append(("complete", report))

    def flush(self, now: float) -> None:
        """CALLBACK at a queue-window end: deliver the backlog in order."""
        if not self._queue:
            return
        queued, self._queue = self._queue, []
        self._plane._emit(
            now, fault=MonitorOutage.kind, action="flush", count=len(queued)
        )
        for kind, data in queued:
            if kind == "release":
                self._inner.on_job_release(data)
            else:
                self._inner.on_job_complete(data)


class _SkewedClock(VirtualClock):
    """A :class:`VirtualClock` whose virtual→actual reads come back up
    to ``magnitude`` late inside skew windows.

    Only the virtual→actual direction is perturbed (timers fire late);
    actual→virtual stays exact, so virtual time remains monotone and
    the SVO early-release guard cannot trip.  Must subclass
    :class:`VirtualClock` — the experiment runner's settle predicate
    checks ``isinstance(kernel.clock, VirtualClock)``.
    """

    def __init__(
        self, plane: FaultPlane, skews: Tuple[ClockSkew, ...], seed: int
    ) -> None:
        super().__init__(0.0)
        self._plane = plane
        self._skews = skews
        self._seed = seed

    def virt_to_act(self, virt: float) -> float:
        act = super().virt_to_act(virt)
        for sk in self._skews:
            if sk.start <= act < sk.end:
                jitter = sk.magnitude * unit_rand(self._seed, "clock_skew", virt)
                if jitter > 0.0:
                    self._plane._emit(act, fault=ClockSkew.kind, jitter=jitter)
                    return act + jitter
                break
        return act
