"""Fault campaigns: many (run spec × fault plan) cells, scored.

A campaign is the fault-injection analogue of a sweep: a seeded grid of
:class:`CampaignCell`\\ s — each one a :class:`~repro.runtime.spec.RunSpec`
paired with a :class:`~repro.faults.spec.FaultPlan` — executed serially
or across a process pool, with every cell's finished run checked
against the invariant oracles of :mod:`repro.faults.invariants` and
reduced to a :class:`CellOutcome`.  The collected outcomes form a
:class:`Scorecard`.

Determinism is the load-bearing property: a cell's outcome (including
its run :func:`~repro.sim.diffcheck.fingerprint` digest and the exact
violation messages) depends only on the cell, never on the backend or
worker count, so a campaign's scorecard JSON is byte-identical whether
it ran serially or on a pool.  Parallel execution reuses
:func:`~repro.runtime.executor.map_pool_resilient`, so a killed worker
degrades the wall clock, not the scorecard.

Campaign construction (:func:`build_campaign`) has two modes:

* **fault-free** — the first *cells* grid cells with empty plans.  This
  is the acceptance gate: a healthy simulator must report **zero**
  violations across the whole grid.
* **faulted** — *cells* grid cells drawn by a seeded RNG, each with a
  :func:`~repro.faults.spec.random_plan` anchored at the scenario's
  last overload end, plus one fault-free *baseline* cell per distinct
  run spec (appended after the faulted cells, first-use order) so the
  scorecard can report dissipation inflation and miss deltas.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.invariants import Violation, evaluate_invariants
from repro.faults.plane import FaultPlane
from repro.faults.spec import FaultPlan, random_plan
from repro.runtime.executor import PoolDegradation, map_pool_resilient
from repro.runtime.spec import (
    KernelSpec,
    MonitorSpec,
    ObsSpec,
    RunSpec,
    ScenarioSpec,
    TaskSetSpec,
)
from repro.sim.diffcheck import fingerprint, fingerprint_digest
from repro.workload.generator import taskset_seeds
from repro.workload.scenarios import standard_scenarios

__all__ = [
    "CAMPAIGN_CELL_FORMAT",
    "SCORECARD_FORMAT",
    "CampaignCell",
    "CellOutcome",
    "CampaignConfig",
    "build_campaign",
    "run_cell",
    "run_campaign",
    "Scorecard",
    "ScorecardSummaryAccumulator",
]

CAMPAIGN_CELL_FORMAT = "repro-faultcell"
SCORECARD_FORMAT = "repro-scorecard"
SCORECARD_VERSION = 1

#: The default monitor panel: the paper's SIMPLE speeds and ADAPTIVE
#: aggressiveness values (Sec. 5 sweeps s and a over these ranges).
_MONITOR_PANEL: Tuple[Tuple[str, float], ...] = (
    ("simple", 0.4),
    ("simple", 0.5),
    ("simple", 0.6),
    ("simple", 0.7),
    ("simple", 0.8),
    ("adaptive", 0.6),
    ("adaptive", 0.8),
    ("adaptive", 0.9),
    ("adaptive", 1.0),
)


@dataclass(frozen=True)
class CampaignCell:
    """One campaign cell: a run spec plus the fault plan to inject."""

    run: RunSpec
    plan: FaultPlan

    def key(self) -> str:
        """sha256 over the combined canonical JSON of run and plan.

        ``ObsSpec`` is excluded (via ``RunSpec.canonical_json``), so
        tracing a campaign never changes its cell identities.
        """
        import hashlib

        doc = {
            "format": CAMPAIGN_CELL_FORMAT,
            "version": 1,
            "run": json.loads(self.run.canonical_json()),
            "plan": self.plan.to_dict(),
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        from repro.io.runspec_json import runspec_to_dict

        return {"run": runspec_to_dict(self.run), "plan": self.plan.to_dict()}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CampaignCell":
        from repro.io.runspec_json import runspec_from_dict

        return cls(
            run=runspec_from_dict(doc["run"]),
            plan=FaultPlan.from_dict(doc["plan"]),
        )


@dataclass(frozen=True)
class CellOutcome:
    """One executed cell: run figures, fingerprint, invariant verdicts.

    Carries the full :class:`CampaignCell` so a scorecard alone is
    enough to re-run, shrink, or replay any of its cells.
    """

    cell: CampaignCell
    dissipation: float
    truncated: bool
    min_speed: float
    miss_count: int
    episodes: int
    sim_end: float
    events: int
    fingerprint: str
    checked: Tuple[str, ...]
    violations: Tuple[Violation, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def key(self) -> str:
        return self.cell.key()

    @property
    def run_key(self) -> str:
        return self.cell.run.key()

    @property
    def faulted(self) -> bool:
        return not self.cell.plan.is_empty

    @property
    def scenario(self) -> str:
        return self.cell.run.scenario.name

    @property
    def monitor(self) -> str:
        return self.cell.run.monitor.label

    def violation_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.violations:
            out[v.invariant] = out.get(v.invariant, 0) + 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell.to_dict(),
            "key": self.key,
            "dissipation": self.dissipation,
            "truncated": self.truncated,
            "min_speed": self.min_speed,
            "miss_count": self.miss_count,
            "episodes": self.episodes,
            "sim_end": self.sim_end,
            "events": self.events,
            "fingerprint": self.fingerprint,
            "checked": list(self.checked),
            "violations": [v.to_dict() for v in self.violations],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CellOutcome":
        return cls(
            cell=CampaignCell.from_dict(doc["cell"]),
            dissipation=float(doc["dissipation"]),
            truncated=bool(doc["truncated"]),
            min_speed=float(doc["min_speed"]),
            miss_count=int(doc["miss_count"]),
            episodes=int(doc["episodes"]),
            sim_end=float(doc["sim_end"]),
            events=int(doc["events"]),
            fingerprint=doc["fingerprint"],
            checked=tuple(doc["checked"]),
            violations=tuple(Violation.from_dict(v) for v in doc["violations"]),
        )


def _s_min_for(monitor: MonitorSpec) -> Optional[float]:
    """The monitor's known speed floor, when it has one.

    SIMPLE (Algorithm 3) always requests exactly its fixed ``s``, so
    any applied speed below it means the command path corrupted the
    value.  ADAPTIVE's floor depends on runtime tardiness, so no static
    floor is claimed.
    """
    return monitor.param if monitor.kind == "simple" else None


def run_cell(cell: CampaignCell) -> CellOutcome:
    """Execute one campaign cell and judge it against the invariants.

    Module-level and importing lazily, like
    :func:`repro.runtime.executor.run_spec`, so it pickles cleanly as a
    process-pool task.  Tracing follows ``cell.run.obs`` with a
    ``cell-<key prefix>.jsonl`` default name; it is observation-only —
    the outcome is identical with or without it.
    """
    from repro.experiments.runner import run_overload_experiment

    spec = cell.run
    tracer = None
    if spec.obs.tracing:
        from repro.obs.tracer import JsonlTracer

        os.makedirs(spec.obs.trace_dir, exist_ok=True)
        name = spec.obs.trace_name or f"cell-{cell.key()[:12]}.jsonl"
        tracer = JsonlTracer(
            os.path.join(spec.obs.trace_dir, name),
            meta={
                "cell_key": cell.key(),
                "plan_key": cell.plan.key(),
                "scenario": spec.scenario.name,
                "monitor": spec.monitor.label,
            },
        )
    ts = spec.taskset.materialize()
    plane = None if cell.plan.is_empty else FaultPlane(cell.plan)
    try:
        out = run_overload_experiment(
            ts,
            spec.scenario.build(),
            spec.monitor,
            horizon=spec.horizon,
            confirm_window=spec.confirm_window,
            config=spec.kernel.to_config(),
            keep_artifacts=True,
            level_c_budgets=spec.level_c_budgets,
            tracer=tracer,
            fault_plane=plane,
        )
    finally:
        if tracer is not None:
            tracer.close()
    report = evaluate_invariants(out, ts, s_min=_s_min_for(spec.monitor))
    digest = fingerprint_digest(fingerprint(out.trace, out.kernel, out.monitor))
    r = out.result
    return CellOutcome(
        cell=cell,
        dissipation=r.dissipation,
        truncated=r.truncated,
        min_speed=r.min_speed,
        miss_count=r.miss_count,
        episodes=r.episodes,
        sim_end=r.sim_end,
        events=r.events,
        fingerprint=digest,
        checked=report.checked,
        violations=report.violations,
    )


@dataclass(frozen=True)
class CampaignConfig:
    """Declarative campaign shape; :func:`build_campaign` expands it."""

    #: Master seed: drives the task-set seed schedule, the cell→plan
    #: assignment and every plan's internal randomness.
    seed: int = 2015
    #: Number of campaign cells (excluding appended baselines).
    cells: int = 200
    #: Zero-fault mode: empty plans, acceptance-gate semantics.
    fault_free: bool = False
    #: Task sets in the grid (consecutive seeds from ``seed``).
    tasksets: int = 8
    #: Platform size assumed by CpuStall plans (the generator default).
    m: int = 4
    #: Per-run horizon and confirmation window.
    horizon: float = 30.0
    confirm_window: float = 0.5
    #: Maximum faults per random plan.
    max_faults: int = 3
    #: Optional per-cell JSONL event traces (observation only).
    trace_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ValueError(f"cells must be >= 1, got {self.cells}")
        if self.tasksets < 1:
            raise ValueError(f"tasksets must be >= 1, got {self.tasksets}")


def _grid(config: CampaignConfig) -> List[RunSpec]:
    """The underlying run-spec grid: seeds × scenarios × monitor panel.

    ``record_intervals`` is always on — the GEL-v order oracle needs
    the execution intervals.
    """
    obs = ObsSpec(trace_dir=config.trace_dir)
    kernel = KernelSpec(record_intervals=True)
    specs: List[RunSpec] = []
    for seed in taskset_seeds(config.tasksets, config.seed):
        for sc in standard_scenarios():
            for kind, param in _MONITOR_PANEL:
                specs.append(
                    RunSpec(
                        taskset=TaskSetSpec.generated(seed),
                        scenario=ScenarioSpec.from_scenario(sc),
                        monitor=MonitorSpec(kind, param),
                        kernel=kernel,
                        horizon=config.horizon,
                        confirm_window=config.confirm_window,
                        obs=obs,
                    )
                )
    return specs


def build_campaign(config: CampaignConfig) -> List[CampaignCell]:
    """Expand *config* into the ordered cell list (see module docstring)."""
    grid = _grid(config)
    if config.fault_free:
        if config.cells > len(grid):
            raise ValueError(
                f"fault-free campaign asks for {config.cells} cells but the grid "
                f"has only {len(grid)} (= {config.tasksets} task sets x 3 "
                f"scenarios x {len(_MONITOR_PANEL)} monitors); raise tasksets="
            )
        empty = FaultPlan(seed=config.seed)
        return [CampaignCell(run=spec, plan=empty) for spec in grid[: config.cells]]

    rng = random.Random(f"campaign|{config.seed}")
    cells: List[CampaignCell] = []
    for i in range(config.cells):
        spec = grid[rng.randrange(len(grid))]
        anchor = max(end for _, end in spec.scenario.windows)
        plan = random_plan(
            seed=config.seed * 100_003 + i,
            m=config.m,
            anchor=anchor,
            horizon=config.horizon,
            max_faults=config.max_faults,
        )
        cells.append(CampaignCell(run=spec, plan=plan))
    # Fault-free baselines, one per distinct run spec, first-use order:
    # the scorecard diffs each faulted cell against its baseline.
    empty = FaultPlan(seed=config.seed)
    seen = set()
    for c in list(cells):
        rk = c.run.key()
        if rk not in seen:
            seen.add(rk)
            cells.append(CampaignCell(run=c.run, plan=empty))
    return cells


def run_campaign(
    cells: Sequence[CampaignCell],
    jobs: int = 1,
    progress=None,
    telemetry=None,
) -> "Scorecard":
    """Execute *cells* (serially or on a pool) into a :class:`Scorecard`.

    ``jobs > 1`` fans cells out over a process pool via
    :func:`~repro.runtime.executor.map_pool_resilient`, so worker
    deaths degrade to retry / in-process execution instead of losing
    the campaign.  Outcomes keep submission order and are bit-identical
    across backends (each cell is deterministic in itself).

    *telemetry* (an optional
    :class:`~repro.obs.telemetry.TelemetryWriter`) receives one
    ``cell_done`` per outcome — observation only, the scorecard is
    identical either way.
    """
    cells = list(cells)
    if progress is not None:
        progress.begin(len(cells))

    def tick(outcome) -> None:
        if progress is not None:
            progress.cell_done(cached=False)
        if telemetry is not None:
            telemetry.cell_done(False, events=outcome.events)

    if jobs <= 1 or len(cells) <= 1:
        outcomes: List[CellOutcome] = []
        for c in cells:
            o = run_cell(c)
            outcomes.append(o)
            tick(o)
        degradation = PoolDegradation()
    else:
        workers = min(jobs, len(cells))
        chunk = max(1, -(-len(cells) // (4 * workers)))
        outcomes, degradation = map_pool_resilient(
            run_cell, cells, workers, chunk, on_result=tick
        )
    if progress is not None:
        progress.finish()
    return Scorecard(outcomes=tuple(outcomes), degradation=degradation)


@dataclass(frozen=True)
class Scorecard:
    """A campaign's verdict: every cell outcome plus degradation notes."""

    outcomes: Tuple[CellOutcome, ...]
    degradation: PoolDegradation = field(default_factory=PoolDegradation)

    @property
    def ok(self) -> bool:
        """True when no cell violated any invariant."""
        return all(o.ok for o in self.outcomes)

    def violating(self) -> List[CellOutcome]:
        """Outcomes with at least one violation, campaign order."""
        return [o for o in self.outcomes if not o.ok]

    def find(self, key_prefix: str) -> CellOutcome:
        """The unique outcome whose cell key starts with *key_prefix*."""
        hits = [o for o in self.outcomes if o.key.startswith(key_prefix)]
        if not hits:
            raise KeyError(f"no campaign cell matches key prefix {key_prefix!r}")
        if len(hits) > 1:
            raise KeyError(
                f"key prefix {key_prefix!r} is ambiguous ({len(hits)} cells)"
            )
        return hits[0]

    def baseline_for(self, outcome: CellOutcome) -> Optional[CellOutcome]:
        """The fault-free outcome sharing *outcome*'s run spec, if any."""
        rk = outcome.run_key
        for o in self.outcomes:
            if not o.faulted and o.run_key == rk:
                return o
        return None

    # -- aggregation ---------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Deterministic aggregate figures (what ``render`` prints)."""
        faulted = [o for o in self.outcomes if o.faulted]
        baselines = [o for o in self.outcomes if not o.faulted]
        by_invariant: Dict[str, int] = {}
        for o in self.outcomes:
            for name, n in o.violation_counts().items():
                by_invariant[name] = by_invariant.get(name, 0) + n
        inflations: List[float] = []
        miss_deltas: List[int] = []
        for o in faulted:
            base = self.baseline_for(o)
            if base is None:
                continue
            inflations.append(o.dissipation - base.dissipation)
            miss_deltas.append(o.miss_count - base.miss_count)
        return {
            "cells": len(self.outcomes),
            "faulted": len(faulted),
            "fault_free": len(baselines),
            "violating_cells": sum(1 for o in self.outcomes if not o.ok),
            "violations": {k: by_invariant[k] for k in sorted(by_invariant)},
            "truncated": sum(1 for o in self.outcomes if o.truncated),
            "max_dissipation_inflation": max(inflations) if inflations else 0.0,
            "mean_dissipation_inflation": (
                sum(inflations) / len(inflations) if inflations else 0.0
            ),
            "max_miss_delta": max(miss_deltas) if miss_deltas else 0,
            "pool_breaks": self.degradation.breaks,
            "pool_retried": self.degradation.retried,
            "pool_serial_fallback": self.degradation.serial_fallback,
        }

    def render(self) -> str:
        """Human-readable scorecard (summary + per-violating-cell lines)."""
        s = self.summary()
        lines = [
            "fault campaign scorecard",
            f"  cells: {s['cells']} ({s['faulted']} faulted, "
            f"{s['fault_free']} fault-free baselines)",
            f"  violating cells: {s['violating_cells']}",
            f"  truncated runs: {s['truncated']}",
        ]
        if s["violations"]:
            lines.append("  violations by invariant:")
            for name, n in s["violations"].items():
                lines.append(f"    {name}: {n}")
        else:
            lines.append("  violations: none")
        if s["faulted"]:
            lines.append(
                f"  dissipation inflation vs baseline: "
                f"max {s['max_dissipation_inflation']:.3f} s, "
                f"mean {s['mean_dissipation_inflation']:.3f} s"
            )
            lines.append(f"  worst extra misses vs baseline: {s['max_miss_delta']}")
        if self.degradation.breaks:
            lines.append(
                f"  pool degradation: {self.degradation.breaks} break(s), "
                f"{self.degradation.retried} cell(s) retried, "
                f"{self.degradation.serial_fallback} ran in-process"
            )
        for o in self.violating():
            counts = ", ".join(f"{k}x{n}" for k, n in sorted(o.violation_counts().items()))
            lines.append(
                f"  FAIL {o.key[:12]}  {o.scenario:<6} {o.monitor:<16} "
                f"faults={len(o.cell.plan.faults)}  {counts}"
            )
        return "\n".join(lines)

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SCORECARD_FORMAT,
            "version": SCORECARD_VERSION,
            "summary": self.summary(),
            "degradation": {
                "retried": self.degradation.retried,
                "serial_fallback": self.degradation.serial_fallback,
                "breaks": self.degradation.breaks,
            },
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for identical campaigns,
        whatever backend executed them."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Scorecard":
        if doc.get("format") != SCORECARD_FORMAT:
            raise ValueError(f"not a {SCORECARD_FORMAT} document: {doc.get('format')!r}")
        if doc.get("version") != SCORECARD_VERSION:
            raise ValueError(f"unsupported scorecard version {doc.get('version')!r}")
        deg = doc.get("degradation", {})
        return cls(
            outcomes=tuple(CellOutcome.from_dict(o) for o in doc["outcomes"]),
            degradation=PoolDegradation(
                retried=int(deg.get("retried", 0)),
                serial_fallback=int(deg.get("serial_fallback", 0)),
                breaks=int(deg.get("breaks", 0)),
            ),
        )

    def save(self, path: str) -> None:
        from repro.util.atomicio import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "Scorecard":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


class ScorecardSummaryAccumulator:
    """Streaming :meth:`Scorecard.summary` over outcomes fed one at a time.

    The sharded campaign orchestrator (:mod:`repro.runtime.shard`) merges
    shard manifests without ever materializing the whole outcome list, so
    the summary has to be computed incrementally.  Feed every outcome (in
    campaign order) through :meth:`add`; :meth:`summary` then returns a
    dict equal — key for key, value for value — to what
    ``Scorecard(outcomes).summary()`` would report for an undegraded
    (serial / checkpointed) execution of the same cells.

    Memory: O(faulted cells) small tuples plus one baseline entry per
    distinct run spec — never the outcomes themselves (each of which
    drags a full RunSpec + FaultPlan along).
    """

    def __init__(self) -> None:
        self._cells = 0
        self._violating = 0
        self._truncated = 0
        self._by_invariant: Dict[str, int] = {}
        #: (run_key, dissipation, miss_count) per faulted cell, in order.
        self._faulted: List[Tuple[str, float, int]] = []
        #: First fault-free outcome per run spec (campaign order wins).
        self._baselines: Dict[str, Tuple[float, int]] = {}
        self._fault_free = 0

    def add(self, outcome: CellOutcome) -> None:
        self._cells += 1
        if not outcome.ok:
            self._violating += 1
        if outcome.truncated:
            self._truncated += 1
        for name, n in outcome.violation_counts().items():
            self._by_invariant[name] = self._by_invariant.get(name, 0) + n
        if outcome.faulted:
            self._faulted.append(
                (outcome.run_key, outcome.dissipation, outcome.miss_count)
            )
        else:
            self._fault_free += 1
            self._baselines.setdefault(
                outcome.run_key, (outcome.dissipation, outcome.miss_count)
            )

    def summary(self) -> Dict[str, Any]:
        inflations: List[float] = []
        miss_deltas: List[int] = []
        for run_key, dissipation, misses in self._faulted:
            base = self._baselines.get(run_key)
            if base is None:
                continue
            inflations.append(dissipation - base[0])
            miss_deltas.append(misses - base[1])
        return {
            "cells": self._cells,
            "faulted": len(self._faulted),
            "fault_free": self._fault_free,
            "violating_cells": self._violating,
            "violations": {k: self._by_invariant[k] for k in sorted(self._by_invariant)},
            "truncated": self._truncated,
            "max_dissipation_inflation": max(inflations) if inflations else 0.0,
            "mean_dissipation_inflation": (
                sum(inflations) / len(inflations) if inflations else 0.0
            ),
            "max_miss_delta": max(miss_deltas) if miss_deltas else 0,
            "pool_breaks": 0,
            "pool_retried": 0,
            "pool_serial_fallback": 0,
        }
