"""Fault specifications and plans.

Every fault is a small frozen dataclass describing *one* environment
degradation over a time window; a :class:`FaultPlan` is an ordered
tuple of faults plus a seed for the plan's own randomness (spike/jitter
coin flips, skew draws).  Plans serialize to canonical JSON — sorted
keys, compact separators, ``allow_nan=False`` — exactly like
:mod:`repro.io.runspec_json`, so :meth:`FaultPlan.key` is a stable
sha256 identity and campaign cells cache like any other sweep cell.

Fault model (all windows are half-open ``[start, end)`` in actual
simulation time):

===================  =================================================
:class:`MonitorOutage`      monitor notifications dropped or queued
:class:`SpeedCommandDelay`  Algorithm-1 speed writes arrive late
:class:`SpeedCommandDrop`   Algorithm-1 speed writes never arrive
:class:`ClockSkew`          bounded non-negative jitter on clock reads
:class:`ExecutionSpike`     extra demand beyond the scenario's PWCETs
:class:`ReleaseJitter`      release timers fire late
:class:`CpuStall`           a processor contributes no supply
===================  =================================================

Randomness is derived per-decision from string-seeded
``random.Random`` instances (CPython seeds str via SHA-512), never from
the builtin ``hash`` — results are identical across processes and
therefore across serial and process-pool campaign backends.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Tuple, Union

__all__ = [
    "FAULT_PLAN_FORMAT",
    "FAULT_PLAN_VERSION",
    "MonitorOutage",
    "SpeedCommandDelay",
    "SpeedCommandDrop",
    "ClockSkew",
    "ExecutionSpike",
    "ReleaseJitter",
    "CpuStall",
    "FaultSpec",
    "FaultPlan",
    "fault_from_dict",
    "unit_rand",
    "random_plan",
]

FAULT_PLAN_FORMAT = "repro-faultplan"
FAULT_PLAN_VERSION = 1


def unit_rand(seed: int, *parts: Any) -> float:
    """A deterministic draw in ``[0, 1)`` keyed by *seed* and *parts*.

    String seeding keeps the draw identical across processes (the
    builtin ``hash`` is salted per interpreter and must not be used).
    """
    key = f"{seed}|" + "|".join(repr(p) for p in parts)
    return random.Random(key).random()


def _check_window(start: float, end: float) -> None:
    if not (start >= 0.0):
        raise ValueError(f"fault window start must be >= 0, got {start}")
    if not (end > start):
        raise ValueError(f"fault window must satisfy end > start, got [{start}, {end})")


@dataclass(frozen=True)
class MonitorOutage:
    """Monitor notifications are dropped or queued during the window.

    ``mode="drop"`` loses release/completion notifications outright (the
    monitor's pending estimate goes stale); ``mode="queue"`` buffers
    them and delivers the backlog, in order, at the window end.
    """

    start: float
    end: float
    mode: str = "drop"

    kind = "monitor_outage"

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if self.mode not in ("drop", "queue"):
            raise ValueError(f"MonitorOutage.mode must be 'drop' or 'queue', got {self.mode!r}")


@dataclass(frozen=True)
class SpeedCommandDelay:
    """Speed commands issued in the window take effect *delay* late."""

    start: float
    end: float
    delay: float

    kind = "speed_command_delay"

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if not (self.delay > 0.0):
            raise ValueError(f"SpeedCommandDelay.delay must be > 0, got {self.delay}")


@dataclass(frozen=True)
class SpeedCommandDrop:
    """Speed commands issued in the window never reach the clock."""

    start: float
    end: float

    kind = "speed_command_drop"

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class ClockSkew:
    """Virtual-to-actual clock reads in the window come back up to
    *magnitude* late.

    The jitter is non-negative (timers fire late, never early) so the
    SVO early-release guard stays satisfiable; monotonicity of virtual
    time is untouched because the actual→virtual direction is exact.
    """

    start: float
    end: float
    magnitude: float

    kind = "clock_skew"

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if not (self.magnitude > 0.0):
            raise ValueError(f"ClockSkew.magnitude must be > 0, got {self.magnitude}")


@dataclass(frozen=True)
class ExecutionSpike:
    """Jobs released in the window demand *factor*× their scenario
    execution time (extra demand beyond the PWCETs; budgets do not clip
    it).  ``prob`` spikes each job independently."""

    start: float
    end: float
    factor: float
    prob: float = 1.0
    level: str = "C"

    kind = "execution_spike"

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if not (self.factor > 1.0):
            raise ValueError(f"ExecutionSpike.factor must be > 1, got {self.factor}")
        if not (0.0 < self.prob <= 1.0):
            raise ValueError(f"ExecutionSpike.prob must be in (0, 1], got {self.prob}")
        if self.level not in ("A", "B", "C", "D"):
            raise ValueError(f"ExecutionSpike.level must be A/B/C/D, got {self.level!r}")


@dataclass(frozen=True)
class ReleaseJitter:
    """Jobs nominally released in the window are released up to
    *magnitude* late (drawn per job; ``prob`` gates each job).

    Windows are tested against the *nominal* release ``phase + i*T`` —
    for level-C tasks under a slowed clock the realized release drifts
    later, so treat the window as approximate for level C.  Level A is
    exempt (the kernel never delays table-driven releases).
    """

    start: float
    end: float
    magnitude: float
    prob: float = 1.0

    kind = "release_jitter"

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if not (self.magnitude > 0.0):
            raise ValueError(f"ReleaseJitter.magnitude must be > 0, got {self.magnitude}")
        if not (0.0 < self.prob <= 1.0):
            raise ValueError(f"ReleaseJitter.prob must be in (0, 1], got {self.prob}")


@dataclass(frozen=True)
class CpuStall:
    """Processor *cpu* contributes no supply during the window (modelled
    as a synthetic top-priority pinned job; see
    :data:`repro.faults.plane.FAULT_TASK_BASE_ID`)."""

    cpu: int
    start: float
    end: float

    kind = "cpu_stall"

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if self.cpu < 0:
            raise ValueError(f"CpuStall.cpu must be >= 0, got {self.cpu}")


FaultSpec = Union[
    MonitorOutage,
    SpeedCommandDelay,
    SpeedCommandDrop,
    ClockSkew,
    ExecutionSpike,
    ReleaseJitter,
    CpuStall,
]

_FAULT_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        MonitorOutage,
        SpeedCommandDelay,
        SpeedCommandDrop,
        ClockSkew,
        ExecutionSpike,
        ReleaseJitter,
        CpuStall,
    )
}


def fault_to_dict(fault: FaultSpec) -> Dict[str, Any]:
    """Serialize one fault as ``{"kind": ..., **fields}``."""
    doc: Dict[str, Any] = {"kind": fault.kind}
    for f in fields(fault):
        doc[f.name] = getattr(fault, f.name)
    return doc


def fault_from_dict(doc: Dict[str, Any]) -> FaultSpec:
    """Inverse of :func:`fault_to_dict` (validates on construction)."""
    doc = dict(doc)
    kind = doc.pop("kind", None)
    cls = _FAULT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault kind {kind!r} (known: {sorted(_FAULT_KINDS)})")
    return cls(**doc)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of faults plus the seed for their randomness."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def is_empty(self) -> bool:
        return not self.faults

    # -- canonical serialization -------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FAULT_PLAN_FORMAT,
            "version": FAULT_PLAN_VERSION,
            "seed": self.seed,
            "faults": [fault_to_dict(f) for f in self.faults],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FaultPlan":
        if doc.get("format") != FAULT_PLAN_FORMAT:
            raise ValueError(f"not a {FAULT_PLAN_FORMAT} document: {doc.get('format')!r}")
        if doc.get("version") != FAULT_PLAN_VERSION:
            raise ValueError(f"unsupported fault-plan version {doc.get('version')!r}")
        return cls(
            faults=tuple(fault_from_dict(f) for f in doc.get("faults", ())),
            seed=int(doc.get("seed", 0)),
        )

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    def key(self) -> str:
        """sha256 of the canonical JSON — the plan's cache identity."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # -- shrinker helpers --------------------------------------------
    def without(self, index: int) -> "FaultPlan":
        """A copy with fault *index* removed."""
        return FaultPlan(
            faults=self.faults[:index] + self.faults[index + 1 :], seed=self.seed
        )

    def replacing(self, index: int, fault: FaultSpec) -> "FaultPlan":
        """A copy with fault *index* substituted."""
        return FaultPlan(
            faults=self.faults[:index] + (fault,) + self.faults[index + 1 :],
            seed=self.seed,
        )


def random_plan(
    seed: int,
    m: int,
    anchor: float,
    horizon: float,
    max_faults: int = 3,
) -> FaultPlan:
    """A seeded random plan of 1..*max_faults* faults.

    Windows are placed around *anchor* (typically the scenario's last
    overload end, where recovery is in flight and faults bite) and kept
    inside ``[0, horizon)``.  The same seed always yields the same
    plan.
    """
    rng = random.Random(f"faultplan|{seed}")
    count = rng.randint(1, max(1, max_faults))
    faults = []
    for i in range(count):
        start = round(rng.uniform(0.0, max(anchor, 0.1)), 6)
        length = round(rng.uniform(0.05, max(0.1, anchor / 2)), 6)
        end = round(min(horizon, start + length), 6)
        if end <= start:
            end = round(start + 0.05, 6)
        pick = rng.randrange(7)
        if pick == 0:
            faults.append(MonitorOutage(start, end, mode=rng.choice(["drop", "queue"])))
        elif pick == 1:
            faults.append(SpeedCommandDelay(start, end, delay=round(rng.uniform(0.05, 0.5), 6)))
        elif pick == 2:
            faults.append(SpeedCommandDrop(start, end))
        elif pick == 3:
            faults.append(ClockSkew(start, end, magnitude=round(rng.uniform(0.001, 0.05), 6)))
        elif pick == 4:
            faults.append(
                ExecutionSpike(
                    start,
                    end,
                    factor=round(rng.uniform(1.5, 4.0), 6),
                    prob=round(rng.uniform(0.5, 1.0), 6),
                )
            )
        elif pick == 5:
            faults.append(
                ReleaseJitter(start, end, magnitude=round(rng.uniform(0.001, 0.02), 6))
            )
        else:
            faults.append(CpuStall(cpu=rng.randrange(m), start=start, end=end))
    return FaultPlan(faults=tuple(faults), seed=seed)


# Re-export for plan editing without importing dataclasses at call sites.
replace_fault = replace
