"""Failing-plan shrinker: reduce a violating fault plan to a minimal repro.

Given a campaign cell whose run violates an invariant, the shrinker
searches for a smaller plan that still violates one of the *same*
invariants — classic delta debugging specialized to the fault model:

1. **fault removal** to a fixed point — drop every fault whose absence
   keeps the failure (one-at-a-time passes until none can go);
2. **window halving** — shrink each surviving fault's ``[start, end)``
   window by binary search (keep-left, then keep-right) down to a
   minimum length;
3. **magnitude halving** — walk each fault's scalar severity (spike
   factor, skew/jitter magnitude, command delay) toward its validity
   floor while the failure persists.

Every candidate is judged by actually re-running the cell
(:func:`repro.faults.campaign.run_cell` — deterministic, so the search
never flip-flops).  The result round-trips through a small JSON
artifact (``repro-faultrepro``) that :func:`replay_repro` re-executes,
so a shrunk failure is reproducible from the file alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.faults.campaign import CampaignCell, CellOutcome, run_cell
from repro.faults.spec import (
    ClockSkew,
    ExecutionSpike,
    FaultPlan,
    FaultSpec,
    ReleaseJitter,
    SpeedCommandDelay,
)

__all__ = [
    "REPRO_FORMAT",
    "ShrinkResult",
    "shrink_plan",
    "write_repro",
    "replay_repro",
]

REPRO_FORMAT = "repro-faultrepro"
REPRO_VERSION = 1

#: Window halving stops once a fault window is this short (seconds).
_MIN_WINDOW = 0.01
#: Bisection passes per fault window (2^-6 of the original length).
_MAX_HALVINGS = 6


@dataclass(frozen=True)
class ShrinkResult:
    """The shrinker's verdict: the minimal failing cell plus its trail."""

    #: The original (unshrunk) cell.
    original: CampaignCell
    #: The shrunk cell: same run spec, minimal failing plan.
    cell: CampaignCell
    #: Outcome of the shrunk cell (still violating).
    outcome: CellOutcome
    #: Invariants the shrink preserved (subset of the original's).
    invariants: Tuple[str, ...]
    #: Total cell executions spent searching.
    evaluations: int
    #: Human-readable log of every accepted reduction.
    steps: Tuple[str, ...]

    @property
    def plan(self) -> FaultPlan:
        return self.cell.plan


def _violated(outcome: CellOutcome) -> Set[str]:
    return set(outcome.violation_counts())


def _halved_severity(fault: FaultSpec) -> Optional[FaultSpec]:
    """*fault* at half severity, or ``None`` once at the validity floor."""
    if isinstance(fault, ExecutionSpike):
        factor = 1.0 + (fault.factor - 1.0) / 2.0
        return replace(fault, factor=factor) if factor > 1.05 else None
    if isinstance(fault, (ClockSkew, ReleaseJitter)):
        mag = fault.magnitude / 2.0
        return replace(fault, magnitude=mag) if mag > 1e-4 else None
    if isinstance(fault, SpeedCommandDelay):
        delay = fault.delay / 2.0
        return replace(fault, delay=delay) if delay > 1e-3 else None
    return None  # outages, drops and stalls have no scalar severity


def shrink_plan(cell: CampaignCell) -> ShrinkResult:
    """Shrink *cell*'s plan while it keeps violating the same invariants.

    Raises :class:`ValueError` if the original cell does not violate
    anything — there is nothing to shrink toward.
    """
    evaluations = 0
    steps: List[str] = []

    def execute(plan: FaultPlan) -> CellOutcome:
        nonlocal evaluations
        evaluations += 1
        return run_cell(CampaignCell(run=cell.run, plan=plan))

    original_outcome = execute(cell.plan)
    target = _violated(original_outcome)
    if not target:
        raise ValueError(
            f"cell {cell.key()[:12]} violates no invariant; nothing to shrink"
        )

    best_outcome = original_outcome

    def fails(plan: FaultPlan) -> Optional[CellOutcome]:
        """The plan's outcome if it reproduces a targeted violation."""
        out = execute(plan)
        return out if (_violated(out) & target) else None

    plan = cell.plan

    # Pass 1: remove faults to a fixed point.
    changed = True
    while changed and len(plan.faults) > 1:
        changed = False
        i = 0
        while i < len(plan.faults) and len(plan.faults) > 1:
            candidate = plan.without(i)
            out = fails(candidate)
            if out is not None:
                steps.append(f"remove fault[{i}] {plan.faults[i].kind}")
                plan, best_outcome, changed = candidate, out, True
            else:
                i += 1

    # Pass 2: halve each fault's window (keep-left, then keep-right).
    for i in range(len(plan.faults)):
        for _ in range(_MAX_HALVINGS):
            f = plan.faults[i]
            if f.end - f.start <= _MIN_WINDOW:
                break
            mid = (f.start + f.end) / 2.0
            narrowed = None
            for lo, hi, side in ((f.start, mid, "left"), (mid, f.end, "right")):
                candidate = plan.replacing(i, replace(f, start=lo, end=hi))
                out = fails(candidate)
                if out is not None:
                    steps.append(
                        f"narrow fault[{i}] {f.kind} window to [{lo:.6f}, {hi:.6f}) ({side})"
                    )
                    plan, best_outcome, narrowed = candidate, out, side
                    break
            if narrowed is None:
                break

    # Pass 3: halve scalar severities toward their floors.
    for i in range(len(plan.faults)):
        while True:
            weaker = _halved_severity(plan.faults[i])
            if weaker is None:
                break
            candidate = plan.replacing(i, weaker)
            out = fails(candidate)
            if out is None:
                break
            steps.append(f"weaken fault[{i}] {weaker.kind} to {weaker}")
            plan, best_outcome = candidate, out

    shrunk = CampaignCell(run=cell.run, plan=plan)
    return ShrinkResult(
        original=cell,
        cell=shrunk,
        outcome=best_outcome,
        invariants=tuple(sorted(_violated(best_outcome) & target)),
        evaluations=evaluations,
        steps=tuple(steps),
    )


# ----------------------------------------------------------------------
# Replayable repro artifact
# ----------------------------------------------------------------------
def repro_to_dict(result: ShrinkResult) -> Dict[str, Any]:
    """The JSON document :func:`write_repro` persists."""
    return {
        "format": REPRO_FORMAT,
        "version": REPRO_VERSION,
        "cell": result.cell.to_dict(),
        "invariants": list(result.invariants),
        "violations": [v.to_dict() for v in result.outcome.violations],
        "fingerprint": result.outcome.fingerprint,
        "evaluations": result.evaluations,
        "steps": list(result.steps),
        "original_plan": result.original.plan.to_dict(),
    }


def write_repro(result: ShrinkResult, path: str) -> None:
    """Persist *result* as a standalone replayable artifact."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(repro_to_dict(result), fh, sort_keys=True, indent=2)
        fh.write("\n")


def replay_repro(path: str) -> Tuple[CellOutcome, bool]:
    """Re-execute a repro artifact.

    Returns the fresh outcome plus whether it *reproduced*: violated at
    least one of the invariants the artifact claims.  (The fingerprint
    is also expected to match — simulation is deterministic — but the
    reproduction verdict deliberately keys on the invariant set, so a
    repro stays meaningful across refactors that legitimately change
    low-level trace details.)
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != REPRO_FORMAT:
        raise ValueError(f"not a {REPRO_FORMAT} document: {doc.get('format')!r}")
    if doc.get("version") != REPRO_VERSION:
        raise ValueError(f"unsupported repro version {doc.get('version')!r}")
    cell = CampaignCell.from_dict(doc["cell"])
    outcome = run_cell(cell)
    claimed = set(doc.get("invariants", ()))
    reproduced = bool(_violated(outcome) & claimed)
    return outcome, reproduced
