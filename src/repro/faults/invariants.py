"""Safety invariants: trace oracles for the paper's guarantees.

Each check recomputes one claim of the paper offline, from the finished
run artifacts (:class:`~repro.experiments.runner.ExperimentOutput`), by
direct application of the definitions — the same style as
:mod:`repro.analysis.trace_check`, which the recovery-exit oracle
reuses.  A fault-free run must satisfy all of them (the campaign
acceptance gate); under injected faults, violations localize *which*
guarantee broke.

Invariant catalog (names are stable identifiers used in scorecards):

``ab_isolation``
    Criticality isolation: every level-A/B job meets its implicit
    deadline ``r + T`` regardless of level-C faults (MC² architecture,
    Fig. 1 — higher levels are insulated from level-C overload).
    Synthetic CpuStall hog jobs (``task_id >=``
    :data:`~repro.faults.plane.FAULT_TASK_BASE_ID`) are excluded: a
    stalled CPU *should* delay its partition, and the delayed real jobs
    are exactly what this oracle must flag.
``speed_bounds``
    The applied speed sequence is causally ordered and every speed lies
    in ``(0, 1]`` (paper Sec. 3: virtual time never runs faster than
    actual time); with a known monitor floor ``s_min``, speeds never go
    below it.
``recovery_closure``
    Dissipation terminates: every opened recovery episode closes before
    the simulation ends, and a run that leaves recovery leaves the
    clock at speed 1 (a stuck-slow clock means the restore command was
    lost).
``gel_order``
    GEL-v priority-order consistency: whenever an eligible level-C head
    waits while a lower-priority (larger ``(v(y), tid, idx)``) level-C
    job runs, the dispatcher violated the GEL-v selection rule.
    Requires interval recording; skipped (and not listed as checked)
    otherwise.
``recovery_exit``
    Theorem 1 ground truth: every closed episode contains an idle
    normal instant (Def. 2), recomputed from the trace via
    :func:`repro.analysis.trace_check.verify_monitor_decisions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.trace_check import verify_monitor_decisions
from repro.experiments.runner import ExperimentOutput
from repro.faults.plane import FAULT_TASK_BASE_ID
from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet
from repro.sim.trace import Trace

__all__ = [
    "INVARIANT_NAMES",
    "Violation",
    "InvariantReport",
    "evaluate_invariants",
]

INVARIANT_NAMES = (
    "ab_isolation",
    "speed_bounds",
    "recovery_closure",
    "gel_order",
    "recovery_exit",
)

#: Absolute slack for float comparisons against deadlines/bounds.
_EPS = 1e-9

#: Cap on recorded violations per invariant (a single bad plan can fail
#: thousands of jobs; scorecards stay bounded, the last entry counts the
#: remainder).
_MAX_PER_INVARIANT = 25


@dataclass(frozen=True)
class Violation:
    """One invariant violation, anchored at a simulation time."""

    invariant: str
    t: float
    message: str
    task: Optional[int] = None
    job: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "invariant": self.invariant,
            "t": self.t,
            "message": self.message,
        }
        if self.task is not None:
            doc["task"] = self.task
        if self.job is not None:
            doc["job"] = self.job
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Violation":
        return cls(
            invariant=doc["invariant"],
            t=float(doc["t"]),
            message=doc["message"],
            task=doc.get("task"),
            job=doc.get("job"),
        )


@dataclass(frozen=True)
class InvariantReport:
    """All violations found in one run, plus what was actually checked."""

    checked: Tuple[str, ...]
    violations: Tuple[Violation, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> Dict[str, int]:
        """Violations per invariant (only invariants that fired)."""
        out: Dict[str, int] = {}
        for v in self.violations:
            out[v.invariant] = out.get(v.invariant, 0) + 1
        return out


class _Collector:
    """Per-invariant capped violation sink."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self._per: Dict[str, int] = {}

    def add(self, v: Violation) -> None:
        n = self._per.get(v.invariant, 0) + 1
        self._per[v.invariant] = n
        if n < _MAX_PER_INVARIANT:
            self.violations.append(v)
        elif n == _MAX_PER_INVARIANT:
            self.violations.append(
                Violation(
                    invariant=v.invariant,
                    t=v.t,
                    message="further violations suppressed (cap reached)",
                )
            )


def evaluate_invariants(
    output: ExperimentOutput,
    ts: TaskSet,
    s_min: Optional[float] = None,
) -> InvariantReport:
    """Run every applicable invariant oracle over one finished run.

    ``s_min`` is the monitor's known speed floor (e.g. SIMPLE's fixed
    ``s``); ``None`` skips the floor clause of ``speed_bounds``.
    """
    sink = _Collector()
    checked: List[str] = []

    checked.append("ab_isolation")
    _check_ab_isolation(output.trace, ts, output.result.sim_end, sink)

    checked.append("speed_bounds")
    _check_speed_bounds(output.trace, s_min, sink)

    checked.append("recovery_closure")
    _check_recovery_closure(output, sink)

    if output.trace.record_intervals:
        checked.append("gel_order")
        _check_gel_order(output.trace, sink)

    checked.append("recovery_exit")
    verdict = verify_monitor_decisions(output.monitor, output.trace, ts)
    for end, reason in verdict.violations:
        sink.add(Violation(invariant="recovery_exit", t=end, message=reason))

    return InvariantReport(checked=tuple(checked), violations=tuple(sink.violations))


# ----------------------------------------------------------------------
# ab_isolation
# ----------------------------------------------------------------------
def _check_ab_isolation(
    trace: Trace, ts: TaskSet, sim_end: float, sink: _Collector
) -> None:
    for rec in trace.jobs:
        if rec.level is not CriticalityLevel.A and rec.level is not CriticalityLevel.B:
            continue
        if rec.task_id >= FAULT_TASK_BASE_ID:
            continue  # synthetic stall hogs have no deadline contract
        deadline = rec.release + ts[rec.task_id].period
        if rec.completion is None:
            # Incomplete at trace end: only a miss if the deadline passed.
            if deadline < sim_end - _EPS:
                sink.add(
                    Violation(
                        invariant="ab_isolation",
                        t=deadline,
                        message=(
                            f"level-{rec.level.name} job never completed; "
                            f"deadline {deadline:.6f} < sim end {sim_end:.6f}"
                        ),
                        task=rec.task_id,
                        job=rec.index,
                    )
                )
        elif rec.completion > deadline + _EPS:
            sink.add(
                Violation(
                    invariant="ab_isolation",
                    t=rec.completion,
                    message=(
                        f"level-{rec.level.name} deadline miss: completed "
                        f"{rec.completion - deadline:.6f} after r+T={deadline:.6f}"
                    ),
                    task=rec.task_id,
                    job=rec.index,
                )
            )


# ----------------------------------------------------------------------
# speed_bounds
# ----------------------------------------------------------------------
def _check_speed_bounds(
    trace: Trace, s_min: Optional[float], sink: _Collector
) -> None:
    prev_t: Optional[float] = None
    for t, s in trace.speed_changes:
        if prev_t is not None and t < prev_t - _EPS:
            sink.add(
                Violation(
                    invariant="speed_bounds",
                    t=t,
                    message=f"speed change at {t:.6f} precedes previous at {prev_t:.6f}",
                )
            )
        prev_t = t
        if not (0.0 < s <= 1.0 + _EPS):
            sink.add(
                Violation(
                    invariant="speed_bounds",
                    t=t,
                    message=f"applied speed {s} outside (0, 1]",
                )
            )
        elif s_min is not None and s < s_min - _EPS:
            sink.add(
                Violation(
                    invariant="speed_bounds",
                    t=t,
                    message=f"applied speed {s} below the monitor floor {s_min}",
                )
            )


# ----------------------------------------------------------------------
# recovery_closure
# ----------------------------------------------------------------------
def _check_recovery_closure(output: ExperimentOutput, sink: _Collector) -> None:
    monitor = output.monitor
    sim_end = output.result.sim_end
    for ep in monitor.episodes:
        if ep.end is None:
            sink.add(
                Violation(
                    invariant="recovery_closure",
                    t=ep.start,
                    message=(
                        f"recovery episode opened at {ep.start:.6f} "
                        f"(trigger {ep.trigger}) never closed by sim end {sim_end:.6f}"
                    ),
                    task=ep.trigger[0],
                    job=ep.trigger[1],
                )
            )
    # Out of recovery ⇒ the clock must be back at speed 1 (a stuck-slow
    # clock means a restore command was lost on the way to the kernel).
    clock = output.kernel.clock
    if not monitor.recovery_mode and not clock.is_normal_speed:
        sink.add(
            Violation(
                invariant="recovery_closure",
                t=sim_end,
                message=(
                    f"monitor is out of recovery but the clock runs at "
                    f"speed {clock.speed} at sim end"
                ),
            )
        )


# ----------------------------------------------------------------------
# gel_order
# ----------------------------------------------------------------------
def _check_gel_order(trace: Trace, sink: _Collector) -> None:
    """Sweep-line over the level-C schedule: in every open inter-event
    interval, no eligible waiting head may outrank a running level-C job
    under the GEL-v key ``(virtual_pp, task_id, index)``.

    Placement is migration-averse but selection is global top-k, so the
    invariant is independent of how many CPUs level C currently holds.
    """
    Key = Tuple[float, int, int]
    key_of: Dict[Tuple[int, int], Key] = {}
    # Grouped events: time -> list of (action, payload).
    events: Dict[float, List[Tuple[str, Any]]] = {}

    def at(t: float) -> List[Tuple[str, Any]]:
        lst = events.get(t)
        if lst is None:
            lst = events[t] = []
        return lst

    for rec in trace.jobs:
        if rec.level is not CriticalityLevel.C or rec.virtual_pp is None:
            continue
        jid = (rec.task_id, rec.index)
        key_of[jid] = (rec.virtual_pp, rec.task_id, rec.index)
        at(rec.release).append(("add", jid))
        if rec.completion is not None:
            at(rec.completion).append(("del", jid))
    for iv in trace.intervals:
        jid = (iv.task_id, iv.job_index)
        if jid not in key_of:
            continue  # non-C interval
        at(iv.start).append(("run", jid))
        at(iv.end).append(("stop", jid))

    pending: Dict[int, Dict[int, Key]] = {}  # task_id -> {index: key}
    running: Dict[Tuple[int, int], int] = {}  # jid -> active interval count
    times = sorted(events)
    for pos, t in enumerate(times):
        for action, jid in events[t]:
            tid, idx = jid
            if action == "add":
                pending.setdefault(tid, {})[idx] = key_of[jid]
            elif action == "del":
                task_pend = pending.get(tid)
                if task_pend is not None:
                    task_pend.pop(idx, None)
                    if not task_pend:
                        del pending[tid]
            elif action == "run":
                running[jid] = running.get(jid, 0) + 1
            else:  # stop
                n = running.get(jid, 0) - 1
                if n <= 0:
                    running.pop(jid, None)
                else:
                    running[jid] = n
        if pos + 1 >= len(times):
            break
        nxt = times[pos + 1]
        if nxt - t <= 1e-12 or not running:
            continue
        # State now describes the open interval (t, nxt).
        max_run: Optional[Key] = None
        run_jid: Optional[Tuple[int, int]] = None
        for jid in running:
            k = key_of[jid]
            if max_run is None or k > max_run:
                max_run, run_jid = k, jid
        min_wait: Optional[Key] = None
        wait_jid: Optional[Tuple[int, int]] = None
        for tid, task_pend in pending.items():
            head_idx = min(task_pend)
            if (tid, head_idx) in running:
                continue
            k = task_pend[head_idx]
            if min_wait is None or k < min_wait:
                min_wait, wait_jid = k, (tid, head_idx)
        if min_wait is not None and max_run is not None and min_wait < max_run:
            mid = (t + nxt) / 2.0
            assert wait_jid is not None and run_jid is not None
            sink.add(
                Violation(
                    invariant="gel_order",
                    t=mid,
                    message=(
                        f"eligible head {wait_jid} (key {min_wait}) waits over "
                        f"({t:.6f}, {nxt:.6f}) while lower-priority {run_jid} "
                        f"(key {max_run}) runs"
                    ),
                    task=wait_jid[0],
                    job=wait_jid[1],
                )
            )
