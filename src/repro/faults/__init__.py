"""Fault injection and resilience verification for the MC² simulator.

The paper's recovery protocol (virtual time, SVO, the monitor of
Algorithms 2-4) is designed for a *well-behaved* platform: monitor
reports arrive, speed commands take effect immediately, the clock is
read exactly, processors supply their full capacity.  This package asks
what happens when those assumptions degrade:

* :mod:`repro.faults.spec` — frozen, canonically-serializable fault
  descriptions (:class:`~repro.faults.spec.FaultPlan`), hashable like a
  :class:`~repro.runtime.spec.RunSpec` so campaigns cache like sweeps;
* :mod:`repro.faults.plane` — the injector.  A
  :class:`~repro.faults.plane.FaultPlane` attaches to the existing
  seams (monitor delivery, the speed-command path, clock reads,
  processor supply) via composable interceptors; the kernel itself has
  no fault branches, and a run without a plane is untouched;
* :mod:`repro.faults.invariants` — trace oracles for the paper's safety
  claims (criticality isolation, speed bounds, dissipation termination,
  GEL-v order, justified recovery exits);
* :mod:`repro.faults.campaign` — seeded (scenario × plan) campaigns on
  the sweep executor, scored into a resilience scorecard;
* :mod:`repro.faults.shrink` — delta-debugging reduction of a violating
  plan to a minimal replayable repro.

CLI: ``repro-mc2 faults run|report|shrink|replay``.
"""

from repro.faults.spec import (
    ClockSkew,
    CpuStall,
    ExecutionSpike,
    FaultPlan,
    MonitorOutage,
    ReleaseJitter,
    SpeedCommandDelay,
    SpeedCommandDrop,
    fault_from_dict,
    random_plan,
)
from repro.faults.plane import FAULT_TASK_BASE_ID, FaultPlane
from repro.faults.invariants import (
    INVARIANT_NAMES,
    InvariantReport,
    Violation,
    evaluate_invariants,
)
from repro.faults.campaign import (
    CampaignCell,
    CampaignConfig,
    CellOutcome,
    Scorecard,
    build_campaign,
    run_campaign,
    run_cell,
)
from repro.faults.shrink import ShrinkResult, replay_repro, shrink_plan, write_repro

__all__ = [
    "ClockSkew",
    "CpuStall",
    "ExecutionSpike",
    "FaultPlan",
    "MonitorOutage",
    "ReleaseJitter",
    "SpeedCommandDelay",
    "SpeedCommandDrop",
    "fault_from_dict",
    "random_plan",
    "FAULT_TASK_BASE_ID",
    "FaultPlane",
    "INVARIANT_NAMES",
    "InvariantReport",
    "Violation",
    "evaluate_invariants",
    "CampaignCell",
    "CampaignConfig",
    "CellOutcome",
    "Scorecard",
    "build_campaign",
    "run_campaign",
    "run_cell",
    "ShrinkResult",
    "replay_repro",
    "shrink_plan",
    "write_repro",
]
