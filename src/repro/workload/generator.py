"""The Sec. 5 task-set generator (avionics-like workloads).

Methodology reproduced from the paper:

* quad-core platform (``m = 4``; configurable);
* levels A and B each occupy 5 % of the system's processor capacity and
  level C occupies 65 %, *assuming all jobs execute for their level-C
  PWCETs*;
* each task's level-B PWCET is 10x and its level-A PWCET 20x its level-C
  PWCET;
* levels A and B are generated one CPU at a time, filling 5 % of each
  CPU's capacity per level (at level-C PWCETs);
* level-A periods from {25, 50, 100} ms; level-B periods random multiples
  of the CPU's largest level-A period, capped at 300 ms; level-C periods
  multiples of 5 ms in [10, 100] ms;
* per-task utilizations at the task's own criticality level from
  "uniform medium" ``U(0.1, 0.4)``; level-C utilization is that value
  scaled by 1/20 for level-A tasks and 1/10 for level-B tasks;
* a task that does not fit its level's remaining capacity has its
  utilization scaled down to fit;
* level-C PWCET = level-C utilization x period;
* level-C relative PPs assigned by G-FL;
* response-time tolerances from the analytical bounds
  (:func:`repro.core.tolerance.assign_tolerances`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.gel import gfl_relative_pp
from repro.core.tolerance import assign_tolerances
from repro.model.task import CriticalityLevel, Task
from repro.model.taskset import TaskSet
from repro.util.timeunits import MS
from repro.workload.distributions import (
    LEVEL_A_PERIODS_MS,
    level_b_period_choices_ms,
    level_c_period_choices_ms,
    uniform_utilization,
)

__all__ = ["GeneratorParams", "generate_taskset", "generate_tasksets", "taskset_seeds"]

#: Ignore a residual capacity below this when filling a budget; a task
#: scaled to a sliver of utilization contributes nothing but numerical
#: noise (and a near-zero PWCET breaks the Task > 0 constraint).
_MIN_FILL = 1e-4


@dataclass(frozen=True)
class GeneratorParams:
    """Knobs of the Sec. 5 generator (defaults are the paper's values)."""

    m: int = 4
    #: Per-CPU level-A capacity share at level-C PWCETs.
    level_a_share: float = 0.05
    #: Per-CPU level-B capacity share at level-C PWCETs.
    level_b_share: float = 0.05
    #: System-wide level-C capacity share.
    level_c_share: float = 0.65
    #: level-B PWCET = ratio_b x level-C PWCET.
    ratio_b: float = 10.0
    #: level-A PWCET = ratio_a x level-C PWCET.
    ratio_a: float = 20.0
    #: Tolerance margin over the analytical bound (1.0 = the bound itself).
    tolerance_margin: float = 1.0
    #: Assign tolerances from the analytical bounds (Sec. 5 does).
    assign_tolerances: bool = True
    #: Per-task utilization distribution ``U(lo, hi)`` at the task's own
    #: criticality level; the paper's "uniform medium" is (0.1, 0.4).
    #: See workload.distributions.UNIFORM_RANGES for light/heavy.
    util_range: tuple = (0.1, 0.4)
    #: Hard cap on a single level-C task's level-C utilization (heavy
    #: distributions can otherwise exceed the per-CPU availability left
    #: by A/B — the Fig. 3 infeasibility).  None disables the cap.
    level_c_util_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError(f"m must be >= 1, got {self.m}")
        for name in ("level_a_share", "level_b_share", "level_c_share"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.ratio_b < 1.0 or self.ratio_a < self.ratio_b:
            raise ValueError(
                f"need 1 <= ratio_b <= ratio_a, got ratio_b={self.ratio_b}, "
                f"ratio_a={self.ratio_a}"
            )
        lo, hi = self.util_range
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError(f"util_range must satisfy 0 < lo <= hi <= 1, got {self.util_range}")
        if self.level_c_util_cap is not None and not 0.0 < self.level_c_util_cap <= 1.0:
            raise ValueError(f"level_c_util_cap must be in (0, 1], got {self.level_c_util_cap}")


def _pwcets_for(level: CriticalityLevel, c_pwcet: float, p: GeneratorParams) -> dict:
    """Per-analysis-level PWCETs from the level-C PWCET and the paper's ratios."""
    if level is CriticalityLevel.A:
        return {
            CriticalityLevel.A: p.ratio_a * c_pwcet,
            CriticalityLevel.B: p.ratio_b * c_pwcet,
            CriticalityLevel.C: c_pwcet,
        }
    if level is CriticalityLevel.B:
        return {
            CriticalityLevel.B: p.ratio_b * c_pwcet,
            CriticalityLevel.C: c_pwcet,
        }
    # Level-C tasks also carry a level-B PWCET (10x): Sec. 5's overload
    # scenarios make "all jobs at levels A, B, and C execute for their
    # level-B PWCETs".  Level-l analysis ignores it (only tasks of
    # criticality at or above l are considered at level l).
    return {
        CriticalityLevel.B: p.ratio_b * c_pwcet,
        CriticalityLevel.C: c_pwcet,
    }


def generate_taskset(
    seed: int, params: Optional[GeneratorParams] = None
) -> TaskSet:
    """Generate one task set with the Sec. 5 methodology.

    Parameters
    ----------
    seed:
        RNG seed; each of the paper's "20 generated task sets" is one
        seed.
    params:
        Generator knobs (defaults reproduce the paper).

    Returns
    -------
    TaskSet
        A validated, level-C-schedulable task set with G-FL PPs and (by
        default) analytical response-time tolerances.
    """
    p = params if params is not None else GeneratorParams()
    rng = np.random.default_rng(seed)
    tasks: List[Task] = []
    next_id = 0

    # ------------------------------------------------------------------
    # Levels A and B, one CPU at a time.
    # ------------------------------------------------------------------
    for cpu in range(p.m):
        # Level A: fill level_a_share of this CPU (at level-C PWCETs).
        budget = p.level_a_share
        largest_a_ms = 0
        while budget > _MIN_FILL:
            period_ms = int(rng.choice(LEVEL_A_PERIODS_MS))
            u_own = uniform_utilization(rng, *p.util_range)  # utilization at level A
            u_c = u_own / p.ratio_a
            u_c = min(u_c, budget)  # scale down to fit
            budget -= u_c
            period = period_ms * MS
            c_pwcet = u_c * period
            tasks.append(
                Task(
                    task_id=next_id,
                    level=CriticalityLevel.A,
                    period=period,
                    pwcets=_pwcets_for(CriticalityLevel.A, c_pwcet, p),
                    cpu=cpu,
                    name=f"A{next_id}",
                )
            )
            next_id += 1
            largest_a_ms = max(largest_a_ms, period_ms)

        # Level B: random multiples of the largest level-A period here.
        if largest_a_ms == 0:
            largest_a_ms = max(LEVEL_A_PERIODS_MS)
        choices = level_b_period_choices_ms(largest_a_ms)
        budget = p.level_b_share
        while budget > _MIN_FILL:
            period_ms = int(rng.choice(choices))
            u_own = uniform_utilization(rng, *p.util_range)  # utilization at level B
            u_c = u_own / p.ratio_b
            u_c = min(u_c, budget)
            budget -= u_c
            period = period_ms * MS
            c_pwcet = u_c * period
            tasks.append(
                Task(
                    task_id=next_id,
                    level=CriticalityLevel.B,
                    period=period,
                    pwcets=_pwcets_for(CriticalityLevel.B, c_pwcet, p),
                    cpu=cpu,
                    name=f"B{next_id}",
                )
            )
            next_id += 1

    # ------------------------------------------------------------------
    # Level C: global budget of level_c_share * m.
    # ------------------------------------------------------------------
    c_choices = level_c_period_choices_ms()
    budget = p.level_c_share * p.m
    while budget > _MIN_FILL:
        period_ms = int(rng.choice(c_choices))
        u_c = uniform_utilization(rng, *p.util_range)
        if p.level_c_util_cap is not None:
            u_c = min(u_c, p.level_c_util_cap)
        u_c = min(u_c, budget)
        budget -= u_c
        period = period_ms * MS
        c_pwcet = u_c * period
        tasks.append(
            Task(
                task_id=next_id,
                level=CriticalityLevel.C,
                period=period,
                pwcets=_pwcets_for(CriticalityLevel.C, c_pwcet, p),
                relative_pp=gfl_relative_pp(period, c_pwcet, p.m),
                name=f"C{next_id}",
            )
        )
        next_id += 1

    ts = TaskSet(tasks, m=p.m)
    ts.validate_partitioning()
    if p.assign_tolerances:
        ts = assign_tolerances(ts, margin=p.tolerance_margin)
    return ts


def taskset_seeds(count: int, base_seed: int = 2015) -> List[int]:
    """The explicit per-set seed schedule: *count* consecutive seeds.

    This is the single definition of "task set i's seed" — both
    :func:`generate_tasksets` and the sweep layer's
    :class:`~repro.runtime.spec.TaskSetSpec` grids derive from it, so a
    cached :class:`~repro.runtime.spec.RunSpec` names exactly the seed
    that regenerates its task set bit-for-bit.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [base_seed + i for i in range(count)]


def generate_tasksets(
    count: int, base_seed: int = 2015, params: Optional[GeneratorParams] = None
) -> List[TaskSet]:
    """Generate *count* task sets with consecutive seeds (paper: 20)."""
    return [generate_taskset(seed, params) for seed in taskset_seeds(count, base_seed)]
