"""Parameter distributions used by the Sec. 5 generator.

* **uniform medium** utilizations: ``U(0.1, 0.4)`` at the task's own
  criticality level (Brandenburg's classification, used in the paper via
  [5, 11]).
* **level-A periods**: drawn from {25 ms, 50 ms, 100 ms}.
* **level-B periods**: random multiples of the largest level-A period on
  the same CPU, capped at 300 ms.
* **level-C periods**: multiples of 5 ms between 10 ms and 100 ms,
  inclusive.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "uniform_medium",
    "LEVEL_A_PERIODS_MS",
    "level_b_period_choices_ms",
    "level_c_period_choices_ms",
]

#: The paper's level-A period grid (milliseconds).
LEVEL_A_PERIODS_MS: Sequence[int] = (25, 50, 100)

#: Bounds of the "uniform medium" utilization distribution.
UNIFORM_MEDIUM_LO = 0.1
UNIFORM_MEDIUM_HI = 0.4

#: Brandenburg's uniform utilization families [5]: the paper uses
#: "medium"; light/heavy are provided for sensitivity studies
#: (``benchmarks/bench_extension_distributions.py``).
UNIFORM_RANGES = {
    "light": (0.001, 0.1),
    "medium": (UNIFORM_MEDIUM_LO, UNIFORM_MEDIUM_HI),
    "heavy": (0.5, 0.9),
}


def uniform_medium(rng: np.random.Generator) -> float:
    """Draw a per-task utilization from ``U(0.1, 0.4)``."""
    return float(rng.uniform(UNIFORM_MEDIUM_LO, UNIFORM_MEDIUM_HI))


def uniform_utilization(
    rng: np.random.Generator, lo: float = UNIFORM_MEDIUM_LO,
    hi: float = UNIFORM_MEDIUM_HI,
) -> float:
    """Draw a per-task utilization from ``U(lo, hi)``."""
    if not 0.0 < lo <= hi <= 1.0:
        raise ValueError(f"need 0 < lo <= hi <= 1, got ({lo}, {hi})")
    return float(rng.uniform(lo, hi))


def level_b_period_choices_ms(largest_a_period_ms: int, cap_ms: int = 300) -> List[int]:
    """Legal level-B periods: multiples of the CPU's largest level-A period.

    "For level-B tasks, we selected random multiples of the largest
    level-A period on the same CPU, capped at 300 ms."
    """
    if largest_a_period_ms <= 0:
        raise ValueError(f"largest_a_period_ms must be > 0, got {largest_a_period_ms}")
    return [k * largest_a_period_ms for k in range(1, cap_ms // largest_a_period_ms + 1)]


def level_c_period_choices_ms(
    lo_ms: int = 10, hi_ms: int = 100, step_ms: int = 5
) -> List[int]:
    """Legal level-C periods: multiples of *step_ms* in ``[lo_ms, hi_ms]``."""
    return list(range(lo_ms, hi_ms + 1, step_ms))
