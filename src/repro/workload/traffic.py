"""Open-system traffic workloads: request-driven overload (ROADMAP).

The paper's Sec. 5 grid is *closed*: overload is scripted by inflating
PWCETs inside fixed windows (:mod:`repro.workload.scenarios`).  This
module adds the open-system counterpart — aperiodic request arrivals
drawn from seeded stochastic sources and served by level-C/D **server
tasks** — so overload emerges from traffic bursts, and dissipation time
and minimum s(t) become functions of *offered load* and *burst size*.

The vocabulary (all frozen, hashable, canonically serializable):

* **Arrival sources** expand deterministically into an arrival sequence
  (the seed lives in the spec, so the same spec always produces the
  byte-identical sequence — see :func:`arrivals_ndjson`):

  - :class:`PoissonSource` — homogeneous Poisson arrivals;
  - :class:`MMPPSource` — Markov-modulated Poisson process with a
    seeded cyclic modulating chain (the classic bursty-traffic model);
  - :class:`DiurnalCurveSource` — inhomogeneous Poisson arrivals under
    a raised-cosine day/night rate curve, via thinning;
  - :class:`TraceReplaySource` — replay of a recorded NDJSON arrival
    file, embedded by value.

* A :class:`ServerSpec` maps a flow onto aperiodic servers: periodic
  level-C (or background level-D) tasks with a per-period execution
  *budget*, polling (serve what has arrived by the release) or
  deferrable-style (serve what arrives up to one period ahead — an
  approximation documented on :class:`_ServerQueue`).

* A :class:`TrafficSpec` bundles ``(source, server)`` flows, builds the
  server :class:`~repro.model.task.Task` objects
  (:meth:`TrafficSpec.augment`), and wraps any
  :class:`~repro.model.behavior.ExecutionBehavior` so server jobs'
  execution times are the granted backlog
  (:meth:`TrafficSpec.build_behavior`).

Backend invariance: both kernel backends sample
``behavior.exec_time(task, job_index, release)`` exactly once per job
release, in the (gated, byte-identical) event order, so routing traffic
through the behaviour layer — rather than new event kinds — keeps the
reference and soa cores trace-equivalent by construction.  Per-server
grant state depends only on that server task's own release sequence
(each task's releases are processed in index order), never on
cross-task interleaving.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.behavior import ExecutionBehavior
from repro.model.task import CriticalityLevel, Task
from repro.model.taskset import TaskSet
from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "TRAFFIC_BASE_ID",
    "Arrival",
    "PoissonSource",
    "MMPPSource",
    "DiurnalCurveSource",
    "TraceReplaySource",
    "ServerSpec",
    "TrafficFlow",
    "TrafficSpec",
    "TrafficBehavior",
    "arrivals_ndjson",
    "parse_arrivals_ndjson",
    "source_to_dict",
    "source_from_dict",
    "traffic_to_dict",
    "traffic_from_dict",
]

#: Task-id base for synthesized server tasks — above both the Sec. 5
#: generator's small ids and diffcheck's level-D background range
#: (10_000), so augmented task sets can never collide.
TRAFFIC_BASE_ID = 20_000

_CANON = dict(sort_keys=True, separators=(",", ":"), allow_nan=False)

#: Supported per-arrival demand distributions.
_DEMANDS = ("exp", "fixed")


@dataclass(frozen=True)
class Arrival:
    """One request: arrival instant and CPU-seconds of demand."""

    time: float
    demand: float


def _check_demand_kind(demand: str) -> None:
    if demand not in _DEMANDS:
        raise ValueError(f"demand must be one of {_DEMANDS}, got {demand!r}")


def _draw_demands(rng: np.random.Generator, kind: str, mean: float, n: int) -> List[float]:
    if kind == "fixed":
        return [mean] * n
    return [float(x) for x in rng.exponential(mean, n)]


def _poisson_times(
    rng: np.random.Generator, rate: float, start: float, end: float
) -> List[float]:
    """Poisson arrival instants in ``[start, end)`` at constant *rate*.

    Restarting the exponential clock at *start* is exact for piecewise-
    constant rates (memorylessness), which is what makes the per-segment
    MMPP expansion below a faithful MMPP sample.
    """
    out: List[float] = []
    if rate <= 0.0:
        return out
    t = start + float(rng.exponential(1.0 / rate))
    while t < end:
        out.append(t)
        t += float(rng.exponential(1.0 / rate))
    return out


@dataclass(frozen=True)
class PoissonSource:
    """Homogeneous Poisson arrivals at ``rate`` requests/second.

    A memoryless open-system baseline: offered load is flat, so
    :meth:`last_burst_end` is 0 (dissipation keeps its scripted-scenario
    origin) and :meth:`burst_size` is 0.
    """

    rate: float
    mean_demand: float
    demand: str = "exp"
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)
        check_positive("mean_demand", self.mean_demand)
        _check_demand_kind(self.demand)

    def arrivals(self, horizon: float) -> Tuple[Arrival, ...]:
        times = _poisson_times(
            np.random.default_rng([self.seed, 0]), self.rate, 0.0, horizon
        )
        demands = _draw_demands(
            np.random.default_rng([self.seed, 1]),
            self.demand, self.mean_demand, len(times),
        )
        return tuple(Arrival(t, d) for t, d in zip(times, demands))

    def offered_load(self, horizon: float) -> float:
        """Mean demand rate in CPU-seconds per second."""
        return self.rate * self.mean_demand

    def burst_size(self) -> float:
        return 0.0

    def last_burst_end(self, horizon: float) -> float:
        return 0.0


@dataclass(frozen=True)
class MMPPSource:
    """Markov-modulated Poisson arrivals with a seeded cyclic chain.

    The modulating chain cycles through ``rates`` states (the two-state
    case is the classic interrupted/bursty Poisson process); state ``i``
    is held for an exponential dwell of mean ``dwells[i]`` seconds drawn
    from a chain stream *independent* of the arrival stream, so the
    burst schedule (:meth:`last_burst_end`) can be replayed without
    expanding arrivals.
    """

    rates: Tuple[float, ...]
    dwells: Tuple[float, ...]
    mean_demand: float
    demand: str = "exp"
    seed: int = 0
    start_state: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rates", tuple(float(r) for r in self.rates))
        object.__setattr__(self, "dwells", tuple(float(d) for d in self.dwells))
        if len(self.rates) < 2:
            raise ValueError("MMPPSource needs at least two modulating states")
        if len(self.rates) != len(self.dwells):
            raise ValueError(
                f"rates and dwells must pair up, got {len(self.rates)} rates "
                f"and {len(self.dwells)} dwells"
            )
        for i, r in enumerate(self.rates):
            check_nonnegative(f"rates[{i}]", r)
        for i, d in enumerate(self.dwells):
            check_positive(f"dwells[{i}]", d)
        check_positive("mean_demand", self.mean_demand)
        _check_demand_kind(self.demand)
        if not 0 <= self.start_state < len(self.rates):
            raise ValueError(
                f"start_state {self.start_state} outside range({len(self.rates)})"
            )

    def _segments(self, horizon: float) -> List[Tuple[float, float, float]]:
        """The chain's ``(start, end, rate)`` dwell segments up to *horizon*."""
        chain = np.random.default_rng([self.seed, 0])
        out: List[Tuple[float, float, float]] = []
        t, state = 0.0, self.start_state
        while t < horizon:
            dwell = float(chain.exponential(self.dwells[state]))
            out.append((t, min(t + dwell, horizon), self.rates[state]))
            t += dwell
            state = (state + 1) % len(self.rates)
        return out

    def arrivals(self, horizon: float) -> Tuple[Arrival, ...]:
        timing = np.random.default_rng([self.seed, 1])
        times: List[float] = []
        for start, end, rate in self._segments(horizon):
            times.extend(_poisson_times(timing, rate, start, end))
        demands = _draw_demands(
            np.random.default_rng([self.seed, 2]),
            self.demand, self.mean_demand, len(times),
        )
        return tuple(Arrival(t, d) for t, d in zip(times, demands))

    def offered_load(self, horizon: float) -> float:
        """Stationary mean demand rate (dwell-weighted) in CPU-s/s."""
        total_dwell = sum(self.dwells)
        mean_rate = sum(r * d for r, d in zip(self.rates, self.dwells)) / total_dwell
        return mean_rate * self.mean_demand

    def burst_size(self) -> float:
        """Expected *excess* demand of one burst dwell, in CPU-seconds.

        ``(peak rate - base rate) x mean peak dwell x mean demand`` —
        the demand a burst injects beyond the calm baseline, the
        x-axis of the min-s(t)-vs-burst-size figure.
        """
        peak = max(self.rates)
        base = min(self.rates)
        if peak <= base:
            return 0.0
        i = self.rates.index(peak)
        return (peak - base) * self.dwells[i] * self.mean_demand

    def last_burst_end(self, horizon: float) -> float:
        """End of the last peak-rate dwell that starts before *horizon*.

        Dissipation for bursty traffic is measured from here, the
        open-system analogue of a scenario's ``last_overload_end``.
        """
        peak = max(self.rates)
        if peak <= min(self.rates):
            return 0.0
        end_of_last = 0.0
        for start, end, rate in self._segments(horizon):
            if rate == peak and start < horizon:
                end_of_last = end
        return end_of_last


@dataclass(frozen=True)
class DiurnalCurveSource:
    """Inhomogeneous Poisson arrivals under a raised-cosine rate curve.

    ``lambda(t) = base + (peak - base)/2 * (1 - cos(2 pi (t+phase)/period))``
    — the smooth day/night load shape of a user-facing service.  Sampled
    by thinning a homogeneous ``peak``-rate process, which is exact and
    deterministic in the seed.
    """

    base_rate: float
    peak_rate: float
    period: float
    mean_demand: float
    demand: str = "exp"
    seed: int = 0
    phase: float = 0.0

    def __post_init__(self) -> None:
        check_nonnegative("base_rate", self.base_rate)
        check_positive("peak_rate", self.peak_rate)
        if self.peak_rate < self.base_rate:
            raise ValueError(
                f"peak_rate {self.peak_rate} must be >= base_rate {self.base_rate}"
            )
        check_positive("period", self.period)
        check_positive("mean_demand", self.mean_demand)
        check_nonnegative("phase", self.phase)
        _check_demand_kind(self.demand)

    def rate_at(self, t: float) -> float:
        swing = (self.peak_rate - self.base_rate) / 2.0
        return self.base_rate + swing * (
            1.0 - math.cos(2.0 * math.pi * (t + self.phase) / self.period)
        )

    def arrivals(self, horizon: float) -> Tuple[Arrival, ...]:
        rng = np.random.default_rng([self.seed, 0])
        times: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.peak_rate))
            if t >= horizon:
                break
            if float(rng.random()) * self.peak_rate < self.rate_at(t):
                times.append(t)
        demands = _draw_demands(
            np.random.default_rng([self.seed, 1]),
            self.demand, self.mean_demand, len(times),
        )
        return tuple(Arrival(t, d) for t, d in zip(times, demands))

    def offered_load(self, horizon: float) -> float:
        return (self.base_rate + self.peak_rate) / 2.0 * self.mean_demand

    def burst_size(self) -> float:
        """Excess demand of one above-mean half-period, in CPU-seconds.

        ``integral of (lambda(t) - mean) over the high half`` evaluates
        to ``(peak - base) * period / (2 pi)`` for the raised cosine.
        """
        return (
            (self.peak_rate - self.base_rate)
            * self.period / (2.0 * math.pi)
            * self.mean_demand
        )

    def last_burst_end(self, horizon: float) -> float:
        """End of the last above-mean half-period starting before *horizon*.

        The curve sits above its mean exactly while the phase fraction
        lies in ``[1/4, 3/4)`` — closed-form, no sampling needed.
        """
        if self.peak_rate <= self.base_rate:
            return 0.0
        n = math.floor((horizon + self.phase) / self.period)
        while n >= -1:
            start = (n + 0.25) * self.period - self.phase
            end = (n + 0.75) * self.period - self.phase
            if start < horizon and end > 0.0:
                return min(end, horizon)
            n -= 1
        return 0.0


@dataclass(frozen=True)
class TraceReplaySource:
    """Replay a recorded arrival trace, embedded by value.

    ``ndjson`` is the text of an arrival NDJSON file (one
    ``{"demand": ..., "t": ...}`` object per line — the exact format
    :func:`arrivals_ndjson` writes), carried inline like
    :class:`~repro.runtime.spec.TaskSetSpec.inline` so the spec stays
    self-contained, picklable, and content-addressable.
    """

    ndjson: str

    def __post_init__(self) -> None:
        self._parsed()  # validate eagerly: a bad trace fails at spec build

    @classmethod
    def from_file(cls, path: str) -> "TraceReplaySource":
        with open(path, "r", encoding="utf-8") as fh:
            return cls(ndjson=fh.read())

    @classmethod
    def from_arrivals(cls, arrivals: Sequence[Arrival]) -> "TraceReplaySource":
        return cls(ndjson=_arrivals_to_ndjson(arrivals))

    def _parsed(self) -> Tuple[Arrival, ...]:
        return parse_arrivals_ndjson(self.ndjson)

    def arrivals(self, horizon: float) -> Tuple[Arrival, ...]:
        return tuple(a for a in self._parsed() if a.time < horizon)

    def offered_load(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return sum(a.demand for a in self.arrivals(horizon)) / horizon

    def burst_size(self) -> float:
        return 0.0

    def last_burst_end(self, horizon: float) -> float:
        """The last recorded arrival instant (a replay *is* its burst)."""
        arrivals = self.arrivals(horizon)
        return arrivals[-1].time if arrivals else 0.0


#: kind tag -> source class, for canonical (de)serialization.
_SOURCE_KINDS = {
    "poisson": PoissonSource,
    "mmpp": MMPPSource,
    "diurnal": DiurnalCurveSource,
    "replay": TraceReplaySource,
}


def _source_kind(source: Any) -> str:
    for kind, cls in _SOURCE_KINDS.items():
        if isinstance(source, cls):
            return kind
    raise TypeError(f"unknown traffic source type {type(source).__name__}")


def source_to_dict(source: Any) -> Dict[str, Any]:
    """A source as a JSON-ready dict with a ``kind`` discriminator."""
    kind = _source_kind(source)
    doc: Dict[str, Any] = {"kind": kind}
    if kind == "poisson":
        doc.update(rate=source.rate, mean_demand=source.mean_demand,
                   demand=source.demand, seed=source.seed)
    elif kind == "mmpp":
        doc.update(rates=list(source.rates), dwells=list(source.dwells),
                   mean_demand=source.mean_demand, demand=source.demand,
                   seed=source.seed, start_state=source.start_state)
    elif kind == "diurnal":
        doc.update(base_rate=source.base_rate, peak_rate=source.peak_rate,
                   period=source.period, mean_demand=source.mean_demand,
                   demand=source.demand, seed=source.seed, phase=source.phase)
    else:  # replay
        doc.update(ndjson=source.ndjson)
    return doc


def source_from_dict(doc: Dict[str, Any]) -> Any:
    """Exact inverse of :func:`source_to_dict`."""
    kind = doc.get("kind")
    if kind == "poisson":
        return PoissonSource(
            rate=float(doc["rate"]), mean_demand=float(doc["mean_demand"]),
            demand=str(doc.get("demand", "exp")), seed=int(doc.get("seed", 0)),
        )
    if kind == "mmpp":
        return MMPPSource(
            rates=tuple(float(r) for r in doc["rates"]),
            dwells=tuple(float(d) for d in doc["dwells"]),
            mean_demand=float(doc["mean_demand"]),
            demand=str(doc.get("demand", "exp")),
            seed=int(doc.get("seed", 0)),
            start_state=int(doc.get("start_state", 0)),
        )
    if kind == "diurnal":
        return DiurnalCurveSource(
            base_rate=float(doc["base_rate"]), peak_rate=float(doc["peak_rate"]),
            period=float(doc["period"]), mean_demand=float(doc["mean_demand"]),
            demand=str(doc.get("demand", "exp")), seed=int(doc.get("seed", 0)),
            phase=float(doc.get("phase", 0.0)),
        )
    if kind == "replay":
        return TraceReplaySource(ndjson=str(doc["ndjson"]))
    raise ValueError(f"unknown traffic source kind {kind!r}")


# ----------------------------------------------------------------------
# Arrival NDJSON (the determinism currency: same spec -> same bytes)
# ----------------------------------------------------------------------
def _arrivals_to_ndjson(arrivals: Sequence[Arrival]) -> str:
    lines = [
        json.dumps({"demand": a.demand, "t": a.time}, **_CANON)
        for a in arrivals
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def arrivals_ndjson(source: Any, horizon: float) -> str:
    """Expand *source* to *horizon* and serialize canonically.

    Same source spec, same horizon => byte-identical text; this is the
    form the determinism tests pin and :class:`TraceReplaySource`
    replays.
    """
    return _arrivals_to_ndjson(source.arrivals(horizon))


def parse_arrivals_ndjson(text: str) -> Tuple[Arrival, ...]:
    """Parse an arrival NDJSON document (sorted by time, validated)."""
    out: List[Arrival] = []
    for i, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
            t = float(doc["t"])
            demand = float(doc["demand"])
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"arrival NDJSON line {i + 1} is invalid: {line!r}") from exc
        if t < 0.0 or demand < 0.0:
            raise ValueError(
                f"arrival NDJSON line {i + 1}: t and demand must be >= 0, "
                f"got t={t}, demand={demand}"
            )
        out.append(Arrival(t, demand))
    out.sort(key=lambda a: a.time)
    return tuple(out)


# ----------------------------------------------------------------------
# Servers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServerSpec:
    """How one flow's requests are served: aperiodic server tasks.

    ``count`` identical servers share the flow round-robin (arrival
    ``i`` is queued at server ``i mod count``); each is a periodic task
    of period ``period`` whose per-job execution time is the backlog it
    grants, capped at ``budget`` CPU-seconds per period.

    * ``level="C"`` servers are global GEL-v tasks with a G-FL priority
      point and a response-time tolerance, so traffic overload drives
      the recovery monitors exactly like scripted overload does.
    * ``level="D"`` servers are best-effort background traffic.
    * ``policy="polling"`` grants work that arrived by the release;
      ``policy="deferrable"`` also admits arrivals up to one period
      past the release (a deferrable-server approximation — execution
      times are sampled once at release, so mid-job admission is
      modelled as lookahead).
    """

    period: float = 0.025
    budget: float = 0.005
    level: str = "C"
    policy: str = "polling"
    count: int = 1
    #: Response-time tolerance for level-C servers (default: one period).
    tolerance: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive("period", self.period)
        check_positive("budget", self.budget)
        if self.budget > self.period:
            raise ValueError(
                f"server budget {self.budget} exceeds its period {self.period}"
            )
        if self.level not in ("C", "D"):
            raise ValueError(f"server level must be 'C' or 'D', got {self.level!r}")
        if self.policy not in ("polling", "deferrable"):
            raise ValueError(
                f"server policy must be 'polling' or 'deferrable', got {self.policy!r}"
            )
        if self.count < 1:
            raise ValueError(f"server count must be >= 1, got {self.count}")
        if self.tolerance is not None:
            check_nonnegative("tolerance", self.tolerance)

    @property
    def utilization(self) -> float:
        """Guaranteed service rate of the server bank, CPU-s/s."""
        return self.count * self.budget / self.period


@dataclass(frozen=True)
class TrafficFlow:
    """One arrival source mapped onto one server bank."""

    source: Any
    server: ServerSpec = field(default_factory=ServerSpec)

    def __post_init__(self) -> None:
        _source_kind(self.source)  # raises on unknown source types


@dataclass(frozen=True)
class TrafficSpec:
    """The open-system workload of a run: a tuple of traffic flows.

    Attached to :class:`~repro.runtime.spec.RunSpec` (serialized into
    canonical JSON *only when present*, so pre-traffic cache keys stay
    byte-identical) and expanded per run into server tasks
    (:meth:`augment`) plus a behaviour wrapper (:meth:`build_behavior`).
    """

    flows: Tuple[TrafficFlow, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "flows", tuple(self.flows))
        if not self.flows:
            raise ValueError("TrafficSpec needs at least one flow")

    # -- task-set expansion -------------------------------------------
    def server_tasks(self, m: int) -> List[Task]:
        """The server tasks, ids assigned from :data:`TRAFFIC_BASE_ID`.

        Enumeration order (flow-major, then server index) is the
        contract shared with :meth:`build_behavior`'s id assignment.
        """
        from repro.core.gel import gfl_relative_pp

        out: List[Task] = []
        tid = TRAFFIC_BASE_ID
        for fi, flow in enumerate(self.flows):
            srv = flow.server
            for k in range(srv.count):
                name = f"srv{fi}.{k}"
                if srv.level == "C":
                    out.append(Task(
                        task_id=tid,
                        level=CriticalityLevel.C,
                        period=srv.period,
                        pwcets={CriticalityLevel.C: srv.budget},
                        relative_pp=gfl_relative_pp(srv.period, srv.budget, m),
                        tolerance=(
                            srv.tolerance if srv.tolerance is not None else srv.period
                        ),
                        name=name,
                    ))
                else:
                    out.append(Task(
                        task_id=tid,
                        level=CriticalityLevel.D,
                        period=srv.period,
                        pwcets={CriticalityLevel.D: srv.budget},
                        name=name,
                    ))
                tid += 1
        return out

    def augment(self, ts: TaskSet) -> TaskSet:
        """*ts* plus this spec's server tasks (ids never collide)."""
        return TaskSet(list(ts) + self.server_tasks(ts.m), m=ts.m)

    def build_behavior(
        self, inner: ExecutionBehavior, horizon: float
    ) -> "TrafficBehavior":
        """Wrap *inner* so server jobs execute their granted backlog."""
        queues: Dict[int, _ServerQueue] = {}
        tid = TRAFFIC_BASE_ID
        for flow in self.flows:
            arrivals = flow.source.arrivals(horizon)
            srv = flow.server
            for k in range(srv.count):
                queues[tid] = _ServerQueue(arrivals[k::srv.count], srv)
                tid += 1
        return TrafficBehavior(inner, queues)

    # -- analysis axes -------------------------------------------------
    def offered_load(self, horizon: float) -> float:
        """Total mean demand rate across flows, CPU-seconds/second."""
        return sum(f.source.offered_load(horizon) for f in self.flows)

    def burst_size(self) -> float:
        """Largest per-flow burst excess (CPU-seconds); 0 if none bursts."""
        return max(f.source.burst_size() for f in self.flows)

    def last_burst_end(self, horizon: float) -> float:
        """Dissipation origin contributed by traffic (0 if calm)."""
        return max(f.source.last_burst_end(horizon) for f in self.flows)

    def service_utilization(self) -> float:
        """Total guaranteed service rate of every server bank."""
        return sum(f.server.utilization for f in self.flows)

    # -- serialization -------------------------------------------------
    def canonical_json(self) -> str:
        """Canonical JSON text (sorted keys, fixed separators)."""
        return json.dumps(traffic_to_dict(self), **_CANON)


def traffic_to_dict(spec: TrafficSpec) -> Dict[str, Any]:
    """*spec* as the JSON-ready dict embedded in canonical RunSpec JSON."""
    return {
        "flows": [
            {
                "source": source_to_dict(flow.source),
                "server": {
                    "period": flow.server.period,
                    "budget": flow.server.budget,
                    "level": flow.server.level,
                    "policy": flow.server.policy,
                    "count": flow.server.count,
                    "tolerance": flow.server.tolerance,
                },
            }
            for flow in spec.flows
        ]
    }


def traffic_from_dict(doc: Dict[str, Any]) -> TrafficSpec:
    """Exact inverse of :func:`traffic_to_dict`."""
    flows = []
    for f in doc["flows"]:
        srv = f.get("server", {})
        flows.append(TrafficFlow(
            source=source_from_dict(f["source"]),
            server=ServerSpec(
                period=float(srv.get("period", 0.025)),
                budget=float(srv.get("budget", 0.005)),
                level=str(srv.get("level", "C")),
                policy=str(srv.get("policy", "polling")),
                count=int(srv.get("count", 1)),
                tolerance=(
                    float(srv["tolerance"])
                    if srv.get("tolerance") is not None else None
                ),
            ),
        ))
    return TrafficSpec(flows=tuple(flows))


# ----------------------------------------------------------------------
# Behaviour wrapper
# ----------------------------------------------------------------------
class _ServerQueue:
    """Grant state of one server task over its private arrival slice.

    ``grant(job_index, release)`` is memoized per job index and the
    ``served`` cursor advances only on first evaluation, so the grant
    sequence is a pure function of the task's own (index, release)
    sequence — which both kernel backends produce identically.
    """

    __slots__ = ("_times", "_prefix", "_budget", "_lookahead", "served", "_memo")

    def __init__(self, arrivals: Sequence[Arrival], server: ServerSpec) -> None:
        self._times = [a.time for a in arrivals]
        self._prefix: List[float] = []
        total = 0.0
        for a in arrivals:
            total += a.demand
            self._prefix.append(total)
        self._budget = server.budget
        self._lookahead = server.period if server.policy == "deferrable" else 0.0
        self.served = 0.0
        self._memo: Dict[int, float] = {}

    def grant(self, job_index: int, release: float) -> float:
        cached = self._memo.get(job_index)
        if cached is not None:
            return cached
        i = bisect_right(self._times, release + self._lookahead)
        eligible = self._prefix[i - 1] if i else 0.0
        g = min(self._budget, max(0.0, eligible - self.served))
        self.served += g
        self._memo[job_index] = g
        return g


class TrafficBehavior:
    """Route server-task releases to their queues; delegate the rest.

    Stateful (per-run): build a fresh instance per simulation via
    :meth:`TrafficSpec.build_behavior` — never share one across runs.
    """

    def __init__(
        self, inner: ExecutionBehavior, queues: Dict[int, _ServerQueue]
    ) -> None:
        self._inner = inner
        self._queues = queues

    def exec_time(self, task: Task, job_index: int, release: float) -> float:
        queue = self._queues.get(task.task_id)
        if queue is None:
            return self._inner.exec_time(task, job_index, release)
        return queue.grant(job_index, release)

    def sojourn_samples(self, trace: Any) -> Tuple[List[float], int]:
        """Per-request sojourn times reconstructed from the run's trace.

        A request is *served* at the completion of the first server job
        whose cumulative grant covers the request's cumulative demand
        (requests drain FIFO within a server — grants are backlog in
        arrival order).  Returns ``(samples, requests)``: one sojourn
        sample (``completion - arrival``) per fully served request whose
        serving job completed, plus the total arrival count; the
        difference is censored (never fully granted, or the serving job
        was still running at the horizon).

        Deterministic: grants come from the run's own memoized grant
        sequence and completions from the (backend-invariant) trace, so
        the same spec always yields the same samples.
        """
        samples: List[float] = []
        requests = 0
        for tid in sorted(self._queues):
            queue = self._queues[tid]
            times, prefix = queue._times, queue._prefix
            requests += len(times)
            if not times:
                continue
            granted = 0.0
            i = 0  # first request not yet fully granted
            for job in trace.jobs_of(tid):
                g = queue._memo.get(job.index)
                if g is None:
                    continue  # released past the horizon; never sampled
                granted += g
                while i < len(times):
                    need = prefix[i]
                    if granted + 1e-9 * max(1.0, need) < need:
                        break
                    if job.completion is not None:
                        # Clamped: deferrable lookahead can admit an
                        # arrival into a job that completes before the
                        # arrival instant (documented approximation).
                        samples.append(max(0.0, job.completion - times[i]))
                    i += 1
        return samples, requests
