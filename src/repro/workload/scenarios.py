"""The paper's transient overload scenarios (Sec. 5).

* **SHORT** — all jobs at levels A, B and C execute for their level-B
  PWCETs for 500 ms, then their level-C PWCETs afterward.
* **LONG** — the same, for 1 s.
* **DOUBLE** — level-B PWCETs for 500 ms, level-C PWCETs for one second,
  level-B PWCETs for another 500 ms, then level-C PWCETs.

Because levels A and B together occupy 10 % of the system at level C and
level-B PWCETs are ten times more pessimistic, during the overload
windows the A/B partitions alone occupy essentially all CPUs — the
paper's "particularly pessimistic scenario".

An :class:`OverloadScenario` is a declarative wrapper that produces the
matching :class:`~repro.model.behavior.WindowedOverloadBehavior` and
knows when its last overload window ends (the origin for dissipation
measurement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.model.behavior import OverloadWindow, WindowedOverloadBehavior
from repro.model.task import CriticalityLevel

__all__ = [
    "OverloadScenario", "SHORT", "LONG", "DOUBLE", "CALM", "standard_scenarios",
]


@dataclass(frozen=True)
class OverloadScenario:
    """A named set of overload windows."""

    name: str
    windows: Tuple[OverloadWindow, ...]
    #: PWCET level jobs execute at inside windows (paper: level B).
    overload_level: CriticalityLevel = CriticalityLevel.B

    def behavior(self) -> WindowedOverloadBehavior:
        """The execution behaviour implementing this scenario."""
        return WindowedOverloadBehavior(
            self.windows, overload_level=self.overload_level
        )

    @property
    def last_overload_end(self) -> float:
        """End of the final overload window — dissipation time's origin.

        0.0 for a window-less scenario (e.g. :data:`CALM`), where any
        overload comes from open-system traffic instead.
        """
        return max((w.end for w in self.windows), default=0.0)

    @property
    def total_overload_length(self) -> float:
        """Sum of window lengths (drives the analytical dissipation bound)."""
        return sum(w.length for w in self.windows)

    def shifted(self, offset: float) -> "OverloadScenario":
        """The same scenario with every window delayed by *offset*.

        Useful to let the system warm up before the overload hits; the
        paper's experiments start the overload at time 0.  The shifted
        scenario's name carries the offset (``SHORT+0.25s``) so it
        stays distinguishable in figure labels and scorecard rollups.
        """
        name = self.name if offset == 0 else f"{self.name}+{offset:g}s"
        return OverloadScenario(
            name=name,
            windows=tuple(
                OverloadWindow(w.start + offset, w.end + offset) for w in self.windows
            ),
            overload_level=self.overload_level,
        )


#: Level-B execution for the first 500 ms.
SHORT = OverloadScenario("SHORT", (OverloadWindow(0.0, 0.5),))
#: Level-B execution for the first 1 s.
LONG = OverloadScenario("LONG", (OverloadWindow(0.0, 1.0),))
#: Two 500 ms overload windows separated by one normal second.
DOUBLE = OverloadScenario(
    "DOUBLE", (OverloadWindow(0.0, 0.5), OverloadWindow(1.5, 2.0))
)
#: No scripted overload at all — the baseline for open-system traffic
#: runs, where overload (if any) comes from a
#: :class:`~repro.workload.traffic.TrafficSpec` instead.
CALM = OverloadScenario("CALM", ())


def standard_scenarios() -> Tuple[OverloadScenario, ...]:
    """The paper's three scenarios, in presentation order."""
    return (SHORT, LONG, DOUBLE)
