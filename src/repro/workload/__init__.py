"""Experiment workload generation (Sec. 5 methodology).

* :mod:`repro.workload.distributions` — the "uniform medium" utilization
  distribution and the paper's period grids.
* :mod:`repro.workload.generator` — the avionics-like task-set generator:
  levels A and B each fill 5 % of system capacity and level C 65 %
  (measured at level-C PWCETs), level-B PWCETs are 10x and level-A PWCETs
  20x the level-C PWCETs, level-C relative PPs come from G-FL, and
  response-time tolerances from the analytical bounds.
* :mod:`repro.workload.scenarios` — the transient overload scenarios
  SHORT, LONG and DOUBLE.
"""

from repro.workload.distributions import (
    LEVEL_A_PERIODS_MS,
    level_b_period_choices_ms,
    level_c_period_choices_ms,
    uniform_medium,
)
from repro.workload.generator import GeneratorParams, generate_taskset, generate_tasksets
from repro.workload.scenarios import (
    DOUBLE,
    LONG,
    SHORT,
    OverloadScenario,
    standard_scenarios,
)

__all__ = [
    "uniform_medium",
    "LEVEL_A_PERIODS_MS",
    "level_b_period_choices_ms",
    "level_c_period_choices_ms",
    "GeneratorParams",
    "generate_taskset",
    "generate_tasksets",
    "OverloadScenario",
    "SHORT",
    "LONG",
    "DOUBLE",
    "standard_scenarios",
]
