"""Tasks and criticality levels.

This module encodes the MC² task model of Sec. 2:

* Four criticality levels A (highest) through D (lowest); each task has a
  single criticality level.
* Each task has a *provisioned* WCET (PWCET) for each analysis level at or
  below its own criticality.  Level-``l`` schedulability analysis considers
  every task of criticality at or above ``l`` with its level-``l`` PWCET.
  In the paper's experiments a task's level-B PWCET is 10x and its level-A
  PWCET 20x its level-C PWCET.
* Level-A and level-B tasks are *partitioned*: each is pinned to one CPU
  (table-driven at A, EDF at B).  Level-C tasks are scheduled globally by a
  GEL/GEL-v scheduler and additionally carry a relative priority point
  ``Y_i`` (eq. 3/6) and a response-time tolerance ``xi_i`` (Def. 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.util.validation import check_nonnegative, check_positive

__all__ = ["CriticalityLevel", "Task"]


class CriticalityLevel(enum.IntEnum):
    """MC² criticality levels, A (highest) through D (lowest).

    The integer values order levels by *decreasing* criticality, so
    ``CriticalityLevel.A < CriticalityLevel.C`` and "criticality at or
    above level C" is ``level <= CriticalityLevel.C``.
    """

    A = 0
    B = 1
    C = 2
    D = 3

    @property
    def is_hard(self) -> bool:
        """Whether the level carries hard real-time guarantees (A, B)."""
        return self in (CriticalityLevel.A, CriticalityLevel.B)

    def at_or_above(self, other: "CriticalityLevel") -> bool:
        """``True`` iff this level is at least as critical as *other*."""
        return self <= other


@dataclass(frozen=True)
class Task:
    """A sporadic MC² task.

    Parameters
    ----------
    task_id:
        Unique non-negative identifier within a :class:`TaskSet`.  Also the
        final scheduling tie-break, so schedules are deterministic.
    level:
        The task's criticality level.
    period:
        ``T_i > 0``: minimum separation between consecutive releases.  For
        level-C tasks under the SVO model, this separation is measured in
        *virtual* time (eq. 5); for levels A/B it is actual time.
    pwcets:
        Mapping from analysis level to PWCET.  Must contain an entry for
        the task's own level; entries for lower-criticality analysis levels
        are optional but required by level-C analysis for A/B tasks.
        Level-D tasks are best-effort and may have an empty mapping.
    relative_pp:
        ``Y_i >= 0``, the relative priority point (level C only; eq. 3/6).
        ``None`` for other levels.
    tolerance:
        ``xi_i >= 0``, the response-time tolerance relative to the PP
        (Def. 1; level C only).  ``None`` means "not configured"; monitors
        require it for level-C tasks.
    cpu:
        Partition assignment for level-A/B tasks (required); must be
        ``None`` for level-C (global) and level-D tasks.
    phase:
        Release offset of job 0 (actual time for A/B, virtual time for C).
    name:
        Optional human-readable label used in traces and examples.
    """

    task_id: int
    level: CriticalityLevel
    period: float
    pwcets: Mapping[CriticalityLevel, float] = field(default_factory=dict)
    relative_pp: Optional[float] = None
    tolerance: Optional[float] = None
    cpu: Optional[int] = None
    phase: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError(f"task_id must be >= 0, got {self.task_id}")
        check_positive("period", self.period)
        check_nonnegative("phase", self.phase)
        object.__setattr__(self, "pwcets", dict(self.pwcets))
        for lvl, c in self.pwcets.items():
            check_positive(f"pwcet[{CriticalityLevel(lvl).name}]", c)
        if self.level is not CriticalityLevel.D and self.level not in self.pwcets:
            raise ValueError(
                f"task {self.task_id}: missing PWCET for its own level {self.level.name}"
            )
        # Note: a task MAY carry PWCETs at analysis levels more critical
        # than its own.  Level-l analysis only considers tasks of
        # criticality at or above l, so such entries are ignored by the
        # analysis — but the paper's experiments use them ("all jobs at
        # levels A, B, and C execute for their level-B PWCETs", Sec. 5,
        # with every task's level-B PWCET 10x its level-C PWCET).
        if self.level is CriticalityLevel.C:
            if self.relative_pp is None:
                raise ValueError(f"level-C task {self.task_id} requires relative_pp (Y_i)")
            check_nonnegative("relative_pp", self.relative_pp)
            if self.tolerance is not None:
                check_nonnegative("tolerance", self.tolerance)
            if self.cpu is not None:
                raise ValueError("level-C tasks are scheduled globally; cpu must be None")
        else:
            if self.relative_pp is not None:
                raise ValueError("relative_pp (Y_i) only applies to level-C tasks")
            if self.tolerance is not None:
                raise ValueError("response-time tolerance only applies to level-C tasks")
            if self.level.is_hard and self.cpu is None:
                raise ValueError(
                    f"level-{self.level.name} task {self.task_id} must be pinned to a CPU"
                )
            if self.cpu is not None and self.cpu < 0:
                raise ValueError(f"cpu must be >= 0, got {self.cpu}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def pwcet(self, analysis_level: CriticalityLevel) -> float:
        """The PWCET used when analyzing *analysis_level*.

        Raises :class:`KeyError` if the task has no PWCET at that level
        (e.g. a level-D task, or an A-level PWCET that was never set).
        """
        return self.pwcets[analysis_level]

    def utilization(self, analysis_level: CriticalityLevel) -> float:
        """``C_i(level) / T_i``, the task's utilization at *analysis_level*."""
        return self.pwcet(analysis_level) / self.period

    @property
    def label(self) -> str:
        """Display name: explicit ``name`` or ``tau{task_id}``."""
        return self.name or f"tau{self.task_id}"

    def with_tolerance(self, tolerance: float) -> "Task":
        """Return a copy of this level-C task with ``xi_i`` set."""
        if self.level is not CriticalityLevel.C:
            raise ValueError("tolerances only apply to level-C tasks")
        return Task(
            task_id=self.task_id,
            level=self.level,
            period=self.period,
            pwcets=self.pwcets,
            relative_pp=self.relative_pp,
            tolerance=tolerance,
            cpu=self.cpu,
            phase=self.phase,
            name=self.name,
        )

    def with_relative_pp(self, relative_pp: float) -> "Task":
        """Return a copy of this level-C task with ``Y_i`` replaced."""
        if self.level is not CriticalityLevel.C:
            raise ValueError("relative PPs only apply to level-C tasks")
        return Task(
            task_id=self.task_id,
            level=self.level,
            period=self.period,
            pwcets=self.pwcets,
            relative_pp=relative_pp,
            tolerance=self.tolerance,
            cpu=self.cpu,
            phase=self.phase,
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - formatting only
        bits = [
            f"Task({self.label}",
            f"level={self.level.name}",
            f"T={self.period}",
        ]
        if self.level is CriticalityLevel.C:
            bits.append(f"Y={self.relative_pp}")
            if self.tolerance is not None:
                bits.append(f"xi={self.tolerance}")
        if self.cpu is not None:
            bits.append(f"cpu={self.cpu}")
        bits.append(
            "pwcets={" + ", ".join(f"{CriticalityLevel(k).name}:{v}" for k, v in self.pwcets.items()) + "}"
        )
        return ", ".join(bits) + ")"
