"""Execution behaviours: how long each job *actually* runs.

Under the SVO model the per-job execution time :math:`e_{i,k}` is not
bounded by any PWCET — that is precisely how the paper models overload.
The experiments in Sec. 5 drive every job's execution time from a simple
time-windowed rule:

    "All jobs at levels A, B, and C execute for their level-B PWCETs for
    500 ms, and then execute for their level-C PWCETs afterward." (SHORT)

An :class:`ExecutionBehavior` maps ``(task, job_index, release_time)`` to
an execution time, which the simulator samples at release.  Provided
implementations:

* :class:`ConstantBehavior` — every job runs for a fixed analysis-level
  PWCET (level C by default): the overload-free baseline of Fig. 2(a).
* :class:`WindowedOverloadBehavior` — level-B (or any chosen level) PWCETs
  inside configured overload windows, level-C PWCETs outside: implements
  SHORT / LONG / DOUBLE (see :mod:`repro.workload.scenarios`).
* :class:`TraceBehavior` — explicit per-job execution times, used to build
  the paper's Fig. 2 / Fig. 3 example schedules exactly.
* :class:`PwcetFractionBehavior` — a fixed fraction of the level-C PWCET
  (e.g. jobs that usually finish early).
* :class:`StochasticBehavior` — random execution times around the level-C
  PWCET with an occasional overrun; used in robustness tests and the
  extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.model.task import CriticalityLevel, Task
from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "ExecutionBehavior",
    "ConstantBehavior",
    "TraceBehavior",
    "PwcetFractionBehavior",
    "StochasticBehavior",
    "OverloadWindow",
    "WindowedOverloadBehavior",
]


@runtime_checkable
class ExecutionBehavior(Protocol):
    """Strategy mapping a job release to its actual execution time."""

    def exec_time(self, task: Task, job_index: int, release: float) -> float:
        """Return :math:`e_{i,k}` for job *job_index* of *task* released at *release*."""
        ...


def _pwcet_or_fallback(task: Task, level: CriticalityLevel) -> float:
    """PWCET of *task* at *level*, falling back to the least-critical PWCET.

    Level-D tasks have no PWCETs; behaviours treat them as zero-demand
    unless the behaviour explicitly configures them.
    """
    if level in task.pwcets:
        return task.pwcets[level]
    if task.pwcets:
        # Fall back to the least-critical (smallest analysis index ... i.e.
        # largest enum value) PWCET available, which is the least pessimistic.
        lvl = max(task.pwcets)
        return task.pwcets[lvl]
    return 0.0


@dataclass(frozen=True)
class ConstantBehavior:
    """Every job executes for its PWCET at ``level`` (default: level C).

    This is the paper's "normal operation": no job exceeds its level-C
    PWCET, so response times are bounded (Fig. 2(a), Fig. 3(a)).
    """

    level: CriticalityLevel = CriticalityLevel.C

    def exec_time(self, task: Task, job_index: int, release: float) -> float:
        return _pwcet_or_fallback(task, self.level)


@dataclass(frozen=True)
class PwcetFractionBehavior:
    """Jobs execute for ``fraction`` of their level-C PWCET.

    A fraction below 1 models the realistic case mentioned in Sec. 3
    ("level-C jobs will often run for less time than their respective
    level-C PWCETs"); a fraction above 1 models sustained overrun.
    """

    fraction: float

    def __post_init__(self) -> None:
        check_positive("fraction", self.fraction)

    def exec_time(self, task: Task, job_index: int, release: float) -> float:
        return self.fraction * _pwcet_or_fallback(task, CriticalityLevel.C)


class TraceBehavior:
    """Explicit per-job execution times with a per-task default.

    Used to reconstruct the paper's hand-built example schedules, where
    specific jobs overrun at specific times.
    """

    def __init__(
        self,
        overrides: Optional[Dict[Tuple[int, int], float]] = None,
        default: Optional[ExecutionBehavior] = None,
    ) -> None:
        """
        Parameters
        ----------
        overrides:
            Map ``(task_id, job_index) -> exec_time`` for the jobs whose
            execution time differs from the default.
        default:
            Behaviour for all other jobs (defaults to
            :class:`ConstantBehavior` at level C).
        """
        self._overrides = dict(overrides or {})
        for key, value in self._overrides.items():
            check_nonnegative(f"override[{key}]", value)
        self._default = default if default is not None else ConstantBehavior()

    def exec_time(self, task: Task, job_index: int, release: float) -> float:
        key = (task.task_id, job_index)
        if key in self._overrides:
            return self._overrides[key]
        return self._default.exec_time(task, job_index, release)


@dataclass(frozen=True)
class OverloadWindow:
    """A half-open actual-time interval ``[start, end)`` of overload."""

    start: float
    end: float

    def __post_init__(self) -> None:
        check_nonnegative("start", self.start)
        if not self.end > self.start:
            raise ValueError(f"window end must exceed start, got [{self.start}, {self.end})")

    @property
    def length(self) -> float:
        """Window duration ``end - start``."""
        return self.end - self.start

    def contains(self, t: float) -> bool:
        """Whether actual time *t* falls inside the window."""
        return self.start <= t < self.end


class WindowedOverloadBehavior:
    """Sec. 5 overload injection: overrun inside windows, normal outside.

    Jobs *released* inside any window execute for their ``overload_level``
    PWCET (level B in the paper: 10x the level-C PWCET); jobs released
    outside all windows execute for their ``normal_level`` PWCET (level C).

    Keying on the release time matches the paper's description ("all jobs
    ... execute for their level-B PWCETs for 500 ms"): a job that starts
    inside the window carries its inflated demand even if it finishes
    after the window ends, which is what makes the overload's effects
    outlast the window and gives a non-trivial dissipation time.
    """

    def __init__(
        self,
        windows: Sequence[OverloadWindow],
        overload_level: CriticalityLevel = CriticalityLevel.B,
        normal_level: CriticalityLevel = CriticalityLevel.C,
    ) -> None:
        self.windows = tuple(sorted(windows, key=lambda w: w.start))
        for a, b in zip(self.windows, self.windows[1:]):
            if b.start < a.end:
                raise ValueError(f"overload windows overlap: {a} and {b}")
        self.overload_level = overload_level
        self.normal_level = normal_level

    @property
    def last_overload_end(self) -> float:
        """End of the final overload window (dissipation is measured from here)."""
        if not self.windows:
            return 0.0
        return self.windows[-1].end

    def in_overload(self, t: float) -> bool:
        """Whether actual time *t* lies inside any overload window."""
        return any(w.contains(t) for w in self.windows)

    def exec_time(self, task: Task, job_index: int, release: float) -> float:
        level = self.overload_level if self.in_overload(release) else self.normal_level
        return _pwcet_or_fallback(task, level)


class StochasticBehavior:
    """Random execution times: ``U(lo, hi) * pwcet_C`` with rare overruns.

    With probability ``overrun_prob`` a job instead draws from
    ``U(1, overrun_factor) * pwcet_C``, exceeding its provisioning.  The
    generator is seeded for reproducibility.
    """

    def __init__(
        self,
        lo: float = 0.5,
        hi: float = 1.0,
        overrun_prob: float = 0.0,
        overrun_factor: float = 2.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < lo <= hi:
            raise ValueError(f"need 0 < lo <= hi, got lo={lo}, hi={hi}")
        if not 0.0 <= overrun_prob <= 1.0:
            raise ValueError(f"overrun_prob must be in [0, 1], got {overrun_prob}")
        if overrun_factor < 1.0:
            raise ValueError(f"overrun_factor must be >= 1, got {overrun_factor}")
        self.lo = lo
        self.hi = hi
        self.overrun_prob = overrun_prob
        self.overrun_factor = overrun_factor
        self._rng = np.random.default_rng(seed)

    def exec_time(self, task: Task, job_index: int, release: float) -> float:
        base = _pwcet_or_fallback(task, CriticalityLevel.C)
        if self.overrun_prob and self._rng.random() < self.overrun_prob:
            return float(self._rng.uniform(1.0, self.overrun_factor)) * base
        return float(self._rng.uniform(self.lo, self.hi)) * base
