"""Task model substrate.

Implements the MC² mixed-criticality task model from Sec. 2 of the paper:

* :class:`~repro.model.task.CriticalityLevel` — the four MC² levels
  (A highest ... D lowest).
* :class:`~repro.model.task.Task` — a sporadic task with one provisioned
  worst-case execution time (PWCET) per analysis level, a minimum
  separation ``T_i``, and (for level C) a relative priority point ``Y_i``
  and a response-time tolerance ``xi_i``.
* :class:`~repro.model.job.Job` — one released instance of a task, carrying
  both actual-time and virtual-time bookkeeping (the SVO model).
* :class:`~repro.model.taskset.TaskSet` — a validated collection of tasks
  with utilization accounting per level and per CPU.
* :mod:`~repro.model.behavior` — *execution behaviours*: how long each job
  actually executes, which is how transient overload (jobs exceeding their
  level-C PWCET) is injected.
"""

from repro.model.behavior import (
    ConstantBehavior,
    ExecutionBehavior,
    OverloadWindow,
    PwcetFractionBehavior,
    StochasticBehavior,
    TraceBehavior,
    WindowedOverloadBehavior,
)
from repro.model.job import Job
from repro.model.task import CriticalityLevel, Task
from repro.model.taskset import TaskSet

__all__ = [
    "CriticalityLevel",
    "Task",
    "Job",
    "TaskSet",
    "ExecutionBehavior",
    "ConstantBehavior",
    "TraceBehavior",
    "PwcetFractionBehavior",
    "StochasticBehavior",
    "OverloadWindow",
    "WindowedOverloadBehavior",
]
