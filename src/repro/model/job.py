"""Jobs: released task instances with actual- and virtual-time bookkeeping.

A job :math:`\\tau_{i,k}` carries (Sec. 2 / Sec. 4 of the paper):

* ``release`` — actual release time :math:`r_{i,k}`;
* ``exec_time`` — actual execution requirement :math:`e_{i,k}` (under the
  SVO model this may exceed any PWCET: that is what overload *is*);
* ``virtual_release`` — :math:`v(r_{i,k})`, recorded at release;
* ``virtual_pp`` — :math:`v(y_{i,k}) = v(r_{i,k}) + Y_i` (eq. 6), the
  GEL-v *scheduling priority* (level C only);
* ``actual_pp`` — :math:`y_{i,k}` in actual time, which is *not known at
  release* because the virtual-clock speed may change before the PP is
  reached.  It starts as ``None`` (the paper's bottom placeholder) and is
  lazily resolved by the kernel per Fig. 5(b)-(d);
* ``completion`` — actual completion time :math:`t^c_{i,k}` once complete.

For levels A/B/D the virtual fields are unused (virtual time affects only
level C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.model.task import CriticalityLevel, Task

__all__ = ["Job"]


# eq=False: jobs are identity objects (one per release), and the kernel
# removes them from its pools by identity.  The generated field-by-field
# __eq__ made every ``list.remove`` an O(n) cascade of Python-level
# comparisons over *mutable* state — a real cost on the per-completion
# path — and left Job unhashable.  Identity semantics make removal a
# C-speed pointer scan and restore hashability.
@dataclass(eq=False)
class Job:
    """One released instance of a :class:`~repro.model.task.Task`."""

    task: Task
    index: int
    release: float
    exec_time: float
    #: Remaining execution requirement; decremented by the simulator.
    remaining: float = field(init=False)
    #: v(r_{i,k}); meaningful for level-C jobs only.
    virtual_release: Optional[float] = None
    #: v(y_{i,k}) = v(r_{i,k}) + Y_i; the GEL-v priority (level C only).
    virtual_pp: Optional[float] = None
    #: y_{i,k} in actual time; None encodes the paper's bottom placeholder.
    actual_pp: Optional[float] = None
    #: t^c_{i,k}; None while the job is incomplete.
    completion: Optional[float] = None
    #: Absolute deadline for level-B (EDF) jobs; None otherwise.
    deadline: Optional[float] = None
    #: CPU currently executing this job (simulator-managed; None if not running).
    running_on: Optional[int] = field(init=False, default=None)
    #: CPU this job last executed on (simulator-managed; for migration counts).
    last_cpu: Optional[int] = field(init=False, default=None)
    #: Scheduling generation stamp (simulator-managed): bumped whenever the
    #: job stops running so tentative completion events can be invalidated.
    generation: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"job index must be >= 0, got {self.index}")
        if self.exec_time < 0:
            raise ValueError(f"exec_time must be >= 0, got {self.exec_time}")
        if self.release < 0:
            raise ValueError(f"release must be >= 0, got {self.release}")
        self.remaining = self.exec_time

    # ------------------------------------------------------------------
    @property
    def jid(self) -> tuple[int, int]:
        """``(task_id, index)`` — the job's unique identity."""
        return (self.task.task_id, self.index)

    @property
    def label(self) -> str:
        """Display name, e.g. ``tau2,6``."""
        return f"{self.task.label},{self.index}"

    @property
    def is_complete(self) -> bool:
        """Whether the job has finished executing."""
        return self.completion is not None

    def is_pending(self, t: float) -> bool:
        """Paper Sec. 2: pending at ``t`` iff ``r_{i,k} <= t < t^c_{i,k}``."""
        if t < self.release:
            return False
        return self.completion is None or t < self.completion

    @property
    def response_time(self) -> Optional[float]:
        """``R_{i,k} = t^c_{i,k} - r_{i,k}``, or ``None`` if incomplete."""
        if self.completion is None:
            return None
        return self.completion - self.release

    @property
    def pp_lateness(self) -> Optional[float]:
        """Completion time relative to the *actual* PP: ``t^c - y``.

        Positive values mean the job completed after its priority point.
        Requires the actual PP to have been resolved; if the job completed
        at or before its PP (``actual_pp is None``, Fig. 5(b)) the lateness
        is reported as ``None`` — by Def. 1 such a job trivially meets any
        non-negative tolerance.
        """
        if self.completion is None or self.actual_pp is None:
            return None
        return self.completion - self.actual_pp

    def meets_tolerance(self) -> bool:
        """Def. 1: ``t^c <= y + xi``.

        Only meaningful for completed level-C jobs of tasks with a
        configured tolerance.  Jobs whose actual PP was never resolved
        completed at or before their PP and therefore meet any
        non-negative tolerance.
        """
        if self.task.level is not CriticalityLevel.C:
            raise ValueError("tolerances only apply to level-C jobs")
        if self.task.tolerance is None:
            raise ValueError(f"task {self.task.label} has no configured tolerance")
        if self.completion is None:
            raise ValueError(f"job {self.label} is not complete")
        if self.actual_pp is None:
            return True
        return self.completion <= self.actual_pp + self.task.tolerance

    def __repr__(self) -> str:  # pragma: no cover - formatting only
        state = f"done@{self.completion}" if self.is_complete else f"rem={self.remaining}"
        return f"Job({self.label}, r={self.release}, e={self.exec_time}, {state})"
