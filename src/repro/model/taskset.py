"""Task sets: validated collections of MC² tasks with utilization accounting.

A :class:`TaskSet` fixes the platform size ``m`` and groups tasks by level
and (for A/B) by CPU.  It provides the utilization views used throughout
the paper:

* level-``l`` utilization of a task: ``C_i(l) / T_i``;
* per-CPU level-A/B utilization at level C (the "CPU supply that is
  unavailable to level C", Sec. 2);
* total level-C utilization, which together with the supply view drives
  the response-time bounds in :mod:`repro.analysis`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.model.task import CriticalityLevel, Task

__all__ = ["TaskSet", "hyperperiod"]


def _lcm_float(values: Sequence[float], resolution: float = 1e-9) -> float:
    """LCM of positive reals, computed on an integer grid of *resolution*.

    Periods in this library are integral multiples of 1 ns in every
    provided generator, so this is exact for all practical inputs.
    """
    ints: List[int] = []
    for v in values:
        n = round(v / resolution)
        if n <= 0 or abs(n * resolution - v) > resolution / 2:
            raise ValueError(
                f"period {v} is not representable on a {resolution}s grid; "
                "pass a coarser resolution"
            )
        ints.append(n)
    out = 1
    for n in ints:
        out = out * n // math.gcd(out, n)
    return out * resolution


def hyperperiod(tasks: Iterable[Task], resolution: float = 1e-9) -> float:
    """Least common multiple of the tasks' periods (on a 1 ns grid)."""
    periods = [t.period for t in tasks]
    if not periods:
        return 0.0
    return _lcm_float(periods, resolution)


class TaskSet:
    """An immutable, validated set of MC² tasks on an ``m``-CPU platform."""

    def __init__(self, tasks: Iterable[Task], m: int) -> None:
        """
        Parameters
        ----------
        tasks:
            The tasks.  IDs must be unique; level-A/B CPU assignments must
            fall in ``range(m)``.
        m:
            Number of identical unit-speed processors.
        """
        if m <= 0:
            raise ValueError(f"m must be >= 1, got {m}")
        self.m = m
        self._tasks: Tuple[Task, ...] = tuple(sorted(tasks, key=lambda t: t.task_id))
        ids = [t.task_id for t in self._tasks]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate task_ids: {dupes}")
        for t in self._tasks:
            if t.cpu is not None and not 0 <= t.cpu < m:
                raise ValueError(
                    f"task {t.task_id} pinned to cpu {t.cpu}, outside range(0, {m})"
                )
        self._by_id: Dict[int, Task] = {t.task_id: t for t in self._tasks}

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, task_id: int) -> Task:
        return self._by_id[task_id]

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._by_id

    @property
    def tasks(self) -> Tuple[Task, ...]:
        """All tasks, ordered by ``task_id``."""
        return self._tasks

    # ------------------------------------------------------------------
    # Level / CPU views
    # ------------------------------------------------------------------
    def level(self, level: CriticalityLevel) -> Tuple[Task, ...]:
        """All tasks of exactly the given criticality level."""
        return tuple(t for t in self._tasks if t.level is level)

    def at_or_above(self, level: CriticalityLevel) -> Tuple[Task, ...]:
        """All tasks with criticality at or above *level* (paper Sec. 1)."""
        return tuple(t for t in self._tasks if t.level.at_or_above(level))

    def on_cpu(self, cpu: int, level: Optional[CriticalityLevel] = None) -> Tuple[Task, ...]:
        """Partitioned tasks pinned to *cpu*, optionally filtered by level."""
        return tuple(
            t
            for t in self._tasks
            if t.cpu == cpu and (level is None or t.level is level)
        )

    # ------------------------------------------------------------------
    # Utilization accounting
    # ------------------------------------------------------------------
    def utilization(
        self,
        analysis_level: CriticalityLevel,
        level: Optional[CriticalityLevel] = None,
    ) -> float:
        """Total utilization at *analysis_level*.

        Sums ``C_i(analysis_level)/T_i`` over tasks with criticality at or
        above *analysis_level* (or over exactly *level* if given).  Tasks
        lacking a PWCET at the analysis level contribute zero (that is
        only possible for level-D tasks, which are best-effort).
        """
        if level is not None:
            pool: Iterable[Task] = self.level(level)
        else:
            pool = self.at_or_above(analysis_level)
        total = 0.0
        for t in pool:
            if analysis_level in t.pwcets:
                total += t.utilization(analysis_level)
        return total

    def cpu_ab_utilization(self, cpu: int, analysis_level: CriticalityLevel) -> float:
        """Level-A+B utilization pinned to *cpu*, measured at *analysis_level*.

        This is the per-CPU "supply loss" seen by level C when
        ``analysis_level is CriticalityLevel.C``.
        """
        total = 0.0
        for t in self.on_cpu(cpu):
            if t.level.is_hard and analysis_level in t.pwcets:
                total += t.utilization(analysis_level)
        return total

    def level_c_supply(self) -> List[float]:
        """Per-CPU processor share available to level C (normal operation).

        CPU ``p`` contributes ``1 - U_AB^C(p)`` where the A/B utilizations
        use level-C PWCETs, matching Sec. 2's view of levels A/B as CPU
        supply unavailable to level C.
        """
        return [
            1.0 - self.cpu_ab_utilization(p, CriticalityLevel.C) for p in range(self.m)
        ]

    # ------------------------------------------------------------------
    # Validation used by generators and analysis
    # ------------------------------------------------------------------
    def validate_partitioning(self) -> None:
        """Check per-CPU A/B capacity and global level-C capacity.

        Raises :class:`ValueError` if any CPU is over-committed by its A/B
        partition at that partition's own analysis level, or if level-C
        total utilization (plus A/B interference at level C) exceeds the
        platform capacity ``m``.
        """
        for p in range(self.m):
            for lvl in (CriticalityLevel.A, CriticalityLevel.B):
                u = sum(
                    t.utilization(lvl)
                    for t in self.on_cpu(p)
                    if t.level.at_or_above(lvl) and lvl in t.pwcets
                )
                if u > 1.0 + 1e-9:
                    raise ValueError(
                        f"cpu {p} over-committed at level {lvl.name}: U={u:.4f} > 1"
                    )
        uc = self.utilization(CriticalityLevel.C)
        if uc > self.m + 1e-9:
            raise ValueError(
                f"level-C analysis utilization U={uc:.4f} exceeds platform capacity m={self.m}"
            )

    def __repr__(self) -> str:  # pragma: no cover - formatting only
        counts = {
            lvl.name: len(self.level(lvl))
            for lvl in CriticalityLevel
            if self.level(lvl)
        }
        return f"TaskSet(m={self.m}, n={len(self)}, levels={counts})"
