"""Command-line interface: ``python -m repro.cli`` (or ``repro-mc2``).

Subcommands:

* ``generate`` — emit a Sec. 5 task set as JSON;
* ``analyze``  — schedulability test + response-time bounds for a task
  set (from a file or freshly generated);
* ``simulate`` — run one overload-recovery experiment and print its
  metrics (optionally as JSON);
* ``figures``  — regenerate one of the paper's figures;
* ``trace``    — summarize or convert JSONL event traces
  (:mod:`repro.obs`);
* ``faults``   — fault-injection campaigns, scorecards, failing-plan
  shrinking and repro replay (:mod:`repro.faults`);
* ``sweep``    — checkpointed-campaign management: ``resume`` drives any
  interrupted campaign under a directory to completion, ``status``
  reports per-shard progress (:mod:`repro.runtime.shard`);
* ``status`` / ``top`` — live fleet dashboards over a campaign
  directory's telemetry streams (:mod:`repro.obs.telemetry`), rendered
  from the files alone — no coordinator process; ``--watch`` refreshes,
  ``--prom-out`` / ``--snapshot-out`` export Prometheus / canonical
  JSON.  ``status --service HOST:PORT`` asks a running coordinator
  instead of reading files;
* ``serve`` / ``worker`` / ``submit`` / ``jobs`` — the distributed
  campaign service (:mod:`repro.serve`): ``serve`` runs the
  coordinator over a campaign root, ``worker`` connects an execution
  client, ``submit`` registers a campaign document, ``jobs`` lists
  per-campaign progress.  Sweeps route through the fabric with
  ``--service HOST:PORT`` on ``simulate``/``figures``/``traffic``.

Examples::

    repro-mc2 generate --seed 2015 -o ts.json
    repro-mc2 analyze ts.json
    repro-mc2 simulate ts.json --scenario SHORT --monitor simple:0.6
    repro-mc2 simulate --trace-dir traces/ --metrics-out run.json
    repro-mc2 figures --figure 6 --tasksets 5
    repro-mc2 figures --figure 7 --jobs 4 --cache-dir ~/.cache/repro-mc2
    repro-mc2 trace summarize traces/run-0123abcd4567.jsonl
    repro-mc2 trace convert traces/run-0123abcd4567.jsonl -o chrome.json
    repro-mc2 faults run --cells 50 --jobs 4 -o scorecard.json
    repro-mc2 faults run --fault-free --cells 200 --jobs 4
    repro-mc2 faults run --cells 50 --checkpoint-dir ckpt/ --jobs 4
    repro-mc2 faults resume ckpt/ --jobs 4
    repro-mc2 faults report scorecard.json
    repro-mc2 faults shrink scorecard.json -o repro.json
    repro-mc2 faults replay repro.json
    repro-mc2 figures --figure 7 --jobs 4 --checkpoint-dir ckpt/
    repro-mc2 sweep status ckpt/
    repro-mc2 sweep resume ckpt/ --jobs 4
    repro-mc2 faults run --cells 50 --checkpoint-dir ckpt/ --jobs 4 --telemetry
    repro-mc2 status ckpt/ --watch
    repro-mc2 top ckpt/
    repro-mc2 status ckpt/ --prom-out metrics.prom --snapshot-out telemetry.json
    repro-mc2 serve --root serve-root/ --port 7777
    repro-mc2 worker --connect 127.0.0.1:7777 --cache-dir ~/.cache/repro-mc2
    repro-mc2 submit serve-root/abc123/campaign.json --connect 127.0.0.1:7777 --wait
    repro-mc2 jobs --connect 127.0.0.1:7777
    repro-mc2 figures --figure 7 --service 127.0.0.1:7777
    repro-mc2 status --service 127.0.0.1:7777 --json

``simulate`` and ``figures`` build declarative
:class:`~repro.runtime.spec.RunSpec` grids and submit them through a
:mod:`repro.runtime.executor` backend: ``--jobs N`` fans the sweep out
over N worker processes, ``--cache-dir`` reuses previously simulated
cells by content address (a re-run of an unchanged grid simulates
nothing), and ``--checkpoint-dir`` makes the sweep *durable* — cells
are executed in content-addressed shards whose results land atomically
on disk, so a killed run (any signal, any worker) is resumed from its
completed shards by ``repro-mc2 sweep resume``.  Observability flags
are observation-only: ``--trace-dir``
streams one JSONL event trace per simulated cell, ``--metrics-out``
archives the per-cell sweep report, ``--progress`` reports live sweep
progress on stderr — none of them changes any result or cache key.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.analysis.bounds import gel_response_bounds
from repro.analysis.schedulability import check_level_c
from repro.experiments.figures import (
    DEFAULT_SWEEP_VALUES,
    adaptive_sweep,
    figure6,
    figure7,
    figure8,
)
from repro.experiments.overhead import measure_overheads
from repro.io.results_json import run_result_to_dict
from repro.io.taskset_json import taskset_from_json, taskset_to_json
from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet
from repro.obs.progress import ProgressReporter
from repro.runtime.executor import SweepExecutor, make_executor
from repro.runtime.spec import (
    KernelSpec,
    MonitorSpec,
    ObsSpec,
    RunSpec,
    ScenarioSpec,
    TaskSetSpec,
)
from repro.sim.backend import kernel_backend_registry
from repro.workload.generator import (
    GeneratorParams,
    generate_taskset,
    generate_tasksets,
    taskset_seeds,
)
from repro.workload.scenarios import DOUBLE, LONG, SHORT

__all__ = ["main", "build_parser", "parse_monitor"]

_SCENARIOS = {"SHORT": SHORT, "LONG": LONG, "DOUBLE": DOUBLE}


def parse_monitor(text: str) -> MonitorSpec:
    """Parse ``kind[:param[:extra]]``, e.g. ``simple:0.6`` or ``clamped:0.6:0.3``."""
    parts = text.split(":")
    kind = parts[0].lower()
    param = float(parts[1]) if len(parts) > 1 else 1.0
    extra = float(parts[2]) if len(parts) > 2 else None
    return MonitorSpec(kind, param, extra)


def _load_taskset(path: Optional[str], seed: int, m: int) -> TaskSet:
    if path:
        with open(path, "r", encoding="utf-8") as fh:
            return taskset_from_json(fh.read())
    return generate_taskset(seed, GeneratorParams(m=m))


def _taskset_spec(path: Optional[str], seed: int, m: int) -> TaskSetSpec:
    """The :class:`TaskSetSpec` matching :func:`_load_taskset`'s choice."""
    if path:
        with open(path, "r", encoding="utf-8") as fh:
            return TaskSetSpec(inline=fh.read())
    return TaskSetSpec.generated(seed, GeneratorParams(m=m))


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep (default: 1, serial)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed result cache; re-runs only "
                             "simulate cells whose spec changed")
    parser.add_argument("--trace-dir", metavar="DIR",
                        help="stream one JSONL event trace per simulated cell "
                             "into DIR (observation only; cached cells are "
                             "not re-simulated and leave no trace)")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write the per-cell sweep report + executor "
                             "metrics as JSON to FILE")
    parser.add_argument("--progress", action="store_true",
                        help="report live sweep progress (done/total, cache "
                             "hit rate, ETA) on stderr")
    parser.add_argument("--checkpoint-dir", metavar="DIR",
                        help="checkpoint the sweep into content-addressed "
                             "shards under DIR; a killed run resumes from "
                             "completed shards (repro-mc2 sweep resume DIR)")
    parser.add_argument("--shard-size", type=int, default=16, metavar="N",
                        help="cells per checkpoint shard (default: 16)")
    parser.add_argument("--batch-cells", action="store_true",
                        help="simulate whole slices of the grid per process, "
                             "materializing each distinct task set once per "
                             "slice (identical results, less regeneration)")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable kernel phase profiling and (with "
                             "--checkpoint-dir) per-worker NDJSON telemetry "
                             "streams readable by repro-mc2 status/top "
                             "(observation only; results are identical)")
    parser.add_argument("--service", metavar="HOST:PORT",
                        help="route the sweep through a running repro-mc2 "
                             "serve coordinator instead of executing locally "
                             "(identical results and artifacts)")
    parser.add_argument("--merged-out", metavar="FILE",
                        help="also write the canonical merged artifact plus "
                             "its repro-provenance manifest (verifiable with "
                             "repro-mc2 verify) to FILE, on every backend")


def _make_executor(args: argparse.Namespace) -> SweepExecutor:
    progress = ProgressReporter() if args.progress else None
    return make_executor(jobs=args.jobs, cache_dir=args.cache_dir, progress=progress,
                         checkpoint_dir=args.checkpoint_dir,
                         shard_size=args.shard_size,
                         batch_cells=args.batch_cells,
                         telemetry=args.telemetry,
                         service_addr=getattr(args, "service", None),
                         merged_out=getattr(args, "merged_out", None))


def _obs_spec(args: argparse.Namespace) -> ObsSpec:
    return ObsSpec(trace_dir=args.trace_dir)


def _write_metrics(path: str, executor: SweepExecutor) -> None:
    """Archive the sweep report (plus executor metrics) as JSON."""
    doc = executor.report.to_dict()
    doc["metrics"] = executor.metrics.to_dict()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def _warn_truncated(executor: SweepExecutor) -> None:
    """Flag cells whose recovery was still open at the horizon."""
    trunc = executor.report.truncated_cells
    if not trunc:
        return
    print(f"warning: {len(trunc)} of {executor.report.cells_total} cells hit "
          "the simulation horizon with recovery still open; their "
          "dissipation times are lower bounds, not measurements "
          "(a longer horizon would settle them)", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    ap = argparse.ArgumentParser(
        prog="repro-mc2",
        description="MC² overload recovery: analysis, simulation, reproduction.",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a Sec. 5 task set as JSON")
    g.add_argument("--seed", type=int, default=2015)
    g.add_argument("--m", type=int, default=4, help="number of CPUs")
    g.add_argument("-o", "--output", help="output path (default: stdout)")

    a = sub.add_parser("analyze", help="schedulability + response-time bounds")
    a.add_argument("taskset", nargs="?", help="task-set JSON file")
    a.add_argument("--seed", type=int, default=2015)
    a.add_argument("--m", type=int, default=4)

    s = sub.add_parser("simulate", help="run one overload-recovery experiment")
    s.add_argument("taskset", nargs="?", help="task-set JSON file")
    s.add_argument("--seed", type=int, default=2015)
    s.add_argument("--m", type=int, default=4)
    s.add_argument("--scenario", choices=sorted(_SCENARIOS), default="SHORT")
    s.add_argument("--monitor", default="simple:0.6",
                   help="kind[:param[:extra]] (simple/adaptive/stepped/clamped/none)")
    s.add_argument("--horizon", type=float, default=30.0)
    s.add_argument("--no-budgets", action="store_true",
                   help="disable level-C execution budgets (harsher overload)")
    s.add_argument("--kernel-backend", choices=sorted(kernel_backend_registry.keys()),
                   default="reference",
                   help="simulator core (default: reference; soa is the "
                        "struct-of-arrays hot path, gated to byte-identical "
                        "traces). Part of the cache key when non-default.")
    s.add_argument("--json", action="store_true", help="emit the result as JSON")
    _add_executor_flags(s)

    f = sub.add_parser("figures", help="regenerate a paper figure")
    f.add_argument("--figure", choices=["6", "7", "8", "9"], required=True)
    f.add_argument("--tasksets", type=int, default=5)
    f.add_argument("--seed", type=int, default=2015)
    _add_executor_flags(f)

    tr = sub.add_parser(
        "traffic",
        help="open-system traffic sweep: overload from Poisson/MMPP "
             "request sources served by level-C/D server tasks",
    )
    tr.add_argument("--figure", choices=["load", "burst"], required=True,
                    help="load: dissipation vs offered load (Poisson); "
                         "burst: minimum s(t) vs burst size (MMPP)")
    tr.add_argument("--tasksets", type=int, default=5)
    tr.add_argument("--seed", type=int, default=2015)
    tr.add_argument("--m", type=int, default=8,
                    help="platform size in CPUs, 6-64 (default: 8); axes "
                         "are per-CPU so sweeps compare across sizes")
    tr.add_argument("--horizon", type=float, default=10.0)
    tr.add_argument("--traffic-seed", type=int, default=0,
                    help="seed for the arrival sources (default: 0)")
    tr.add_argument("--values", type=float, nargs="+", default=None,
                    metavar="X",
                    help="x-axis override: offered loads (load) or burst "
                         "sizes (burst), per CPU")
    _add_executor_flags(tr)

    t = sub.add_parser("trace", help="inspect or convert JSONL event traces")
    tsub = t.add_subparsers(dest="trace_command", required=True)
    tsum = tsub.add_parser("summarize",
                           help="event counts, time range and tasks of a trace")
    tsum.add_argument("file", help="JSONL trace file (from --trace-dir)")
    tsum.add_argument("--json", action="store_true", help="emit the summary as JSON")
    tconv = tsub.add_parser("convert",
                            help="convert to Chrome/Perfetto trace-event JSON")
    tconv.add_argument("file", help="JSONL trace file (from --trace-dir)")
    tconv.add_argument("-o", "--output", required=True,
                       help="output path (open in Perfetto or chrome://tracing)")

    fl = sub.add_parser("faults",
                        help="fault-injection campaigns and repro tooling")
    fsub = fl.add_subparsers(dest="faults_command", required=True)

    fr = fsub.add_parser("run", help="run a seeded fault campaign")
    fr.add_argument("--seed", type=int, default=2015,
                    help="master campaign seed (grid + plans)")
    fr.add_argument("--cells", type=int, default=50,
                    help="campaign cells (faulted mode appends one "
                         "fault-free baseline per distinct run spec)")
    fr.add_argument("--fault-free", action="store_true",
                    help="acceptance-gate mode: empty plans; exits "
                         "non-zero on any invariant violation")
    fr.add_argument("--tasksets", type=int, default=8,
                    help="task sets in the underlying grid")
    fr.add_argument("--m", type=int, default=4,
                    help="platform size assumed by CpuStall plans")
    fr.add_argument("--horizon", type=float, default=30.0)
    fr.add_argument("--max-faults", type=int, default=3,
                    help="maximum faults per random plan")
    fr.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes (default: 1, serial)")
    fr.add_argument("--trace-dir", metavar="DIR",
                    help="stream one JSONL event trace per cell into DIR")
    fr.add_argument("-o", "--out", metavar="FILE",
                    help="write the scorecard JSON to FILE")
    fr.add_argument("--progress", action="store_true",
                    help="report live campaign progress on stderr")
    fr.add_argument("--json", action="store_true",
                    help="emit the scorecard summary as JSON")
    fr.add_argument("--checkpoint-dir", metavar="DIR",
                    help="checkpoint the campaign into durable shards under "
                         "DIR; resume a killed run with faults resume DIR")
    fr.add_argument("--shard-size", type=int, default=16, metavar="N",
                    help="cells per checkpoint shard (default: 16)")
    fr.add_argument("--telemetry", action="store_true",
                    help="enable kernel phase profiling and (with "
                         "--checkpoint-dir) per-worker telemetry streams "
                         "for repro-mc2 status/top (observation only)")

    fres = fsub.add_parser("resume",
                           help="re-attach to a checkpointed fault campaign "
                                "and drive it to completion")
    fres.add_argument("dir", help="checkpoint directory (or its root)")
    fres.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes (default: 1)")
    fres.add_argument("--lease-ttl", type=float, default=60.0, metavar="SEC",
                      help="seconds after which a dead worker's shard lease "
                           "is stolen (default: 60)")
    fres.add_argument("--progress", action="store_true",
                      help="report live campaign progress on stderr")
    fres.add_argument("-o", "--out", metavar="FILE",
                      help="also write the merged scorecard JSON to FILE")
    fres.add_argument("--json", action="store_true",
                      help="emit the scorecard summary as JSON")
    fres.add_argument("--telemetry", action="store_true",
                      help="write per-worker telemetry streams while resuming "
                           "(observation only)")

    fp = fsub.add_parser("report", help="render a saved scorecard")
    fp.add_argument("scorecard", help="scorecard JSON (from faults run -o)")
    fp.add_argument("--json", action="store_true",
                    help="emit the summary as JSON")

    fs = fsub.add_parser("shrink",
                         help="shrink a violating campaign cell to a "
                              "minimal replayable repro")
    fs.add_argument("scorecard", help="scorecard JSON (from faults run -o)")
    fs.add_argument("--cell", metavar="KEYPREFIX",
                    help="cell key prefix (default: first violating cell)")
    fs.add_argument("-o", "--out", metavar="FILE", required=True,
                    help="write the repro artifact JSON to FILE")

    fy = fsub.add_parser("replay", help="re-execute a repro artifact")
    fy.add_argument("repro", help="repro JSON (from faults shrink -o)")
    fy.add_argument("--json", action="store_true",
                    help="emit the replay outcome as JSON")

    sw = sub.add_parser("sweep",
                        help="manage checkpointed campaigns "
                             "(resume interrupted runs, inspect shards)")
    swsub = sw.add_subparsers(dest="sweep_command", required=True)
    swr = swsub.add_parser("resume",
                           help="drive every unfinished campaign under a "
                                "directory to completion and merge")
    swr.add_argument("dir", help="campaign directory or checkpoint root")
    swr.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (default: 1)")
    swr.add_argument("--lease-ttl", type=float, default=60.0, metavar="SEC",
                     help="seconds after which a dead worker's shard lease "
                          "is stolen (default: 60)")
    swr.add_argument("--cache-dir", metavar="DIR",
                     help="content-addressed result cache for sweep cells")
    swr.add_argument("--progress", action="store_true",
                     help="report live progress on stderr")
    swr.add_argument("--telemetry", action="store_true",
                     help="write per-worker telemetry streams while resuming "
                          "(observation only)")
    sws = swsub.add_parser("status",
                           help="per-shard completion/ownership of every "
                                "campaign under a directory")
    sws.add_argument("dir", help="campaign directory or checkpoint root")
    sws.add_argument("--json", action="store_true",
                     help="emit the status as JSON")

    sv = sub.add_parser("serve",
                        help="run the repro-serve coordinator over a "
                             "campaign root (submit/lease/heartbeat/merge)")
    sv.add_argument("--root", required=True, metavar="DIR",
                    help="campaign root directory (created if missing; "
                         "same layout as --checkpoint-dir roots)")
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: 127.0.0.1)")
    sv.add_argument("--port", type=int, default=0, metavar="N",
                    help="TCP port (default: 0 = ephemeral)")
    sv.add_argument("--port-file", metavar="FILE",
                    help="write the bound port to FILE once listening "
                         "(for scripts using --port 0)")
    sv.add_argument("--lease-ttl", type=float, default=60.0, metavar="SEC",
                    help="seconds without a heartbeat before a worker's "
                         "shard lease is re-granted (default: 60)")
    sv.add_argument("--verify-fraction", type=float, default=0.0, metavar="F",
                    help="re-execute this seeded fraction of each worker's "
                         "committed cells before accepting a shard; a "
                         "divergent shard is re-queued and its worker "
                         "quarantined (default: 0 = trust workers)")
    sv.add_argument("--verify-seed", type=int, default=0, metavar="N",
                    help="seed for the verification sample (default: 0)")

    wk = sub.add_parser("worker",
                        help="connect a worker to a repro-serve coordinator: "
                             "lease shards, execute, stream results")
    wk.add_argument("--connect", required=True, metavar="HOST:PORT",
                    help="coordinator address (or a bare port on localhost)")
    wk.add_argument("--owner", metavar="NAME",
                    help="worker identity (default: host:pid)")
    wk.add_argument("--once", action="store_true",
                    help="exit once every registered campaign is drained "
                         "(default: keep polling for new campaigns)")
    wk.add_argument("--poll", type=float, default=0.5, metavar="SEC",
                    help="idle poll interval when no work is grantable "
                         "(default: 0.5)")
    wk.add_argument("--cache-dir", metavar="DIR",
                    help="content-addressed result cache for sweep cells")
    wk.add_argument("--telemetry", action="store_true",
                    help="relay repro-telemetry records to the coordinator "
                         "so status/top on the serve root see this worker")

    sm = sub.add_parser("submit",
                        help="register a campaign document with a "
                             "running coordinator")
    sm.add_argument("campaign", help="campaign JSON file (a campaign.json "
                                     "document, e.g. from --checkpoint-dir)")
    sm.add_argument("--connect", required=True, metavar="HOST:PORT",
                    help="coordinator address")
    sm.add_argument("--wait", action="store_true",
                    help="block until every shard of the campaign is done")
    sm.add_argument("--timeout", type=float, default=None, metavar="SEC",
                    help="--wait deadline (default: none)")
    sm.add_argument("--json", action="store_true",
                    help="emit the submission acknowledgement as JSON")

    jb = sub.add_parser("jobs",
                        help="list a coordinator's campaigns and progress")
    jb.add_argument("--connect", required=True, metavar="HOST:PORT",
                    help="coordinator address")
    jb.add_argument("--json", action="store_true",
                    help="emit the campaign list as JSON")

    st = sub.add_parser("status",
                        help="live campaign dashboard (shards + telemetry), "
                             "reconstructed from the campaign files alone "
                             "or fetched from a coordinator (--service)")
    st.add_argument("dir", nargs="?",
                    help="campaign directory or checkpoint root "
                         "(omit when using --service)")
    st.add_argument("--service", metavar="HOST:PORT",
                    help="ask a running repro-mc2 serve coordinator instead "
                         "of reading campaign files")
    st.add_argument("--watch", action="store_true",
                    help="refresh the dashboard until interrupted")
    st.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                    help="--watch refresh interval (default: 2.0)")
    st.add_argument("--ttl", type=float, default=15.0, metavar="SEC",
                    help="seconds of telemetry silence before a worker "
                         "counts as stale (default: 15)")
    st.add_argument("--json", action="store_true",
                    help="emit the telemetry aggregate as JSON")
    st.add_argument("--prom-out", metavar="FILE",
                    help="also write a Prometheus textfile export to FILE")
    st.add_argument("--snapshot-out", metavar="FILE",
                    help="also write the canonical JSON aggregate to FILE")

    tp = sub.add_parser("top",
                        help="per-worker telemetry table (cells/s, events/s, "
                             "RSS) for a campaign directory")
    tp.add_argument("dir", help="campaign directory or checkpoint root")
    tp.add_argument("--watch", action="store_true",
                    help="refresh the table until interrupted")
    tp.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                    help="--watch refresh interval (default: 2.0)")
    tp.add_argument("--ttl", type=float, default=15.0, metavar="SEC",
                    help="staleness threshold in seconds (default: 15)")

    vf = sub.add_parser("verify",
                        help="attest a merged artifact against its "
                             "repro-provenance manifest: hash check, "
                             "per-cell digests, seeded re-execution")
    vf.add_argument("manifest",
                    help="a *.provenance.json manifest (or a campaign "
                         "directory containing merged.provenance.json)")
    vf.add_argument("--all", action="store_true",
                    help="re-execute every cell instead of a seeded sample")
    vf.add_argument("--sample", type=int, default=4, metavar="N",
                    help="cells to re-execute when not --all (default: 4)")
    vf.add_argument("--sample-seed", type=int, default=0, metavar="N",
                    help="seed for the re-execution sample (default: 0)")
    vf.add_argument("--campaign", metavar="FILE",
                    help="campaign document for re-execution (default: "
                         "campaign.json / <artifact>.campaign.json next "
                         "to the manifest)")
    vf.add_argument("--artifact", metavar="FILE",
                    help="merged artifact to check (default: the manifest's "
                         "recorded artifact name, next to the manifest)")
    vf.add_argument("--no-reexec", action="store_true",
                    help="skip re-execution; only check the artifact hash "
                         "and the per-cell digests it contains")
    vf.add_argument("--report", metavar="FILE",
                    help="also write the machine-readable VerifyReport "
                         "JSON to FILE")
    vf.add_argument("--json", action="store_true",
                    help="print the VerifyReport as JSON instead of text")

    return ap


def _cmd_generate(args: argparse.Namespace) -> int:
    ts = generate_taskset(args.seed, GeneratorParams(m=args.m))
    text = taskset_to_json(ts)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {len(ts)} tasks (m={ts.m}) to {args.output}")
    else:
        print(text)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    ts = _load_taskset(args.taskset, args.seed, args.m)
    print(f"{len(ts)} tasks on m={ts.m} CPUs; "
          f"U_C={ts.utilization(CriticalityLevel.C, level=CriticalityLevel.C):.3f}")
    res = check_level_c(ts)
    print(res.explain())
    if not res.schedulable:
        return 1
    bounds = gel_response_bounds(ts)
    print(f"shared delay term x = {bounds.x * 1e3:.3f} ms")
    print(f"{'task':<8}{'T (ms)':>10}{'C (ms)':>10}{'Y (ms)':>10}"
          f"{'bound (ms)':>12}{'xi (ms)':>10}")
    for t in ts.level(CriticalityLevel.C):
        xi = t.tolerance * 1e3 if t.tolerance is not None else float("nan")
        print(f"{t.label:<8}{t.period * 1e3:>10.1f}"
              f"{t.pwcet(CriticalityLevel.C) * 1e3:>10.2f}"
              f"{t.relative_pp * 1e3:>10.2f}"
              f"{bounds.absolute[t.task_id] * 1e3:>12.2f}{xi:>10.2f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = RunSpec(
        taskset=_taskset_spec(args.taskset, args.seed, args.m),
        scenario=ScenarioSpec.from_scenario(_SCENARIOS[args.scenario]),
        monitor=parse_monitor(args.monitor),
        kernel=KernelSpec(backend=args.kernel_backend),
        horizon=args.horizon,
        level_c_budgets=not args.no_budgets,
        obs=_obs_spec(args),
    )
    executor = _make_executor(args)
    [result] = executor.run([spec])
    if args.json:
        print(json.dumps(run_result_to_dict(result), indent=2))
    else:
        print(result.row())
    _warn_truncated(executor)
    if args.metrics_out:
        _write_metrics(args.metrics_out, executor)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    executor = _make_executor(args)
    obs = _obs_spec(args)
    refs = [TaskSetSpec.generated(seed)
            for seed in taskset_seeds(args.tasksets, args.seed)]
    if args.figure == "6":
        print(figure6(refs, s_values=DEFAULT_SWEEP_VALUES, executor=executor,
                      obs=obs)
              .render(unit_scale=1e3, unit="ms"))
    elif args.figure in ("7", "8"):
        sweep = adaptive_sweep(refs, a_values=DEFAULT_SWEEP_VALUES,
                               executor=executor, obs=obs)
        fig = figure7(sweep) if args.figure == "7" else figure8(sweep)
        scale, unit = (1e3, "ms") if args.figure == "7" else (1.0, "virtual speed")
        print(fig.render(unit_scale=scale, unit=unit))
    else:
        tasksets = generate_tasksets(args.tasksets, base_seed=args.seed)
        print(measure_overheads(tasksets, horizon=3.0,
                                trim_max_quantile=0.999).render())
        return 0
    stats = executor.stats
    print(f"  [executor] cells: {stats.cells_total}, simulated: "
          f"{stats.cells_simulated}, cache hits: {stats.cache_hits}")
    _warn_truncated(executor)
    if args.metrics_out:
        _write_metrics(args.metrics_out, executor)
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    from repro.experiments.traffic import (
        DEFAULT_BURSTS_PER_CPU,
        DEFAULT_LOADS_PER_CPU,
        figure_burst_size,
        figure_offered_load,
        render_sojourn_table,
    )
    from repro.workload.generator import GeneratorParams

    executor = _make_executor(args)
    obs = _obs_spec(args)
    refs = [TaskSetSpec.generated(seed, GeneratorParams(m=args.m))
            for seed in taskset_seeds(args.tasksets, args.seed)]
    raw = {}
    if args.figure == "load":
        values = tuple(args.values) if args.values else DEFAULT_LOADS_PER_CPU
        fig = figure_offered_load(
            refs, m=args.m, loads_per_cpu=values, horizon=args.horizon,
            seed=args.traffic_seed, executor=executor, obs=obs,
            results_out=raw,
        )
        print(fig.render(unit_scale=1e3, unit="ms"))
        xlabel = "load/CPU"
    else:
        values = tuple(args.values) if args.values else DEFAULT_BURSTS_PER_CPU
        fig = figure_burst_size(
            refs, m=args.m, bursts_per_cpu=values, horizon=args.horizon,
            seed=args.traffic_seed, executor=executor, obs=obs,
            results_out=raw,
        )
        print(fig.render(unit_scale=1.0, unit="virtual speed"))
        xlabel = "burst/CPU"
    table = render_sojourn_table(raw, xlabel=xlabel)
    if table.count("\n"):  # header plus at least one data row
        print()
        print(table)
    stats = executor.stats
    print(f"  [executor] cells: {stats.cells_total}, simulated: "
          f"{stats.cells_simulated}, cache hits: {stats.cache_hits}")
    _warn_truncated(executor)
    if args.metrics_out:
        _write_metrics(args.metrics_out, executor)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import summarize_trace, write_chrome_trace

    if args.trace_command == "summarize":
        summary = summarize_trace(args.file)
        if args.json:
            print(json.dumps(summary.to_dict(), indent=2))
        else:
            print(summary.render())
        return 0
    n = write_chrome_trace(args.file, args.output)
    print(f"wrote {n} trace events to {args.output}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import (
        CampaignConfig,
        Scorecard,
        build_campaign,
        replay_repro,
        run_campaign,
        shrink_plan,
        write_repro,
    )

    if args.faults_command == "run":
        config = CampaignConfig(
            seed=args.seed,
            cells=args.cells,
            fault_free=args.fault_free,
            tasksets=args.tasksets,
            m=args.m,
            horizon=args.horizon,
            max_faults=args.max_faults,
            trace_dir=args.trace_dir,
        )
        progress = ProgressReporter() if args.progress else None
        if args.checkpoint_dir:
            from repro.runtime.shard import run_sharded_campaign

            scorecard, cdir, stats = run_sharded_campaign(
                build_campaign(config), args.checkpoint_dir, jobs=args.jobs,
                shard_size=args.shard_size, progress=progress,
                meta={"fault_free": args.fault_free},
                telemetry=args.telemetry)
            print(f"checkpointed campaign {cdir} "
                  f"({stats.shards_claimed} shard(s) executed, "
                  f"{stats.shards_skipped} already done)", file=sys.stderr)
        else:
            if args.telemetry:
                from repro.obs.telemetry import enable_phase_profiling

                enable_phase_profiling(True)
            scorecard = run_campaign(build_campaign(config), jobs=args.jobs,
                                     progress=progress)
        if args.out:
            scorecard.save(args.out)
            print(f"wrote scorecard ({len(scorecard.outcomes)} cells) to {args.out}",
                  file=sys.stderr)
        if args.json:
            print(json.dumps(scorecard.summary(), indent=2, sort_keys=True))
        else:
            print(scorecard.render())
        # Only the fault-free campaign is a gate: a healthy simulator
        # must be violation-free without faults, while a faulted
        # campaign *producing* violations is working as intended.
        return 1 if (args.fault_free and not scorecard.ok) else 0

    if args.faults_command == "resume":
        from repro.runtime.shard import (
            CampaignStore,
            iter_campaign_dirs,
            merge_scorecard,
            resume_campaign,
        )

        dirs = [d for d in iter_campaign_dirs(args.dir)
                if CampaignStore(d).load().kind == "faults"]
        if not dirs:
            print(f"error: no fault campaigns under {args.dir}", file=sys.stderr)
            return 1
        progress = ProgressReporter() if args.progress else None
        exit_code = 0
        for cdir in dirs:
            campaign = CampaignStore(cdir).load()
            stats = resume_campaign(cdir, jobs=args.jobs,
                                    lease_ttl=args.lease_ttl,
                                    progress=progress,
                                    telemetry=args.telemetry)
            print(f"resumed {cdir} ({stats.shards_claimed} shard(s) executed, "
                  f"{stats.shards_skipped} already done)", file=sys.stderr)
            scorecard = merge_scorecard(cdir)
            if args.out:
                scorecard.save(args.out)
                print(f"wrote scorecard ({len(scorecard.outcomes)} cells) "
                      f"to {args.out}", file=sys.stderr)
            if args.json:
                print(json.dumps(scorecard.summary(), indent=2, sort_keys=True))
            else:
                print(scorecard.render())
            # Same gate semantics as `faults run`: the campaign manifest
            # remembers whether it was a fault-free acceptance run.
            if campaign.meta.get("fault_free") and not scorecard.ok:
                exit_code = 1
        return exit_code

    if args.faults_command == "report":
        scorecard = Scorecard.load(args.scorecard)
        if args.json:
            print(json.dumps(scorecard.summary(), indent=2, sort_keys=True))
        else:
            print(scorecard.render())
        return 0

    if args.faults_command == "shrink":
        scorecard = Scorecard.load(args.scorecard)
        if args.cell:
            outcome = scorecard.find(args.cell)
        else:
            violating = scorecard.violating()
            if not violating:
                print("error: scorecard has no violating cells to shrink",
                      file=sys.stderr)
                return 1
            outcome = violating[0]
        result = shrink_plan(outcome.cell)
        write_repro(result, args.out)
        print(f"shrunk {len(result.original.plan.faults)} fault(s) to "
              f"{len(result.plan.faults)} in {result.evaluations} evaluations "
              f"(invariants: {', '.join(result.invariants)})")
        for step in result.steps:
            print(f"  {step}")
        for f in result.plan.faults:
            print(f"  keeps: {f}")
        print(f"wrote repro artifact to {args.out}")
        return 0

    outcome, reproduced = replay_repro(args.repro)
    if args.json:
        print(json.dumps({
            "reproduced": reproduced,
            "violations": [v.to_dict() for v in outcome.violations],
            "fingerprint": outcome.fingerprint,
        }, indent=2, sort_keys=True))
    else:
        counts = ", ".join(f"{k}x{n}" for k, n in
                           sorted(outcome.violation_counts().items()))
        print(f"replay {'reproduced' if reproduced else 'DID NOT reproduce'} "
              f"the failure ({counts or 'no violations'})")
    return 0 if reproduced else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.obs.report import render_shard_table
    from repro.runtime.cache import ResultCache
    from repro.runtime.shard import (
        CampaignStore,
        campaign_status,
        iter_campaign_dirs,
        resume_campaign,
    )

    dirs = iter_campaign_dirs(args.dir)
    if not dirs:
        print(f"error: no campaigns under {args.dir} "
              "(expected campaign.json manifests)", file=sys.stderr)
        return 1

    if args.sweep_command == "status":
        docs = []
        for cdir in dirs:
            campaign = CampaignStore(cdir).load()
            shards = campaign_status(cdir)
            if args.json:
                docs.append({
                    "dir": str(cdir),
                    "kind": campaign.kind,
                    "key": campaign.campaign_key,
                    "cells": len(campaign.cells),
                    "shards": [s.to_dict() for s in shards],
                })
            else:
                print(f"{cdir} [{campaign.kind}] "
                      f"key={campaign.campaign_key[:12]} "
                      f"cells={len(campaign.cells)}")
                print(render_shard_table(shards))
        if args.json:
            print(json.dumps(docs, indent=2))
        return 0

    # resume: drive every campaign (sweep or faults) to completion + merge.
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    progress = ProgressReporter() if args.progress else None
    for cdir in dirs:
        campaign = CampaignStore(cdir).load()
        stats = resume_campaign(cdir, jobs=args.jobs, cache=cache,
                                lease_ttl=args.lease_ttl, progress=progress,
                                telemetry=args.telemetry)
        print(f"resumed {cdir} [{campaign.kind}]: "
              f"{stats.shards_claimed} shard(s) executed, "
              f"{stats.shards_skipped} already done; "
              f"merged -> {CampaignStore(cdir).merged_path}")
    return 0


def _campaign_aggregate(dirs) -> dict:
    """One deterministic telemetry aggregate over every campaign in *dirs*."""
    from repro.obs.telemetry import TelemetryAggregator

    agg = TelemetryAggregator()
    for cdir in dirs:
        agg.add_campaign(cdir)
    return agg.aggregate()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.coordinator import serve

    return serve(args.root, host=args.host, port=args.port,
                 lease_ttl=args.lease_ttl, port_file=args.port_file,
                 verify_fraction=args.verify_fraction,
                 verify_seed=args.verify_seed)


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.provenance import verify_manifest
    from repro.util.atomicio import atomic_write_text

    manifest = pathlib.Path(args.manifest)
    if manifest.is_dir():
        manifest = manifest / "merged.provenance.json"
    report = verify_manifest(
        manifest,
        campaign_path=args.campaign,
        artifact_path=args.artifact,
        all_cells=getattr(args, "all"),
        sample=args.sample,
        sample_seed=args.sample_seed,
        reexecute=not args.no_reexec,
    )
    if args.report:
        atomic_write_text(
            args.report,
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
        )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.runtime.cache import ResultCache
    from repro.serve.worker import run_worker

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    return run_worker(args.connect, owner=args.owner, cache=cache,
                      telemetry=args.telemetry, poll_s=args.poll,
                      once=args.once)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServiceClient

    with open(args.campaign, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    with ServiceClient(args.connect) as client:
        ack = client.submit(doc)
        row = {"key": ack.key, "shards": ack.shards,
               "shards_done": ack.shards_done, "created": ack.created}
        if args.wait:
            done = client.wait(ack.key, timeout_s=args.timeout)
            row["shards_done"] = done["shards_done"]
            row["merged"] = done.get("merged", False)
    if args.json:
        print(json.dumps(row, indent=2, sort_keys=True))
    else:
        verb = "registered" if ack.created else "already known"
        print(f"campaign {ack.key[:12]} {verb}: "
              f"{row['shards_done']}/{ack.shards} shard(s) done")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.serve.client import ServiceClient

    with ServiceClient(args.connect) as client:
        rows = client.jobs()
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if not rows:
        print("no campaigns registered")
        return 0
    print(f"{'key':<14}{'kind':<8}{'cells':>7}{'shards':>8}"
          f"{'done':>6}{'leased':>8}{'merged':>8}{'quar':>6}")
    for row in rows:
        print(f"{row['key'][:12]:<14}{row['kind']:<8}{row['cells']:>7}"
              f"{row['shards']:>8}{row['shards_done']:>6}{row['leased']:>8}"
              f"{str(bool(row['merged'])).lower():>8}"
              f"{row.get('quarantined', 0):>6}")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.export import write_json_snapshot, write_prometheus_textfile
    from repro.obs.telemetry import render_status
    from repro.runtime.shard import iter_campaign_dirs

    if args.service:
        from repro.serve.client import ServiceClient

        with ServiceClient(args.service) as client:
            reply = client.status()
        if args.json:
            doc = dict(reply.aggregate)
            doc["source"] = "service"
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(reply.text)
        if args.prom_out:
            write_prometheus_textfile(reply.aggregate, args.prom_out)
        if args.snapshot_out:
            write_json_snapshot(reply.aggregate, args.snapshot_out)
        return 0
    if not args.dir:
        print("error: status needs a campaign directory or --service ADDR",
              file=sys.stderr)
        return 1

    dirs = iter_campaign_dirs(args.dir)
    if not dirs:
        print(f"error: no campaigns under {args.dir} "
              "(expected campaign.json manifests)", file=sys.stderr)
        return 1

    def emit_once() -> None:
        if args.json:
            doc = dict(_campaign_aggregate(dirs))
            doc["source"] = "file"
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            for cdir in dirs:
                print(str(cdir))
                print(render_status(cdir, ttl=args.ttl))
        if args.prom_out or args.snapshot_out:
            agg = _campaign_aggregate(dirs)
            if args.prom_out:
                write_prometheus_textfile(agg, args.prom_out)
            if args.snapshot_out:
                write_json_snapshot(agg, args.snapshot_out)

    try:
        while True:
            if args.watch:
                print("\x1b[2J\x1b[H", end="")
            emit_once()
            if not args.watch:
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.telemetry import render_top
    from repro.runtime.shard import iter_campaign_dirs

    dirs = iter_campaign_dirs(args.dir)
    if not dirs:
        print(f"error: no campaigns under {args.dir} "
              "(expected campaign.json manifests)", file=sys.stderr)
        return 1
    try:
        while True:
            if args.watch:
                print("\x1b[2J\x1b[H", end="")
            for cdir in dirs:
                print(str(cdir))
                print(render_top(cdir, ttl=args.ttl))
            if not args.watch:
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "analyze": _cmd_analyze,
        "simulate": _cmd_simulate,
        "figures": _cmd_figures,
        "traffic": _cmd_traffic,
        "trace": _cmd_trace,
        "faults": _cmd_faults,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "status": _cmd_status,
        "top": _cmd_top,
        "verify": _cmd_verify,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError as exc:
            # Still not an error, but don't swallow it silently: a close
            # failure here can hide a genuinely broken output path.
            print(f"warning: closing stdout after broken pipe failed: {exc}",
                  file=sys.stderr)
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
