"""Canonical JSON + content addressing, shared by every artifact layer.

Every durable artifact in this repo (RunSpec keys, campaign manifests,
merged results, provenance manifests, telemetry aggregates) relies on
the same convention: *canonical JSON* is ``json.dumps`` with sorted
keys, compact separators, and ``allow_nan=False`` — a bijection from a
JSON-able document to one byte string, independent of dict insertion
order.  A document's *content address* is the sha256 hex digest of its
canonical JSON.

Historically each module carried its own ``_CANON`` dict; this module
is the one shared definition so provenance digests, cache
content-address checks, and manifest keys can never drift apart.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Union

__all__ = ["CANON", "canonical_json", "sha256_hex", "doc_digest"]

#: kwargs for ``json.dumps`` producing canonical JSON.
CANON = dict(sort_keys=True, separators=(",", ":"), allow_nan=False)


def canonical_json(doc: Any) -> str:
    """The canonical JSON text for *doc* (no trailing newline)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)


def sha256_hex(data: Union[str, bytes]) -> str:
    """sha256 hex digest of *data* (text is UTF-8 encoded first)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def doc_digest(doc: Any) -> str:
    """Content address of a JSON-able document: sha256 of its canonical JSON.

    This is the per-cell result digest recorded by provenance manifests
    and recomputed by ``repro-mc2 verify``: two documents share a digest
    iff their canonical JSON bytes are identical.
    """
    return sha256_hex(canonical_json(doc))
