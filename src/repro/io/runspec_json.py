"""Canonical JSON form of :class:`~repro.runtime.spec.RunSpec`.

The result cache is content-addressed, so the serialization here must be
*canonical*: two equal specs always produce byte-identical JSON.  The
rules are

* keys sorted, separators fixed (no incidental whitespace);
* floats via :func:`json.dumps`'s ``repr``-based formatting (shortest
  round-trippable form — ``0.6`` stays ``0.6`` on every platform);
* optional fields always present (``null`` rather than omitted), so a
  field growing a non-default value never reshuffles the document;
* a ``format``/``version`` header inside the hashed document, so a
  format change automatically invalidates old cache entries rather than
  colliding with them.

``runspec_from_dict`` is the exact inverse, used to audit cache entries
and to rehydrate archived sweep manifests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict

from repro.runtime.spec import (
    KernelSpec,
    MonitorSpec,
    ObsSpec,
    RunSpec,
    ScenarioSpec,
    TaskSetSpec,
)
from repro.workload.generator import GeneratorParams
from repro.workload.traffic import traffic_from_dict, traffic_to_dict

__all__ = [
    "runspec_to_dict",
    "runspec_from_dict",
    "runspec_canonical_json",
    "runspec_from_json",
    "spec_key",
]

FORMAT = "repro-runspec"
VERSION = 1


def _params_to_dict(params: GeneratorParams) -> Dict[str, Any]:
    doc = dataclasses.asdict(params)
    doc["util_range"] = list(params.util_range)
    return doc


def _params_from_dict(doc: Dict[str, Any]) -> GeneratorParams:
    kwargs = dict(doc)
    if "util_range" in kwargs:
        kwargs["util_range"] = tuple(kwargs["util_range"])
    return GeneratorParams(**kwargs)


def runspec_to_dict(spec: RunSpec) -> Dict[str, Any]:
    """*spec* as a JSON-ready dict (canonical field set, ``null`` defaults).

    The ``obs`` component is result-neutral (observation only) and is
    serialized *only when non-default*, keeping documents for untraced
    specs byte-identical to the pre-obs format.
    """
    doc = _runspec_core_dict(spec)
    if spec.obs != ObsSpec():
        doc["obs"] = {
            "trace_dir": spec.obs.trace_dir,
            "trace_name": spec.obs.trace_name,
        }
    return doc


def _runspec_core_dict(spec: RunSpec) -> Dict[str, Any]:
    """The hashed (result-determining) portion of *spec* — never ``obs``."""
    kernel: Dict[str, Any] = {
        "use_virtual_time": spec.kernel.use_virtual_time,
        "record_intervals": spec.kernel.record_intervals,
        "monitor_latency": spec.kernel.monitor_latency,
        "measure_overhead": spec.kernel.measure_overhead,
    }
    # Emitted only when non-default: reference-backend documents (and
    # hence their cache keys) stay byte-identical to the pre-backend
    # format, while any other backend gets its own key space.
    if spec.kernel.backend != "reference":
        kernel["backend"] = spec.kernel.backend
    doc: Dict[str, Any] = {
        "format": FORMAT,
        "version": VERSION,
        "taskset": {
            "seed": spec.taskset.seed,
            "params": (
                _params_to_dict(spec.taskset.params)
                if spec.taskset.params is not None
                else None
            ),
            "inline": spec.taskset.inline,
        },
        "scenario": {
            "name": spec.scenario.name,
            "windows": [[a, b] for a, b in spec.scenario.windows],
            "overload_level": spec.scenario.overload_level,
        },
        "monitor": {
            "kind": spec.monitor.kind,
            "param": spec.monitor.param,
            "extra": spec.monitor.extra,
        },
        "kernel": kernel,
        "horizon": spec.horizon,
        "confirm_window": spec.confirm_window,
        "level_c_budgets": spec.level_c_budgets,
    }
    # Emitted only when configured: traffic-free documents (and hence
    # their cache keys) stay byte-identical to the pre-traffic format.
    if spec.traffic is not None:
        doc["traffic"] = traffic_to_dict(spec.traffic)
    return doc


def runspec_from_dict(doc: Dict[str, Any]) -> RunSpec:
    """Inverse of :func:`runspec_to_dict` (validates the header)."""
    if doc.get("format") != FORMAT:
        raise ValueError(f"not a {FORMAT} document: format={doc.get('format')!r}")
    if doc.get("version") != VERSION:
        raise ValueError(f"unsupported {FORMAT} version {doc.get('version')!r}")
    ts = doc["taskset"]
    sc = doc["scenario"]
    mon = doc["monitor"]
    ker = doc.get("kernel", {})
    obs = doc.get("obs", {}) or {}
    return RunSpec(
        taskset=TaskSetSpec(
            seed=ts.get("seed"),
            params=(
                _params_from_dict(ts["params"]) if ts.get("params") is not None else None
            ),
            inline=ts.get("inline"),
        ),
        scenario=ScenarioSpec(
            name=sc["name"],
            windows=tuple((float(a), float(b)) for a, b in sc["windows"]),
            overload_level=sc.get("overload_level", "B"),
        ),
        monitor=MonitorSpec(
            kind=mon["kind"],
            param=float(mon.get("param", 1.0)),
            extra=(float(mon["extra"]) if mon.get("extra") is not None else None),
        ),
        kernel=KernelSpec(
            use_virtual_time=bool(ker.get("use_virtual_time", True)),
            record_intervals=bool(ker.get("record_intervals", False)),
            monitor_latency=float(ker.get("monitor_latency", 0.0)),
            measure_overhead=bool(ker.get("measure_overhead", False)),
            backend=str(ker.get("backend", "reference")),
        ),
        horizon=float(doc["horizon"]),
        confirm_window=float(doc.get("confirm_window", 0.5)),
        level_c_budgets=bool(doc.get("level_c_budgets", True)),
        obs=ObsSpec(
            trace_dir=obs.get("trace_dir"),
            trace_name=obs.get("trace_name"),
        ),
        traffic=(
            traffic_from_dict(doc["traffic"])
            if doc.get("traffic") is not None
            else None
        ),
    )


def runspec_canonical_json(spec: RunSpec) -> str:
    """The canonical (hash-stable) JSON text for *spec*.

    Hashes only the result-determining fields: ``obs`` never appears
    here, so tracing a spec does not change its cache key.
    """
    return json.dumps(
        _runspec_core_dict(spec),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def runspec_from_json(text: str) -> RunSpec:
    """Parse a spec from (any) JSON text form."""
    return runspec_from_dict(json.loads(text))


def spec_key(spec: RunSpec) -> str:
    """Content address of *spec*: sha256 hex of the canonical JSON."""
    return hashlib.sha256(runspec_canonical_json(spec).encode("utf-8")).hexdigest()
