"""Serialization: task sets and experiment results as JSON.

A reproducible evaluation needs workloads and results that can leave the
process: the generator's task sets can be exported, audited, edited and
re-imported, and experiment results can be archived next to the figures
they produced.

* :mod:`repro.io.taskset_json` — lossless Task/TaskSet <-> JSON.
* :mod:`repro.io.results_json` — RunResult / figure data <-> JSON.
* :mod:`repro.io.runspec_json` — canonical RunSpec <-> JSON (the hash
  the content-addressed result cache is keyed by).
* :mod:`repro.io.canonical` — the shared canonical-JSON + sha256
  content-addressing convention every artifact layer builds on.
"""

from repro.io.canonical import canonical_json, doc_digest, sha256_hex
from repro.io.results_json import (
    figure_to_dict,
    results_to_json,
    run_result_from_dict,
    run_result_to_dict,
)
from repro.io.runspec_json import (
    runspec_canonical_json,
    runspec_from_dict,
    runspec_from_json,
    runspec_to_dict,
    spec_key,
)
from repro.io.taskset_json import (
    task_from_dict,
    task_to_dict,
    taskset_from_json,
    taskset_to_json,
)

__all__ = [
    "task_to_dict",
    "task_from_dict",
    "taskset_to_json",
    "taskset_from_json",
    "run_result_to_dict",
    "run_result_from_dict",
    "results_to_json",
    "figure_to_dict",
    "runspec_to_dict",
    "runspec_from_dict",
    "runspec_canonical_json",
    "runspec_from_json",
    "spec_key",
    "canonical_json",
    "doc_digest",
    "sha256_hex",
]
