"""Lossless JSON serialization of tasks and task sets.

Format (versioned so future changes stay loadable)::

    {
      "format": "repro-taskset",
      "version": 1,
      "m": 4,
      "tasks": [
        {"task_id": 0, "level": "A", "period": 0.025,
         "pwcets": {"A": 0.01, "B": 0.005, "C": 0.0005},
         "cpu": 0, "phase": 0.0, "name": "A0"},
        {"task_id": 17, "level": "C", "period": 0.05,
         "pwcets": {"B": 0.1, "C": 0.01},
         "relative_pp": 0.042, "tolerance": 0.13, "name": "C17"},
        ...
      ]
    }

Optional fields (``relative_pp``, ``tolerance``, ``cpu``, ``name``,
``phase``) are omitted when absent/default, keeping files diff-friendly.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.model.task import CriticalityLevel, Task
from repro.model.taskset import TaskSet

__all__ = ["task_to_dict", "task_from_dict", "taskset_to_json", "taskset_from_json"]

FORMAT = "repro-taskset"
VERSION = 1


def task_to_dict(task: Task) -> Dict[str, Any]:
    """One task as a plain JSON-ready dict."""
    out: Dict[str, Any] = {
        "task_id": task.task_id,
        "level": task.level.name,
        "period": task.period,
        "pwcets": {CriticalityLevel(k).name: v for k, v in task.pwcets.items()},
    }
    if task.relative_pp is not None:
        out["relative_pp"] = task.relative_pp
    if task.tolerance is not None:
        out["tolerance"] = task.tolerance
    if task.cpu is not None:
        out["cpu"] = task.cpu
    if task.phase:
        out["phase"] = task.phase
    if task.name:
        out["name"] = task.name
    return out


def task_from_dict(data: Dict[str, Any]) -> Task:
    """Inverse of :func:`task_to_dict`.

    Raises :class:`ValueError` on unknown levels or malformed fields (the
    Task constructor revalidates everything else).
    """
    try:
        level = CriticalityLevel[data["level"]]
    except KeyError as exc:
        raise ValueError(f"unknown criticality level {data.get('level')!r}") from exc
    try:
        pwcets = {CriticalityLevel[k]: float(v) for k, v in data.get("pwcets", {}).items()}
    except KeyError as exc:
        raise ValueError(f"unknown PWCET level in {data.get('pwcets')!r}") from exc
    return Task(
        task_id=int(data["task_id"]),
        level=level,
        period=float(data["period"]),
        pwcets=pwcets,
        relative_pp=(float(data["relative_pp"]) if "relative_pp" in data else None),
        tolerance=(float(data["tolerance"]) if "tolerance" in data else None),
        cpu=(int(data["cpu"]) if "cpu" in data else None),
        phase=float(data.get("phase", 0.0)),
        name=str(data.get("name", "")),
    )


def taskset_to_json(ts: TaskSet, indent: int = 2) -> str:
    """Serialize a task set to a JSON string."""
    doc = {
        "format": FORMAT,
        "version": VERSION,
        "m": ts.m,
        "tasks": [task_to_dict(t) for t in ts],
    }
    return json.dumps(doc, indent=indent)


def taskset_from_json(text: str) -> TaskSet:
    """Parse a task set from a JSON string (inverse of :func:`taskset_to_json`)."""
    doc = json.loads(text)
    if doc.get("format") != FORMAT:
        raise ValueError(
            f"not a {FORMAT} document (format={doc.get('format')!r})"
        )
    if doc.get("version") != VERSION:
        raise ValueError(f"unsupported {FORMAT} version {doc.get('version')!r}")
    tasks = [task_from_dict(d) for d in doc.get("tasks", [])]
    return TaskSet(tasks, m=int(doc["m"]))
