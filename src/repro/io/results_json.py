"""JSON export of experiment results and figure data.

One-way (export-only): results are archives, not inputs.  The documents
carry enough provenance (scenario, monitor label, parameters) to tell
which configuration produced which numbers.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable

from repro.experiments.figures import FigureData
from repro.experiments.metrics import RunResult, SojournStats

__all__ = [
    "run_result_to_dict",
    "run_result_from_dict",
    "results_to_json",
    "figure_to_dict",
    "figure_to_json",
]


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """A RunResult as a JSON-ready dict (plain dataclass dump).

    ``sojourn`` is omitted when ``None`` (scripted-overload runs), so
    pre-traffic result documents — and everything hashed from them —
    keep their exact bytes.
    """
    doc = dataclasses.asdict(result)
    if doc.get("sojourn") is None:
        doc.pop("sojourn", None)
    return doc


def run_result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Inverse of :func:`run_result_to_dict` (the result-cache read path).

    Unknown keys are ignored (forward compatibility); missing fields
    *without defaults* raise :class:`ValueError` so a truncated cache
    entry reads as corrupt rather than as a zeroed result — while
    documents written before an optional field existed (e.g. pre-sojourn
    caches) still load.
    """
    fields = dataclasses.fields(RunResult)
    names = {f.name for f in fields}
    required = {
        f.name
        for f in fields
        if f.default is dataclasses.MISSING
        and f.default_factory is dataclasses.MISSING
    }
    missing = required - set(data)
    if missing:
        raise ValueError(f"RunResult document missing fields: {sorted(missing)}")
    kwargs = {k: v for k, v in data.items() if k in names}
    if isinstance(kwargs.get("sojourn"), dict):
        kwargs["sojourn"] = SojournStats(**{
            k: v for k, v in kwargs["sojourn"].items()
            if k in {f.name for f in dataclasses.fields(SojournStats)}
        })
    return RunResult(**kwargs)


def results_to_json(results: Iterable[RunResult], indent: int = 2) -> str:
    """Serialize a batch of run results."""
    doc = {
        "format": "repro-results",
        "version": 1,
        "runs": [run_result_to_dict(r) for r in results],
    }
    return json.dumps(doc, indent=indent)


def figure_to_dict(fig: FigureData) -> Dict[str, Any]:
    """A reproduced figure (series of mean/CI points) as a dict."""
    return {
        "figure_id": fig.figure_id,
        "title": fig.title,
        "xlabel": fig.xlabel,
        "ylabel": fig.ylabel,
        "series": [
            {
                "label": s.label,
                "points": [
                    {
                        "x": p.x,
                        "mean": p.ci.mean,
                        "ci_half_width": p.ci.half_width,
                        "confidence": p.ci.confidence,
                        "n": p.ci.n,
                        "truncated_runs": p.truncated_runs,
                    }
                    for p in s.points
                ],
            }
            for s in fig.series
        ],
    }


def figure_to_json(fig: FigureData, indent: int = 2) -> str:
    """Serialize a reproduced figure."""
    doc = {"format": "repro-figure", "version": 1, **figure_to_dict(fig)}
    return json.dumps(doc, indent=indent)
