"""JSON export of experiment results and figure data.

One-way (export-only): results are archives, not inputs.  The documents
carry enough provenance (scenario, monitor label, parameters) to tell
which configuration produced which numbers.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable

from repro.experiments.figures import FigureData
from repro.experiments.metrics import RunResult

__all__ = [
    "run_result_to_dict",
    "run_result_from_dict",
    "results_to_json",
    "figure_to_dict",
    "figure_to_json",
]


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """A RunResult as a JSON-ready dict (plain dataclass dump)."""
    return dataclasses.asdict(result)


def run_result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Inverse of :func:`run_result_to_dict` (the result-cache read path).

    Unknown keys are ignored (forward compatibility); missing required
    fields raise :class:`ValueError` so a truncated cache entry reads as
    corrupt rather than as a zeroed result.
    """
    fields = {f.name for f in dataclasses.fields(RunResult)}
    missing = fields - set(data)
    if missing:
        raise ValueError(f"RunResult document missing fields: {sorted(missing)}")
    return RunResult(**{k: v for k, v in data.items() if k in fields})


def results_to_json(results: Iterable[RunResult], indent: int = 2) -> str:
    """Serialize a batch of run results."""
    doc = {
        "format": "repro-results",
        "version": 1,
        "runs": [run_result_to_dict(r) for r in results],
    }
    return json.dumps(doc, indent=indent)


def figure_to_dict(fig: FigureData) -> Dict[str, Any]:
    """A reproduced figure (series of mean/CI points) as a dict."""
    return {
        "figure_id": fig.figure_id,
        "title": fig.title,
        "xlabel": fig.xlabel,
        "ylabel": fig.ylabel,
        "series": [
            {
                "label": s.label,
                "points": [
                    {
                        "x": p.x,
                        "mean": p.ci.mean,
                        "ci_half_width": p.ci.half_width,
                        "confidence": p.ci.confidence,
                        "n": p.ci.n,
                        "truncated_runs": p.truncated_runs,
                    }
                    for p in s.points
                ],
            }
            for s in fig.series
        ],
    }


def figure_to_json(fig: FigureData, indent: int = 2) -> str:
    """Serialize a reproduced figure."""
    doc = {"format": "repro-figure", "version": 1, **figure_to_dict(fig)}
    return json.dumps(doc, indent=indent)
