"""Schedule traces: the simulator's stand-in for sched_trace.

A :class:`Trace` records, per job, the quantities the paper's metrics
need (release, actual PP, completion, execution time) and optionally the
full per-CPU execution intervals used by the example-schedule figures,
invariant property tests, and ASCII schedule rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.job import Job
from repro.model.task import CriticalityLevel, Task

__all__ = ["JobRecord", "ExecutionInterval", "Trace"]


@dataclass(frozen=True)
class JobRecord:
    """Final per-job accounting."""

    task_id: int
    level: CriticalityLevel
    index: int
    release: float
    exec_time: float
    completion: Optional[float]
    #: Actual PP if it was resolved; None means the job completed at or
    #: before its PP (level C) or has no PP (other levels / incomplete).
    actual_pp: Optional[float]
    #: v(r) and v(y) for level-C jobs.
    virtual_release: Optional[float] = None
    virtual_pp: Optional[float] = None

    @property
    def response_time(self) -> Optional[float]:
        """``t^c - r`` or ``None`` if the job never completed."""
        if self.completion is None:
            return None
        return self.completion - self.release

    @property
    def pp_lateness(self) -> Optional[float]:
        """``t^c - y``; ``None`` when incomplete or completed before the PP."""
        if self.completion is None or self.actual_pp is None:
            return None
        return self.completion - self.actual_pp


@dataclass(frozen=True)
class ExecutionInterval:
    """A maximal interval during which one job ran on one CPU."""

    cpu: int
    task_id: int
    job_index: int
    start: float
    end: float

    @property
    def length(self) -> float:
        """Interval duration."""
        return self.end - self.start


class Trace:
    """Accumulates job records and (optionally) execution intervals."""

    def __init__(self, record_intervals: bool = False) -> None:
        self.record_intervals = record_intervals
        self.jobs: List[JobRecord] = []
        self.intervals: List[ExecutionInterval] = []
        #: (time, speed) — every virtual-clock speed change the kernel applied.
        self.speed_changes: List[Tuple[float, float]] = []
        # Lookup indexes over self.jobs (which stays in recording order):
        # (task_id, index) -> position, and task_id -> positions.  Built
        # lazily on first query so record_job stays a pure append (it is
        # on the kernel's per-completion path).
        self._by_job: Dict[Tuple[int, int], int] = {}
        self._by_task: Dict[int, List[int]] = {}
        self._indexed = 0

    # ------------------------------------------------------------------
    # Recording API (called by the kernel)
    # ------------------------------------------------------------------
    def record_job(self, job: Job) -> None:
        """Snapshot *job*'s final state (call at completion or at sim end)."""
        self.jobs.append(
            JobRecord(
                task_id=job.task.task_id,
                level=job.task.level,
                index=job.index,
                release=job.release,
                exec_time=job.exec_time,
                completion=job.completion,
                actual_pp=job.actual_pp,
                virtual_release=job.virtual_release,
                virtual_pp=job.virtual_pp,
            )
        )

    def _reindex(self) -> None:
        """Index any records appended since the last query."""
        for pos in range(self._indexed, len(self.jobs)):
            rec = self.jobs[pos]
            self._by_job[(rec.task_id, rec.index)] = pos
            self._by_task.setdefault(rec.task_id, []).append(pos)
        self._indexed = len(self.jobs)

    def record_job_values(
        self,
        task_id: int,
        level: CriticalityLevel,
        index: int,
        release: float,
        exec_time: float,
        completion: Optional[float],
        actual_pp: Optional[float],
        virtual_release: Optional[float] = None,
        virtual_pp: Optional[float] = None,
    ) -> None:
        """Record a job's final state from plain values.

        The struct-of-arrays kernel backend has no :class:`Job` objects;
        it records through this method, producing records identical to
        :meth:`record_job`'s.  The record is built by filling the
        instance dict directly: the frozen dataclass ``__init__`` pays
        one ``object.__setattr__`` call per field, which is measurable
        on the kernel's per-completion path (JobRecord has no
        ``__post_init__``, so nothing is skipped).
        """
        rec = object.__new__(JobRecord)
        rec.__dict__.update(
            task_id=task_id,
            level=level,
            index=index,
            release=release,
            exec_time=exec_time,
            completion=completion,
            actual_pp=actual_pp,
            virtual_release=virtual_release,
            virtual_pp=virtual_pp,
        )
        self.jobs.append(rec)

    def record_interval(
        self, cpu: int, job: Job, start: float, end: float
    ) -> None:
        """Record one execution interval (no-op unless enabled, or empty)."""
        if not self.record_intervals or end <= start:
            return
        self.intervals.append(
            ExecutionInterval(
                cpu=cpu,
                task_id=job.task.task_id,
                job_index=job.index,
                start=start,
                end=end,
            )
        )

    def record_interval_values(
        self, cpu: int, task_id: int, job_index: int, start: float, end: float
    ) -> None:
        """Value-based twin of :meth:`record_interval` (same filters)."""
        if not self.record_intervals or end <= start:
            return
        self.intervals.append(
            ExecutionInterval(
                cpu=cpu, task_id=task_id, job_index=job_index, start=start, end=end
            )
        )

    def record_speed_change(self, time: float, speed: float) -> None:
        """Record a virtual-clock speed change."""
        self.speed_changes.append((time, speed))

    # ------------------------------------------------------------------
    # Queries (used by metrics, tests, figures)
    # ------------------------------------------------------------------
    def jobs_of(self, task_id: int) -> List[JobRecord]:
        """All records of one task, ordered by job index."""
        if self._indexed < len(self.jobs):
            self._reindex()
        return sorted(
            (self.jobs[i] for i in self._by_task.get(task_id, ())),
            key=lambda j: j.index,
        )

    def job(self, task_id: int, index: int) -> JobRecord:
        """The record of one specific job (raises ``KeyError`` if absent)."""
        if self._indexed < len(self.jobs):
            self._reindex()
        try:
            return self.jobs[self._by_job[(task_id, index)]]
        except KeyError:
            raise KeyError(f"no record for job ({task_id}, {index})") from None

    def level_jobs(self, level: CriticalityLevel) -> List[JobRecord]:
        """All records at a criticality level."""
        return [j for j in self.jobs if j.level is level]

    def completed(self, level: Optional[CriticalityLevel] = None) -> List[JobRecord]:
        """All completed job records, optionally filtered by level."""
        return [
            j
            for j in self.jobs
            if j.completion is not None and (level is None or j.level is level)
        ]

    def response_times(self, level: CriticalityLevel = CriticalityLevel.C) -> List[float]:
        """Response times of completed jobs at *level*."""
        return [j.response_time for j in self.completed(level)]  # type: ignore[misc]

    def max_response_time(self, level: CriticalityLevel = CriticalityLevel.C) -> float:
        """Largest completed response time at *level* (0.0 if none)."""
        rs = self.response_times(level)
        return max(rs) if rs else 0.0

    def intervals_of(self, task_id: int, index: Optional[int] = None) -> List[ExecutionInterval]:
        """Execution intervals of a task (or one job), time-ordered."""
        out = [
            iv
            for iv in self.intervals
            if iv.task_id == task_id and (index is None or iv.job_index == index)
        ]
        return sorted(out, key=lambda iv: iv.start)

    def busy_intervals(self, cpu: int) -> List[ExecutionInterval]:
        """Execution intervals on one CPU, time-ordered."""
        return sorted(
            (iv for iv in self.intervals if iv.cpu == cpu), key=lambda iv: iv.start
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_ascii(
        self,
        tasks: Sequence[Task],
        t_end: float,
        resolution: float = 1.0,
        width_limit: int = 200,
    ) -> str:
        """Render an ASCII schedule (one row per CPU) for small examples.

        Each column covers ``resolution`` time units; the cell shows the
        task id executing for the majority of the column on that CPU
        (``.`` for idle).  Only usable with interval recording enabled.
        """
        if not self.record_intervals:
            raise ValueError("interval recording was disabled for this trace")
        labels = {t.task_id: t.label for t in tasks}
        cpus = sorted({iv.cpu for iv in self.intervals}) or [0]
        cols = min(int(round(t_end / resolution)), width_limit)
        lines = []
        # Time labels written at their exact column offsets (one data
        # column = one character), so tick marks line up with the rows
        # below regardless of label width; a label that would overwrite
        # the previous one (or spill past the row) is skipped.
        ticks = [" "] * cols
        free = 0
        for i in range(0, cols, 5):
            label = f"{i * resolution:g}"
            if i < free or i + len(label) > cols:
                continue
            ticks[i:i + len(label)] = label
            free = i + len(label) + 1
        lines.append("     " + "".join(ticks).rstrip())
        for cpu in cpus:
            cells = []
            ivs = self.busy_intervals(cpu)
            for i in range(cols):
                lo, hi = i * resolution, (i + 1) * resolution
                best, best_len = ".", 0.0
                for iv in ivs:
                    ov = min(hi, iv.end) - max(lo, iv.start)
                    if ov > best_len:
                        best_len = ov
                        best = labels.get(iv.task_id, str(iv.task_id))[-1]
                cells.append(best)
            lines.append(f"CPU{cpu} " + "".join(cells))
        return "\n".join(lines)
