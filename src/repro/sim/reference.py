"""A deliberately simple time-stepped reference simulator.

The production kernel (:mod:`repro.sim.kernel`) is event-driven: fast,
but with the usual event-driven failure modes (stale events, generation
races, float drift at completion boundaries).  This module implements
the *same* scheduling semantics as an obviously-correct quantum-stepped
loop — no event queue, no timers, no cancellation — and exists purely to
**differentially test** the kernel: on systems whose parameters are
integral multiples of the quantum, both simulators must produce
identical schedules (``tests/integration/test_differential.py``).

Scope: level-C GEL-v with intra-task precedence, the global virtual
clock, and optional scripted speed changes.  Levels A/B are modelled the
same way the analysis sees them — per-CPU blackout intervals — which is
sufficient for differential coverage of the level-C machinery (the
production kernel's A/B layering has its own direct tests).

Not optimized, not part of the public simulation API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.virtual_time import VirtualClock
from repro.model.behavior import ConstantBehavior, ExecutionBehavior
from repro.model.task import CriticalityLevel, Task

__all__ = ["ReferenceJob", "ReferenceResult", "simulate_reference"]


@dataclass
class ReferenceJob:
    """A job in the reference simulator."""

    task_id: int
    index: int
    release: float
    exec_time: float
    remaining: float
    virtual_release: float
    virtual_pp: float
    completion: Optional[float] = None


@dataclass(frozen=True)
class ReferenceResult:
    """Outcome of a reference run."""

    jobs: Tuple[ReferenceJob, ...]
    #: (time, task_id, job_index) per executed quantum, per CPU slot —
    #: kept only when ``record_schedule`` is set (it is large).
    schedule: Tuple[Tuple[float, int, int], ...]

    def job(self, task_id: int, index: int) -> ReferenceJob:
        """Look up one job (raises ``KeyError`` if absent)."""
        for j in self.jobs:
            if j.task_id == task_id and j.index == index:
                return j
        raise KeyError((task_id, index))


def simulate_reference(
    tasks: Sequence[Task],
    m: int,
    until: float,
    quantum: float = 0.5,
    behavior: Optional[ExecutionBehavior] = None,
    speed_changes: Sequence[Tuple[float, float]] = (),
    blackout: Optional[Callable[[int, float], bool]] = None,
    record_schedule: bool = False,
) -> ReferenceResult:
    """Quantum-stepped GEL-v simulation of level-C *tasks* on *m* CPUs.

    Parameters
    ----------
    tasks:
        Level-C tasks only (others are rejected); phases, periods,
        execution times and *until* must be integral multiples of
        ``quantum`` for the step loop to be exact.
    quantum:
        Step size.
    speed_changes:
        Scripted ``(time, new_speed)`` changes, applied at the start of
        the matching step.
    blackout:
        Optional ``(cpu, time) -> bool``; a blacked-out CPU executes
        nothing that quantum (stands in for level-A/B occupancy).
    record_schedule:
        Keep the per-quantum execution log.
    """
    for t in tasks:
        if t.level is not CriticalityLevel.C:
            raise ValueError(f"reference simulator is level-C only, got {t.label}")
    behavior = behavior if behavior is not None else ConstantBehavior()
    clock = VirtualClock(0.0)
    changes = sorted(speed_changes)
    change_i = 0

    jobs: List[ReferenceJob] = []
    by_task: Dict[int, List[ReferenceJob]] = {t.task_id: [] for t in tasks}
    #: Next release bookkeeping per task: (virtual point, next index).
    next_release: Dict[int, Tuple[float, int]] = {
        t.task_id: (t.phase, 0) for t in tasks
    }

    steps = int(round(until / quantum))
    schedule: List[Tuple[float, int, int]] = []
    for step in range(steps):
        now = step * quantum
        # 1. Scripted speed changes at this instant.
        while change_i < len(changes) and changes[change_i][0] <= now + 1e-12:
            clock.change_speed(changes[change_i][1], now)
            change_i += 1
        virt_now = clock.act_to_virt(now)
        # 2. Releases whose earliest legal virtual time has arrived.
        for t in tasks:
            v_next, idx = next_release[t.task_id]
            if v_next <= virt_now + 1e-12:
                v_r = max(v_next, virt_now)
                exec_time = behavior.exec_time(t, idx, now)
                job = ReferenceJob(
                    task_id=t.task_id,
                    index=idx,
                    release=now,
                    exec_time=exec_time,
                    remaining=exec_time,
                    virtual_release=v_r,
                    virtual_pp=v_r + (t.relative_pp or 0.0),
                )
                if exec_time <= 0.0:
                    job.completion = now
                jobs.append(job)
                by_task[t.task_id].append(job)
                next_release[t.task_id] = (v_r + t.period, idx + 1)
        # 3. Eligible jobs: each task's earliest incomplete job.
        eligible: List[ReferenceJob] = []
        for t in tasks:
            for j in by_task[t.task_id]:
                if j.completion is None:
                    eligible.append(j)
                    break
        eligible.sort(key=lambda j: (j.virtual_pp, j.task_id, j.index))
        # 4. Run the top jobs on the available CPUs for one quantum.
        cpus = [p for p in range(m) if blackout is None or not blackout(p, now)]
        for j, cpu in zip(eligible, cpus):
            if record_schedule:
                schedule.append((now, j.task_id, j.index))
            j.remaining -= quantum
            if j.remaining <= 1e-12:
                j.remaining = 0.0
                j.completion = now + quantum
    return ReferenceResult(jobs=tuple(jobs), schedule=tuple(schedule))
