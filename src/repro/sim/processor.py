"""Per-CPU run state.

A :class:`Processor` tracks which job currently occupies the CPU and
since when, so the kernel can charge elapsed execution on every event
("advance"), and the trace can record contiguous execution intervals.
"""

from __future__ import annotations

from typing import Optional

from repro.model.job import Job

__all__ = ["Processor"]


class Processor:
    """One identical unit-speed CPU."""

    def __init__(self, cpu_id: int) -> None:
        self.cpu_id = cpu_id
        #: The job currently executing here, if any.
        self.current: Optional[Job] = None
        #: When the current job last started/resumed/was advanced here.
        self.since: float = 0.0

    @property
    def is_idle(self) -> bool:
        """Whether no job occupies this CPU."""
        return self.current is None

    def advance(self, now: float) -> float:
        """Charge execution up to *now*; return the amount charged.

        Decrements the running job's remaining execution by the elapsed
        time since the last advance and moves the accounting point to
        *now*.  Idle CPUs charge nothing.
        """
        if self.current is None:
            self.since = now
            return 0.0
        elapsed = now - self.since
        if elapsed < 0:
            raise ValueError(
                f"cpu {self.cpu_id}: advance to {now} precedes accounting point {self.since}"
            )
        if elapsed:
            # Clamp at zero: the elapsed time equals the remaining work at a
            # completion event up to float round-off.
            self.current.remaining = max(0.0, self.current.remaining - elapsed)
        self.since = now
        return elapsed

    def assign(self, job: Optional[Job], now: float) -> None:
        """Install *job* (or idle the CPU) with accounting from *now*."""
        self.current = job
        self.since = now

    def __repr__(self) -> str:  # pragma: no cover - formatting only
        what = self.current.label if self.current else "idle"
        return f"Processor({self.cpu_id}: {what} since {self.since})"
