"""Per-CPU run state.

A :class:`Processor` tracks which job currently occupies the CPU and
since when, so the kernel can charge elapsed execution on every event
("advance"), and the trace can record contiguous execution intervals.

Accounting is **anchor-based**: when a job is assigned, the processor
records ``(anchor_time, anchor_remaining)`` and every subsequent
:meth:`advance` recomputes ``remaining = anchor_remaining - (now -
anchor_time)`` from that fixed pair, rather than decrementing the
remaining demand step by step.  Two properties follow:

* **No drift accumulation.**  A job advanced at every intermediate event
  and a job advanced once at the end produce bit-identical ``remaining``
  values — the error is bounded by one subtraction's round-off instead
  of growing with the number of events.  This is what lets the
  incremental dispatcher advance only the processors an event actually
  touches while staying trace-identical to the advance-everything
  baseline (see ``repro.sim.diffcheck``).
* **Idempotence.**  ``advance(now)`` twice at the same instant is a
  no-op, so shared code paths may advance defensively.
"""

from __future__ import annotations

from typing import Optional

from repro.model.job import Job

__all__ = ["Processor"]


class Processor:
    """One identical unit-speed CPU."""

    def __init__(self, cpu_id: int) -> None:
        self.cpu_id = cpu_id
        #: The job currently executing here, if any.
        self.current: Optional[Job] = None
        #: When the current job last started/resumed/was advanced here.
        self.since: float = 0.0
        #: Accounting anchor: time the current job was installed ...
        self._anchor_time: float = 0.0
        #: ... and its remaining demand at that instant.
        self._anchor_remaining: float = 0.0

    @property
    def is_idle(self) -> bool:
        """Whether no job occupies this CPU."""
        return self.current is None

    def remaining_at(self, now: float) -> float:
        """The current job's remaining demand at *now*, without mutating.

        Exactly the value :meth:`advance` would store — the kernel's
        same-instant completion scan uses this to find exhausted jobs
        without advancing untouched processors.  Raises
        :class:`ValueError` if the CPU is idle.
        """
        if self.current is None:
            raise ValueError(f"cpu {self.cpu_id} is idle")
        return max(0.0, self._anchor_remaining - (now - self._anchor_time))

    def advance(self, now: float) -> float:
        """Charge execution up to *now*; return the amount charged.

        Sets the running job's remaining execution from the assignment
        anchor and moves the accounting point to *now*.  Idle CPUs charge
        nothing.  Idempotent: advancing twice to the same *now* changes
        nothing.
        """
        if self.current is None:
            self.since = now
            return 0.0
        elapsed = now - self.since
        if elapsed < 0:
            raise ValueError(
                f"cpu {self.cpu_id}: advance to {now} precedes accounting point {self.since}"
            )
        if elapsed:
            # Recompute from the anchor (not an incremental decrement):
            # clamped at zero because the elapsed time equals the
            # remaining work at a completion event up to float round-off.
            self.current.remaining = max(
                0.0, self._anchor_remaining - (now - self._anchor_time)
            )
        self.since = now
        return elapsed

    def assign(self, job: Optional[Job], now: float) -> None:
        """Install *job* (or idle the CPU) with accounting from *now*."""
        self.current = job
        self.since = now
        self._anchor_time = now
        self._anchor_remaining = job.remaining if job is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - formatting only
        what = self.current.label if self.current else "idle"
        return f"Processor({self.cpu_id}: {what} since {self.since})"
