"""The simulation loop.

:class:`Engine` owns the event queue and the current time, and drives a
handler (the kernel) event by event.  It is deliberately policy-free:
everything scheduling-related lives in :mod:`repro.sim.kernel`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.events import Event, EventKind, EventQueue

__all__ = ["Engine", "past_tolerance"]

#: Absolute floor of the past-event guard tolerance.
_PAST_ABS_EPS = 1e-12
#: Relative component: ~4.5 double ulps, so the tolerance never falls
#: below representable round-off however large ``now`` grows.
_PAST_REL_EPS = 1e-15


def past_tolerance(now: float) -> float:
    """How far before *now* an event may nominally lie and still be legal.

    Timer arithmetic (e.g. ``virt_to_act(act_to_virt(now))``) can land a
    same-instant event up to a few ulps in the past.  A fixed ``1e-12``
    falls below one ulp of ``now`` once ``now`` exceeds ``~4.5e3`` (ulp
    grows linearly with magnitude: at ``now = 1e6`` one ulp is already
    ``~1.2e-10``), so legitimate events would trip the guard on long
    horizons.  The tolerance is therefore relative with an absolute
    floor: ``max(1e-12, now * 1e-15)``.
    """
    return max(_PAST_ABS_EPS, now * _PAST_REL_EPS)


class Engine:
    """Event-driven simulation core."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        #: Current simulation time; only advances.
        self.now: float = 0.0
        #: Number of events processed (diagnostics / throughput benches).
        self.events_processed: int = 0
        #: Run generation: stale END markers from earlier (interrupted)
        #: run() calls are ignored, so runs can be resumed segment by
        #: segment.
        self._run_gen: int = 0

    def push(self, event: Event) -> None:
        """Schedule an event; it must not lie in the past."""
        if event.time < self.now - past_tolerance(self.now):
            raise ValueError(
                f"cannot schedule {event.kind.name} at {event.time}; now is {self.now}"
            )
        self.queue.push(event)

    def run(
        self,
        handler: Callable[[Event], None],
        until: float,
        stop: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Process events in order until *until* (inclusive).

        Parameters
        ----------
        handler:
            Called for every non-END event after ``now`` is advanced.
        until:
            Simulation horizon; an END marker is enqueued there so the
            run has a definite final time even if the queue drains early.
        stop:
            Optional early-exit predicate evaluated after each event
            (e.g. "monitor left recovery mode").

        Returns
        -------
        float
            The time at which the loop stopped.
        """
        self._run_gen += 1
        self.queue.push(
            Event(time=until, kind=EventKind.END, generation=self._run_gen)
        )
        while self.queue:
            ev = self.queue.pop()
            if ev.time > until:
                # Put it back for a later run segment.
                self.queue.push(ev)
                self.now = until
                break
            # Events never move time backwards; guard against handler bugs.
            if ev.time < self.now - past_tolerance(self.now):
                raise RuntimeError(
                    f"event {ev.kind.name} at {ev.time} precedes now={self.now}"
                )
            self.now = max(self.now, ev.time)
            if ev.kind is EventKind.END:
                if ev.generation == self._run_gen:
                    break
                continue  # stale END from an interrupted earlier segment
            self.events_processed += 1
            handler(ev)
            if stop is not None and stop():
                break
        return self.now
