"""The simulation loop.

:class:`Engine` owns the event queue and the current time, and drives a
handler (the kernel) event by event.  It is deliberately policy-free:
everything scheduling-related lives in :mod:`repro.sim.kernel`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.events import Event, EventKind, EventQueue

__all__ = ["Engine"]


class Engine:
    """Event-driven simulation core."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        #: Current simulation time; only advances.
        self.now: float = 0.0
        #: Number of events processed (diagnostics / throughput benches).
        self.events_processed: int = 0
        #: Run generation: stale END markers from earlier (interrupted)
        #: run() calls are ignored, so runs can be resumed segment by
        #: segment.
        self._run_gen: int = 0

    def push(self, event: Event) -> None:
        """Schedule an event; it must not lie in the past."""
        if event.time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule {event.kind.name} at {event.time}; now is {self.now}"
            )
        self.queue.push(event)

    def run(
        self,
        handler: Callable[[Event], None],
        until: float,
        stop: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Process events in order until *until* (inclusive).

        Parameters
        ----------
        handler:
            Called for every non-END event after ``now`` is advanced.
        until:
            Simulation horizon; an END marker is enqueued there so the
            run has a definite final time even if the queue drains early.
        stop:
            Optional early-exit predicate evaluated after each event
            (e.g. "monitor left recovery mode").

        Returns
        -------
        float
            The time at which the loop stopped.
        """
        self._run_gen += 1
        self.queue.push(
            Event(time=until, kind=EventKind.END, generation=self._run_gen)
        )
        while self.queue:
            ev = self.queue.pop()
            if ev.time > until:
                # Put it back for a later run segment.
                self.queue.push(ev)
                self.now = until
                break
            # Events never move time backwards; guard against handler bugs.
            if ev.time < self.now - 1e-12:
                raise RuntimeError(
                    f"event {ev.kind.name} at {ev.time} precedes now={self.now}"
                )
            self.now = max(self.now, ev.time)
            if ev.kind is EventKind.END:
                if ev.generation == self._run_gen:
                    break
                continue  # stale END from an interrupted earlier segment
            self.events_processed += 1
            handler(ev)
            if stop is not None and stop():
                break
        return self.now
