"""Execution-budget enforcement (paper footnote 2).

MC² optionally enforces per-level execution budgets so that a job cannot
run beyond a chosen PWCET: the kernel stops it when the budget exhausts.
Footnote 2 notes that with budgets at levels A and B, those levels cannot
overrun their *own* PWCETs — but they can still overrun their smaller
level-C PWCETs, so level-C overload remains possible.  Budgets at level C
restore eq. 1 for level C itself.

We model enforcement at job-admission time: a job's execution demand is
clamped to the enforcement PWCET.  This is observationally equivalent to
stopping the job at exhaustion when (as here) an overrunning job has no
further effect after being stopped.

:class:`BudgetEnforcedBehavior` wraps any
:class:`~repro.model.behavior.ExecutionBehavior`, clamping per level:

* level-A jobs to their level-A PWCET,
* level-B jobs to their level-B PWCET,
* level-C jobs to their level-C PWCET (only if ``enforce_c`` is set).
"""

from __future__ import annotations

from repro.model.behavior import ExecutionBehavior
from repro.model.task import CriticalityLevel, Task

__all__ = ["BudgetEnforcedBehavior"]


class BudgetEnforcedBehavior:
    """Clamp an inner behaviour's execution times to per-level budgets."""

    def __init__(
        self,
        inner: ExecutionBehavior,
        enforce_a: bool = True,
        enforce_b: bool = True,
        enforce_c: bool = False,
    ) -> None:
        """
        Parameters
        ----------
        inner:
            The behaviour producing raw (possibly overrunning) demands.
        enforce_a, enforce_b:
            Enforce budgets at levels A/B (the paper's default when
            budgets are in use: A/B cannot exceed their own PWCETs).
        enforce_c:
            Enforce level-C budgets, restoring eq. 1 at level C; the
            paper leaves this optional, so it defaults off.
        """
        self.inner = inner
        self.enforce = {
            CriticalityLevel.A: enforce_a,
            CriticalityLevel.B: enforce_b,
            CriticalityLevel.C: enforce_c,
        }

    def exec_time(self, task: Task, job_index: int, release: float) -> float:
        raw = self.inner.exec_time(task, job_index, release)
        if self.enforce.get(task.level) and task.level in task.pwcets:
            return min(raw, task.pwcets[task.level])
        return raw
