"""Trace statistics: what a practitioner reads off a finished run.

Computes per-task and per-level response-time distributions, PP-relative
lateness, per-CPU busy utilization, and tolerance-miss tallies from a
:class:`~repro.sim.trace.Trace` — the numbers behind the paper's
qualitative statements like "response times settle into a pattern that
is degraded compared to (a)".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet
from repro.sim.trace import Trace

__all__ = ["ResponseStats", "task_response_stats", "level_response_stats",
           "cpu_utilizations", "tolerance_miss_counts", "lateness_series"]


@dataclass(frozen=True)
class ResponseStats:
    """Response-time distribution summary for a group of jobs (seconds)."""

    jobs: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "ResponseStats":
        """Summarize a non-empty sample of response times."""
        xs = np.asarray(values, dtype=float)
        if xs.size == 0:
            raise ValueError("no completed jobs to summarize")
        return cls(
            jobs=int(xs.size),
            mean=float(xs.mean()),
            p50=float(np.percentile(xs, 50)),
            p95=float(np.percentile(xs, 95)),
            p99=float(np.percentile(xs, 99)),
            maximum=float(xs.max()),
        )

    def row(self, label: str) -> str:
        """One formatted table row (times in ms)."""
        return (
            f"{label:<12} n={self.jobs:<6d} mean={self.mean * 1e3:8.2f} "
            f"p50={self.p50 * 1e3:8.2f} p95={self.p95 * 1e3:8.2f} "
            f"p99={self.p99 * 1e3:8.2f} max={self.maximum * 1e3:8.2f} ms"
        )


def task_response_stats(trace: Trace, task_id: int) -> Optional[ResponseStats]:
    """Response-time stats for one task (None if no job completed)."""
    rs = [r.response_time for r in trace.jobs_of(task_id) if r.completion is not None]
    if not rs:
        return None
    return ResponseStats.from_values(rs)


def level_response_stats(
    trace: Trace, level: CriticalityLevel = CriticalityLevel.C
) -> Optional[ResponseStats]:
    """Response-time stats across a whole criticality level."""
    rs = trace.response_times(level)
    if not rs:
        return None
    return ResponseStats.from_values(rs)


def lateness_series(trace: Trace, task_id: int, relative_pp: float) -> List[float]:
    """Per-job PP-relative lateness ``t^c - (r + Y)`` for one task.

    Uses the *nominal* actual PP ``r + Y`` (what the PP would be with the
    clock at speed 1 throughout), which is the natural per-job degradation
    signal the paper's Fig. 2/3 discussions read off the schedules.
    """
    out = []
    for rec in trace.jobs_of(task_id):
        if rec.completion is not None:
            out.append(rec.completion - (rec.release + relative_pp))
    return out


def cpu_utilizations(trace: Trace, m: int, horizon: float) -> List[float]:
    """Fraction of ``[0, horizon]`` each CPU spent executing.

    Requires interval recording.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    busy = [0.0] * m
    for iv in trace.intervals:
        busy[iv.cpu] += min(iv.end, horizon) - min(iv.start, horizon)
    return [b / horizon for b in busy]


def tolerance_miss_counts(trace: Trace, ts: TaskSet) -> Dict[int, int]:
    """Per-task counts of completed level-C jobs missing their tolerance."""
    out: Dict[int, int] = {}
    for rec in trace.completed(CriticalityLevel.C):
        task = ts[rec.task_id]
        if task.tolerance is None:
            continue
        lateness = rec.pp_lateness
        missed = lateness is not None and lateness > task.tolerance
        out[rec.task_id] = out.get(rec.task_id, 0) + (1 if missed else 0)
    return out
