"""The MC² kernel: per-level dispatching plus Algorithm 1's virtual time.

This module is the simulator's counterpart of the paper's in-kernel
component (Sec. 4).  It owns:

* the **virtual clock** (:class:`~repro.core.virtual_time.VirtualClock`)
  and the Algorithm 1 bookkeeping: recording ``v(r)`` and ``v(y)`` at
  release (``job_release``), lazily resolving actual PPs at completions
  and speed changes (``job_complete`` / ``change_speed``, Fig. 5(b)-(d)),
  and re-arming release timers after each speed change (lines 21-22);
* the **release timers**: level-C releases fire at
  ``virt_to_act(v(r_{i,k}))`` per the SVO rule (eq. 5); level-A/B/D
  releases are periodic in actual time (virtual time affects only
  level C);
* the **dispatcher**: at every event, level-A jobs claim their CPUs
  first (in the rate-monotonic order the offline dispatch table encodes,
  see :mod:`repro.schedulers.table_driven`), then level-B EDF, then the
  global GEL-v selection over the remaining CPUs, then level-D
  background — the MC² architecture of Fig. 1;
* the **change_speed system call** exposed to the userspace monitor
  (:class:`~repro.core.monitor.Monitor`), including PP actualization and
  timer re-arming;
* the **completion reports** sent to the monitor (Algorithm 1 line 13),
  optionally with a configurable userspace notification latency.

A :class:`KernelConfig` with ``use_virtual_time=False`` degrades level C
to plain GEL with actual-time PPs — the baseline for the Fig. 9 overhead
comparison (monitors that change speed are rejected in that mode).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import CompletionReport, Monitor, NullMonitor
from repro.core.svo import ReleaseController
from repro.core.virtual_time import VirtualClock
from repro.model.behavior import ConstantBehavior, ExecutionBehavior
from repro.model.job import Job
from repro.model.task import CriticalityLevel, Task
from repro.model.taskset import TaskSet
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTimer
from repro.obs.telemetry import PHASE_PROFILER, PHASE_SAMPLE_MASK
from repro.obs.tracer import NULL_TRACER, EventName, Tracer
from repro.schedulers.best_effort import pick_best_effort
from repro.schedulers.gel_global import place_gel_jobs, select_gel_jobs
from repro.schedulers.pedf import pick_edf
from repro.schedulers.table_driven import pick_table_driven
from repro.sim.engine import Engine
from repro.sim.events import Event, EventKind
from repro.sim.processor import Processor
from repro.sim.trace import Trace

__all__ = [
    "KernelConfig",
    "MC2Kernel",
    "simulate",
    "completion_eps",
    "COMPACT_STALE_RATIO",
]

#: Absolute floor of the completion slack (1 ns).
_COMPLETION_EPS = 1e-9
#: Relative completion-slack component (~4.5 double ulps of ``now``).
_COMPLETION_REL_EPS = 1e-15

#: Compact the event heap when stale (re-armed) release-timer entries
#: outnumber live release timers by this factor.  Every speed change
#: re-arms every level-C timer (Algorithm 1 lines 21-22), and under
#: rapid speed changes the superseded entries can accumulate faster
#: than they drain; compaction bounds the heap at
#: ``(1 + ratio) * live + transient`` entries.  Module-level so tests
#: can monkeypatch it; both kernel backends read it at the trigger
#: point, keeping their event counts (and thus fingerprints) aligned.
COMPACT_STALE_RATIO = 2


def completion_eps(now: float) -> float:
    """Completion slack at simulated time *now*.

    Remaining execution at or below this counts as zero.  A fixed
    absolute epsilon falls below one double ulp of ``now`` once ``now``
    exceeds ``~4.5e6`` (one ulp of 1e7 is ``~1.9e-9``), at which point a
    completion event computed as ``start + remaining`` can pop with a
    round-off residue the comparison cannot see — deferring the
    completion to the next dispatch and perturbing the schedule.  The
    slack is therefore relative with an absolute floor:
    ``max(1e-9, now * 1e-15)``.
    """
    return max(_COMPLETION_EPS, now * _COMPLETION_REL_EPS)


@dataclass(frozen=True)
class KernelConfig:
    """Static kernel configuration.

    Attributes
    ----------
    use_virtual_time:
        Enable the paper's virtual-time mechanism at level C.  When off,
        PPs are fixed in actual time at release (plain GEL) and
        ``change_speed`` is unavailable — the Fig. 9 baseline.
    record_intervals:
        Record per-CPU execution intervals in the trace (needed by the
        example-schedule figures and schedule-invariant tests; off for
        large sweeps).
    monitor_latency:
        Delay (seconds) between a kernel event and its delivery to the
        userspace monitor; 0 models an instantaneous monitor.
    measure_overhead:
        Record wall-clock duration of every scheduler invocation
        (Fig. 9) into the kernel's metrics registry via timing spans
        (``kernel.pick_next.ns`` / ``kernel.change_speed.ns``); adds a
        span per event.
    release_delay:
        Optional sporadic-jitter hook ``(task, job_index) -> extra
        separation`` applied to levels B/C/D (level A stays strictly
        time-triggered).  The extra separation is measured in virtual
        time for level-C tasks, keeping releases legal under eq. 5.
        ``None`` (default) gives the paper's periodic release pattern.
    dispatcher:
        ``"incremental"`` (default) dispatches from lazily-maintained
        heaps and advances only the processors an event touches —
        O(m + k log n) per event.  ``"baseline"`` is the original
        O(m + n log n) advance-everything/sort-everything path, kept as
        differential ground truth (:mod:`repro.sim.diffcheck` asserts the
        two are trace-identical).
    backend:
        Kernel implementation to instantiate: ``"reference"`` (this
        module's object-based :class:`MC2Kernel`) or ``"soa"`` (the
        struct-of-arrays hot path in :mod:`repro.sim.soa`).  Resolved by
        :func:`repro.sim.backend.create_kernel`; constructing
        :class:`MC2Kernel` directly ignores the field.  The SoA backend
        is gated to byte-identical traces against the reference.
    """

    use_virtual_time: bool = True
    record_intervals: bool = False
    monitor_latency: float = 0.0
    measure_overhead: bool = False
    release_delay: Optional[Callable[[Task, int], float]] = None
    dispatcher: str = "incremental"
    backend: str = "reference"


class _IdentityClock:
    """Degenerate clock for ``use_virtual_time=False``: v(t) == t always.

    State lives on the instance: an earlier revision exposed
    ``last_act``/``last_virt``/``speed`` as *class* attributes, so any
    code assigning through one kernel's ``clock`` (or mutating the class
    by accident) could leak state into every other baseline kernel — a
    hazard when a pool worker hosts many kernels back to back.
    """

    __slots__ = ("speed", "last_act", "last_virt")

    def __init__(self) -> None:
        self.speed = 1.0
        self.last_act = 0.0
        self.last_virt = 0.0

    @staticmethod
    def act_to_virt(act: float) -> float:
        return act

    @staticmethod
    def virt_to_act(virt: float) -> float:
        return virt

    @property
    def is_normal_speed(self) -> bool:
        return True


class MC2Kernel:
    """The simulated MC² kernel over an :class:`~repro.sim.engine.Engine`."""

    def __init__(
        self,
        taskset: TaskSet,
        behavior: Optional[ExecutionBehavior] = None,
        config: Optional[KernelConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.taskset = taskset
        self.behavior: ExecutionBehavior = behavior if behavior is not None else ConstantBehavior()
        self.config = config if config is not None else KernelConfig()
        if self.config.dispatcher not in ("incremental", "baseline"):
            raise ValueError(
                f"unknown dispatcher {self.config.dispatcher!r}; "
                "expected 'incremental' or 'baseline'"
            )
        self._incremental = self.config.dispatcher == "incremental"
        self.engine = Engine()
        self.trace = Trace(record_intervals=self.config.record_intervals)
        self.processors = [Processor(p) for p in range(taskset.m)]
        #: Structured event stream (repro.obs); NULL_TRACER costs one
        #: bool check per potential event.
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        self._trace_on = self.tracer.enabled
        #: Phase profiling (repro.obs.telemetry): resolved once here,
        #: like _trace_on — a process-global toggle, never a spec field,
        #: so enabling it cannot perturb RunSpec keys or results.  When
        #: off, the hot path pays one attribute load + branch per event.
        self._phase_on = PHASE_PROFILER.enabled
        self._ph_dispatch_ns = 0
        self._ph_dispatch_samples = 0
        self._ph_monitor = 0
        self._ph_monitor_ns = 0
        self._ph_monitor_samples = 0
        self._ph_rearm = 0
        self._ph_rearm_ns = 0
        self._ph_rearm_calls = 0
        #: Kernel metrics (counters + span histograms).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = SpanTimer(self.metrics, prefix="kernel")
        # Hot-path fast binds: the dispatcher strategy is resolved once
        # here, and with measurement/tracing off the wrapper layer is
        # skipped so the per-event cost matches the pre-obs kernel.
        self._pick_next: Callable[[float], None] = (
            self._pick_next_incremental if self._incremental else self._pick_next_baseline
        )
        if not self.config.measure_overhead:
            self._reschedule = self._pick_next  # type: ignore[method-assign]
        if not self._trace_on:
            self._record_interval = self.trace.record_interval  # type: ignore[method-assign]
        self.monitor: Monitor = NullMonitor(self)

        # Virtual clock (Algorithm 1 initialize()).
        if self.config.use_virtual_time:
            self.clock: VirtualClock | _IdentityClock = VirtualClock(0.0)
        else:
            self.clock = _IdentityClock()

        # Per-level job pools: incomplete released jobs.
        self.jobs_a: List[List[Job]] = [[] for _ in range(taskset.m)]
        self.jobs_b: List[List[Job]] = [[] for _ in range(taskset.m)]
        self.jobs_c: List[Job] = []
        self.jobs_d: List[Job] = []

        # --- Incremental-dispatcher index structures -------------------
        # Maintained only when dispatcher == "incremental" (the baseline
        # path intentionally shares nothing with them, so the diffcheck
        # harness also validates this bookkeeping).  Invariants:
        # * _pending_cd[tid] holds the task's incomplete released C/D
        #   jobs in index order (releases append; completions remove the
        #   head, or the tail for a zero-demand job completing at its own
        #   release instant).
        # * _head_c/_head_d map a task to its earliest incomplete job —
        #   the only job eligible under intra-task precedence.
        # * _ready_c is a bisect-sorted list with exactly one entry
        #   (virtual_pp, tid, idx, job) per current level-C head — never
        #   stale.  Eager maintenance is cheap because the sort key is
        #   immutable (virtual_pp is fixed at release; speed changes move
        #   actual_pp, not virtual_pp), so an outgoing head's entry is
        #   found by bisecting for its exact key; in exchange, the top-k
        #   peek every dispatch needs is a plain slice.
        # * _heap_a/_heap_b hold (rm_key|edf_key, job) per released job;
        #   completed entries are popped lazily when they surface.
        self._pending_cd: Dict[int, Deque[Job]] = {
            t.task_id: deque()
            for t in taskset
            if t.level is CriticalityLevel.C or t.level is CriticalityLevel.D
        }
        self._head_c: Dict[int, Job] = {}
        self._head_d: Dict[int, Job] = {}
        self._ready_c: List[Tuple[float, int, int, Job]] = []
        self._heap_a: List[List[Tuple[float, int, int, Job]]] = [
            [] for _ in range(taskset.m)
        ]
        self._heap_b: List[List[Tuple[float, int, int, Job]]] = [
            [] for _ in range(taskset.m)
        ]

        # Release bookkeeping.
        self.controllers: Dict[int, ReleaseController] = {}
        self._release_gen: Dict[int, int] = {}
        #: Superseded release-timer events still sitting in the heap
        #: (incremented per re-armed timer, decremented when a stale
        #: entry pops or is compacted away).  Every task always has
        #: exactly one *live* pending release timer, so the live count
        #: is ``len(taskset)``.
        self._stale_releases: int = 0
        #: Start of the current contiguous run per CPU (interval recording).
        self._run_start: List[float] = [0.0] * taskset.m
        #: Level-C jobs completed at the current instant whose monitor
        #: reports are pending end-of-instant delivery (see _flush_reports).
        self._report_buffer: List[Job] = []
        #: Times a running job was descheduled while incomplete.
        self.preemptions: int = 0
        #: Times a job resumed on a different CPU than it last ran on.
        self.migrations: int = 0
        self._started = False
        self._finished = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def attach_monitor(self, monitor: Monitor) -> None:
        """Install the userspace monitor (must happen before :meth:`run`)."""
        if self._started:
            raise RuntimeError("monitor must be attached before the simulation starts")
        if not self.config.use_virtual_time and not isinstance(monitor, NullMonitor):
            raise ValueError(
                "active monitors require use_virtual_time=True; the plain-GEL "
                "baseline only supports NullMonitor"
            )
        self.monitor = monitor
        # The monitor shares the kernel's event stream (one trace file
        # carries both kernel- and monitor-side events).
        monitor.tracer = self.tracer

    def _arm_initial_releases(self) -> None:
        for t in self.taskset:
            delay = (
                self.config.release_delay
                if t.level is not CriticalityLevel.A
                else None
            )
            ctrl = ReleaseController(t, release_delay=delay)
            self.controllers[t.task_id] = ctrl
            self._release_gen[t.task_id] = 0
            first = ctrl.next_release_actual(self.clock, 0.0)
            self.engine.push(
                Event(time=first, kind=EventKind.RELEASE, payload=t.task_id, generation=0)
            )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the initial release timers (idempotent)."""
        if not self._started:
            self._started = True
            self._arm_initial_releases()

    def run_until(
        self, until: float, stop: Optional[Callable[[], bool]] = None
    ) -> float:
        """Simulate up to *until* (or until *stop* fires); resumable.

        Returns the time the segment stopped at.  Call :meth:`finish`
        after the final segment to snapshot incomplete jobs into the
        trace.
        """
        self.start()
        if self._finished:
            raise RuntimeError("cannot resume a finished kernel")
        out = self.engine.run(self._handle, until, stop)
        # Bring lazily-advanced processors up to date (anchor-based
        # advance makes this a pure recomputation), so callers inspecting
        # job state between segments see consistent remaining demand.
        for proc in self.processors:
            proc.advance(self.engine.now)
        return out

    def finish(self) -> Trace:
        """Close the trace (record still-running intervals and incomplete jobs)."""
        if not self._finished:
            self._finished = True
            self._finalize(self.engine.now)
        return self.trace

    def run(
        self, until: float, stop: Optional[Callable[[], bool]] = None
    ) -> Trace:
        """Convenience: :meth:`run_until` one segment, then :meth:`finish`."""
        self.run_until(until, stop)
        return self.finish()

    def _handle(self, ev: Event) -> None:
        now = self.engine.now
        eps = completion_eps(now)
        # Complete any job whose demand is exactly exhausted *before*
        # processing the event: a release at the same instant must not be
        # able to "preempt" a job with zero remaining work (its tentative
        # COMPLETION event would sort after the RELEASE and go stale,
        # deferring the completion to the next dispatch).
        if self._incremental:
            # Advance only the processors this event touches: the cheap
            # dirty-set scan below finds same-instant completions without
            # mutating untouched processors (remaining_at evaluates the
            # exact expression an advance would store), and descheduling
            # paths advance on demand.  Anchor-based accounting makes the
            # deferred advances bit-identical to the baseline's
            # advance-everything loop.
            for proc in self.processors:
                job = proc.current
                # Inlined proc.remaining_at(now) <= eps (the max(0, .)
                # clamp is redundant against a positive eps): this runs
                # once per busy CPU per event, and the attribute reads
                # measurably beat a method call.
                if job is not None and (
                    proc._anchor_remaining - (now - proc._anchor_time) <= eps
                ):
                    proc.advance(now)
                    self._finish_running(proc, job, now)
        else:
            for proc in self.processors:
                proc.advance(now)
            for proc in self.processors:
                job = proc.current
                if job is not None and job.remaining <= eps:
                    self._finish_running(proc, job, now)
        if ev.kind is EventKind.RELEASE:
            self._on_release_timer(ev, now)
        elif ev.kind is EventKind.COMPLETION:
            self._on_completion(ev, now)
        elif ev.kind is EventKind.MONITOR_REPORT:
            self._deliver_report(ev.payload, now)
        elif ev.kind is EventKind.CALLBACK:
            # Generic timer (see EventKind.CALLBACK): the payload is a
            # callable taking the current time.  The reschedule below
            # runs after it, so a callback may mutate kernel state.
            ev.payload(now)
        # End-of-instant: once no further event shares this timestamp,
        # the instant's state is final — deliver the completion reports.
        # (A job released at exactly t IS pending at t per Sec. 2, so
        # queue_empty must reflect same-instant releases; evaluating it
        # any earlier would let the monitor accept a non-idle instant as
        # a candidate.)
        nxt = self.engine.queue.peek_time()
        if self._phase_on:
            # Counts are exact; wall-clock is sampled every
            # (PHASE_SAMPLE_MASK+1)-th event so profiling stays inside
            # the <=2% overhead gate (bench_trace_overhead.py).  The
            # engine pop phase needs no bookkeeping here: its count IS
            # events_processed, flushed in _finalize.
            sample = (self.engine.events_processed & PHASE_SAMPLE_MASK) == 0
            if self._report_buffer and (nxt is None or nxt > now):
                self._ph_monitor += len(self._report_buffer)
                if sample:
                    t0 = perf_counter_ns()
                    self._flush_reports(now)
                    self._ph_monitor_ns += perf_counter_ns() - t0
                    self._ph_monitor_samples += 1
                else:
                    self._flush_reports(now)
            if sample:
                t0 = perf_counter_ns()
                self._reschedule(now)
                self._ph_dispatch_ns += perf_counter_ns() - t0
                self._ph_dispatch_samples += 1
            else:
                self._reschedule(now)
            return
        if self._report_buffer and (nxt is None or nxt > now):
            self._flush_reports(now)
        self._reschedule(now)

    def _finalize(self, now: float) -> None:
        if self._report_buffer:
            self._flush_reports(now)
        for proc in self.processors:
            proc.advance(now)
            if proc.current is not None:
                self._record_interval(
                    proc.cpu_id, proc.current, self._run_start[proc.cpu_id], now
                )
        for pool in (*self.jobs_a, *self.jobs_b, self.jobs_c, self.jobs_d):
            for job in pool:
                self.trace.record_job(job)
        self.metrics.counter("kernel.events").inc(self.engine.events_processed)
        self.metrics.counter("kernel.preemptions").inc(self.preemptions)
        self.metrics.counter("kernel.migrations").inc(self.migrations)
        if self._phase_on:
            self._flush_phases()

    def _flush_phases(self) -> None:
        """Surface the phase profile: this kernel's metrics + the global
        profiler (which the campaign telemetry stream samples).

        The reference kernel dispatches on every event, so its dispatch
        count equals the engine pop count; the soa backend's dirty-flag
        skip makes the two diverge there.
        """
        events = self.engine.events_processed
        for name, count, ns, samples in (
            ("engine_pop", events, 0, 0),
            ("dispatch", events, self._ph_dispatch_ns, self._ph_dispatch_samples),
            ("monitor", self._ph_monitor, self._ph_monitor_ns, self._ph_monitor_samples),
            ("timer_rearm", self._ph_rearm, self._ph_rearm_ns, self._ph_rearm_calls),
        ):
            self.metrics.counter(f"kernel.phase.{name}.count").inc(count)
            self.metrics.counter(f"kernel.phase.{name}.sampled_ns").inc(ns)
            self.metrics.counter(f"kernel.phase.{name}.samples").inc(samples)
            PHASE_PROFILER.add(name, count=count, ns=ns, samples=samples)

    # ------------------------------------------------------------------
    # Releases
    # ------------------------------------------------------------------
    def _on_release_timer(self, ev: Event, now: float) -> None:
        task_id = ev.payload
        if ev.generation != self._release_gen[task_id]:
            self._stale_releases -= 1
            return  # re-armed timer superseded this one (Algorithm 1 line 22)
        task = self.taskset[task_id]
        if task.level is CriticalityLevel.C:
            self._release_level_c(task, now)
        else:
            self._release_other(task, now)

    def _release_level_c(self, task: Task, now: float) -> None:
        # Algorithm 1 job_release(): r := now(); v(y) := act_to_virt(r)+Y; y := bottom.
        ctrl = self.controllers[task.task_id]
        index, v_r = ctrl.fire(self.clock, now)
        job = Job(
            task=task,
            index=index,
            release=now,
            exec_time=self.behavior.exec_time(task, index, now),
        )
        job.virtual_release = v_r
        assert task.relative_pp is not None
        job.virtual_pp = v_r + task.relative_pp
        job.actual_pp = None
        self.jobs_c.append(job)
        if self._incremental:
            self._index_release(job)
        if self._trace_on:
            self._trace_release(job, now)
        self._notify_release(job, now)
        self._maybe_complete_zero(job, now)
        # schedule_pending_release() for the successor.
        nxt = ctrl.next_release_actual(self.clock, now)
        gen = self._release_gen[task.task_id]
        self.engine.push(
            Event(time=nxt, kind=EventKind.RELEASE, payload=task.task_id, generation=gen)
        )

    def _release_other(self, task: Task, now: float) -> None:
        ctrl = self.controllers[task.task_id]
        index, _ = ctrl.fire(self.clock, now)
        job = Job(
            task=task,
            index=index,
            release=now,
            exec_time=self.behavior.exec_time(task, index, now),
        )
        if task.level is CriticalityLevel.A:
            self.jobs_a[task.cpu].append(job)  # type: ignore[index]
        elif task.level is CriticalityLevel.B:
            job.deadline = now + task.period
            self.jobs_b[task.cpu].append(job)  # type: ignore[index]
        else:
            self.jobs_d.append(job)
        if self._incremental:
            self._index_release(job)
        if self._trace_on:
            self._trace_release(job, now)
        self._maybe_complete_zero(job, now)
        nxt = ctrl.next_release_actual(self.clock, now)
        gen = self._release_gen[task.task_id]
        self.engine.push(
            Event(time=nxt, kind=EventKind.RELEASE, payload=task.task_id, generation=gen)
        )

    def _trace_release(self, job: Job, now: float) -> None:
        """Emit the job_release trace event (callers gate on _trace_on)."""
        self.tracer.emit(
            EventName.JOB_RELEASE,
            now,
            task=job.task.task_id,
            job=job.index,
            level=job.task.level.name,
            exec_time=job.exec_time,
            virtual_release=job.virtual_release,
            virtual_pp=job.virtual_pp,
        )

    def _maybe_complete_zero(self, job: Job, now: float) -> None:
        """Jobs with zero demand complete instantly without being scheduled."""
        if job.exec_time <= 0.0:
            self._complete_job(job, now)

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------
    def _finish_running(self, proc: Processor, job: Job, now: float) -> None:
        """Complete *job*, currently running on *proc*, at *now*.

        Shared by both dispatch modes' exhausted-job pre-pass; the caller
        must have advanced *proc* to *now* first.
        """
        job.remaining = 0.0
        cpu = proc.cpu_id
        self._record_interval(cpu, job, self._run_start[cpu], now)
        proc.assign(None, now)
        job.running_on = None
        job.last_cpu = cpu
        job.generation += 1
        self._complete_job(job, now)

    def _on_completion(self, ev: Event, now: float) -> None:
        # Completions are actually performed in the advance pre-pass of
        # _handle (so they cannot lose a same-instant ordering race with
        # releases); the COMPLETION event only serves as the wakeup.  A
        # still-valid event whose job has remaining work can only arise
        # from float drift: deschedule and let the reschedule re-issue a
        # corrected completion event.
        job: Job = ev.payload
        if ev.generation != job.generation or job.running_on is None:
            return  # stale, or already completed by the pre-pass
        cpu = job.running_on
        proc = self.processors[cpu]
        proc.advance(now)  # no-op in baseline mode (already advanced)
        if job.remaining > completion_eps(now):
            job.generation += 1
            self._record_interval(cpu, job, self._run_start[cpu], now)
            job.running_on = None
            job.last_cpu = cpu
            proc.assign(None, now)

    def _complete_job(self, job: Job, now: float) -> None:
        job.completion = now
        self._remove_job(job)
        level = job.task.level
        if level is CriticalityLevel.C:
            # Algorithm 1 job_complete() lines 10-12: resolve the actual PP
            # if the virtual PP already passed (Fig. 5(d) case; the (c) case
            # was handled by change_speed).
            virt = self.clock.act_to_virt(now)
            if job.actual_pp is None and job.virtual_pp is not None and job.virtual_pp < virt:
                job.actual_pp = self.clock.virt_to_act(job.virtual_pp)
            # The monitor report (including the queue_empty flag) is
            # delivered at end-of-instant, after every same-timestamp
            # event has been applied (see _handle / _flush_reports).
            self._report_buffer.append(job)
        self.trace.record_job(job)
        if self._trace_on:
            self.tracer.emit(
                EventName.JOB_COMPLETE,
                now,
                task=job.task.task_id,
                job=job.index,
                level=level.name,
                release=job.release,
                response=now - job.release,
                actual_pp=job.actual_pp,
            )

    def _flush_reports(self, now: float) -> None:
        """Deliver buffered completion reports with final instant state.

        The report's ``queue_empty`` flag carries Def. 3's "a processor
        idles at *t*" signal: in the settled end-of-instant state (all
        same-timestamp releases and completions applied, matching the
        pending semantics ``r <= t < t^c``), the CPUs claimed by pending
        level-A/B work plus the eligible (precedence-wise) level-C jobs
        leave at least one processor with nothing to run.  Merely "no
        eligible job waiting" is not enough: when a completion's freed
        CPU is immediately refilled from the queue, the queue drains
        while every processor stays busy, and such an instant must not
        become an idle-instant candidate (Def. 2 would not hold).
        """
        eligible_c = (
            self._head_c.values() if self._incremental else self._eligible(self.jobs_c)
        )
        m = self.taskset.m
        busy_ab = sum(
            1 for cpu in range(m) if self.jobs_a[cpu] or self.jobs_b[cpu]
        )
        processor_idle = busy_ab + len(eligible_c) < m
        buffered, self._report_buffer = self._report_buffer, []
        for job in buffered:
            report = CompletionReport(
                task=job.task,
                job_index=job.index,
                release=job.release,
                actual_pp=job.actual_pp,
                comp_time=job.completion if job.completion is not None else now,
                queue_empty=processor_idle,
            )
            if self.config.monitor_latency > 0.0:
                self.engine.push(
                    Event(
                        time=report.comp_time + self.config.monitor_latency,
                        kind=EventKind.MONITOR_REPORT,
                        payload=("complete", report),
                    )
                )
            else:
                self.monitor.on_job_complete(report)

    def _remove_job(self, job: Job) -> None:
        level = job.task.level
        if level is CriticalityLevel.A:
            self.jobs_a[job.task.cpu].remove(job)  # type: ignore[index]
        elif level is CriticalityLevel.B:
            self.jobs_b[job.task.cpu].remove(job)  # type: ignore[index]
        elif level is CriticalityLevel.C:
            self.jobs_c.remove(job)
        else:
            self.jobs_d.remove(job)
        if self._incremental:
            self._deindex_complete(job)

    # ------------------------------------------------------------------
    # Incremental-dispatcher bookkeeping (see __init__ for invariants)
    # ------------------------------------------------------------------
    def _index_release(self, job: Job) -> None:
        """Register a newly released job with the dispatch indexes."""
        task = job.task
        level = task.level
        if level is CriticalityLevel.A:
            heapq.heappush(
                self._heap_a[task.cpu],  # type: ignore[index]
                (task.period, task.task_id, job.index, job),
            )
        elif level is CriticalityLevel.B:
            assert job.deadline is not None
            heapq.heappush(
                self._heap_b[task.cpu],  # type: ignore[index]
                (job.deadline, task.task_id, job.index, job),
            )
        else:
            q = self._pending_cd[task.task_id]
            q.append(job)
            if q[0] is job:  # no earlier incomplete job: this is the head
                if level is CriticalityLevel.C:
                    self._head_c[task.task_id] = job
                    assert job.virtual_pp is not None
                    insort(
                        self._ready_c,
                        (job.virtual_pp, task.task_id, job.index, job),
                    )
                else:
                    self._head_d[task.task_id] = job

    def _deindex_complete(self, job: Job) -> None:
        """Drop a completed C/D job from the dispatch indexes.

        Level-A/B heap entries are not removed here; they are popped
        lazily when they surface at the top of their heap (their keys
        grow monotonically per task, so they cannot linger below newer
        entries forever).
        """
        level = job.task.level
        if level is not CriticalityLevel.C and level is not CriticalityLevel.D:
            return
        tid = job.task.task_id
        q = self._pending_cd[tid]
        heads = self._head_c if level is CriticalityLevel.C else self._head_d
        if q and q[0] is job:
            q.popleft()
            if level is CriticalityLevel.C:
                self._remove_ready_c(job, tid)
            if q:
                head = q[0]
                heads[tid] = head
                if level is CriticalityLevel.C:
                    assert head.virtual_pp is not None
                    insort(self._ready_c, (head.virtual_pp, tid, head.index, head))
            else:
                del heads[tid]
        elif q and q[-1] is job:
            # A zero-demand job completing at its own release instant
            # never became its task's head: drop it from the tail.
            q.pop()
        else:  # pragma: no cover - unreachable via kernel release paths
            q.remove(job)

    def _remove_ready_c(self, job: Job, tid: int) -> None:
        """Remove *job*'s (unique, immutable-keyed) ready-list entry."""
        entry = (job.virtual_pp, tid, job.index, job)
        pos = bisect_left(self._ready_c, entry)
        # (virtual_pp, tid, idx) is unique per job, so the probe lands
        # exactly on the entry; tuple comparison never reaches the Job
        # element (which has identity equality only).
        assert self._ready_c[pos][3] is job
        del self._ready_c[pos]

    def _top_ready_c(self, k: int) -> List[Job]:
        """The up-to-*k* highest-priority level-C heads, ascending.

        The ready list is exact (one entry per head, eagerly removed on
        head change), so the top-k peek is a slice — no validity checks,
        no heap churn.
        """
        return [entry[3] for entry in self._ready_c[:k]]

    # ------------------------------------------------------------------
    # Monitor plumbing
    # ------------------------------------------------------------------
    def _notify_release(self, job: Job, now: float) -> None:
        if self.config.monitor_latency > 0.0:
            self.engine.push(
                Event(
                    time=now + self.config.monitor_latency,
                    kind=EventKind.MONITOR_REPORT,
                    payload=("release", job.jid),
                )
            )
        else:
            self.monitor.on_job_release(job.jid)

    def _deliver_report(self, payload: Tuple[str, object], now: float) -> None:
        kind, data = payload
        if kind == "release":
            self.monitor.on_job_release(data)  # type: ignore[arg-type]
        else:
            self.monitor.on_job_complete(data)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # The change_speed system call (Algorithm 1 lines 14-22)
    # ------------------------------------------------------------------
    def change_speed(self, new_speed: float, now: float) -> None:
        """Install a new virtual-clock speed; called by the monitor."""
        if not self.config.use_virtual_time:
            raise RuntimeError("change_speed requires use_virtual_time=True")
        if self.config.measure_overhead:
            with self.spans.span("change_speed"):
                self._change_speed(new_speed, now)
        else:
            self._change_speed(new_speed, now)

    def _change_speed(self, new_speed: float, now: float) -> None:
        assert isinstance(self.clock, VirtualClock)
        virt = self.clock.act_to_virt(now)  # lines 14-15
        for job in self.jobs_c:  # lines 16-17
            if job.actual_pp is None and job.virtual_pp is not None and job.virtual_pp < virt:
                job.actual_pp = self.clock.virt_to_act(job.virtual_pp)
        self.clock.change_speed(new_speed, now)  # lines 18-20
        self.trace.record_speed_change(now, new_speed)
        if self._trace_on:
            self.tracer.emit(EventName.SPEED_CHANGE, now, speed=new_speed)
        # Lines 21-22: re-arm every pending level-C release timer.
        # Speed changes are rare (a handful per recovery episode), so
        # the phase profile times every re-arm pass in full.
        t0 = perf_counter_ns() if self._phase_on else 0
        stale_before = self._stale_releases
        for t in self.taskset.level(CriticalityLevel.C):
            self._release_gen[t.task_id] += 1
            gen = self._release_gen[t.task_id]
            ctrl = self.controllers[t.task_id]
            nxt = ctrl.next_release_actual(self.clock, now)
            self.engine.push(
                Event(time=nxt, kind=EventKind.RELEASE, payload=t.task_id, generation=gen)
            )
            self._stale_releases += 1
        if self._phase_on:
            self._ph_rearm_ns += perf_counter_ns() - t0
            self._ph_rearm += self._stale_releases - stale_before
            self._ph_rearm_calls += 1
        if self._stale_releases > COMPACT_STALE_RATIO * len(self.taskset):
            self._compact_release_timers()

    def _compact_release_timers(self) -> None:
        """Drop superseded release-timer entries from the event heap.

        Generation-stamped cancellation leaves each re-armed timer's old
        entry in the heap until it pops; when speed changes re-arm
        timers faster than the dead entries drain (slow virtual speeds
        push re-armed fire times far out while the dead entries' times
        recede into the past only as fast as simulated time advances),
        the heap — and the event count spent discarding stale pops —
        grows with every recovery episode.  Filtering them out here
        keeps the heap at O(live timers).  Survivors keep their original
        keys, so the pop order of everything else is untouched.
        """
        gens = self._release_gen
        self.engine.queue.compact(
            lambda ev: ev.kind is EventKind.RELEASE
            and ev.generation != gens[ev.payload]
        )
        self._stale_releases = 0

    # ------------------------------------------------------------------
    # Dispatching (MC² architecture, Fig. 1)
    # ------------------------------------------------------------------
    def _reschedule(self, now: float) -> None:
        if self.config.measure_overhead:
            with self.spans.span("pick_next"):
                self._pick_next(now)
        else:
            self._pick_next(now)

    def _pick_next_baseline(self, now: float) -> None:
        """The original advance-everything/sort-everything dispatch.

        O(m + n log n) per event; kept verbatim as the differential
        ground truth for the incremental path (``repro.sim.diffcheck``).
        """
        m = self.taskset.m
        assignment: List[Optional[Job]] = [None] * m
        # Level A claims its CPU first (highest priority, table order).
        for p in range(m):
            if self.jobs_a[p]:
                assignment[p] = pick_table_driven(self.jobs_a[p])
        # Level B: partitioned EDF on CPUs without level-A work.
        for p in range(m):
            if assignment[p] is None and self.jobs_b[p]:
                assignment[p] = pick_edf(self.jobs_b[p])
        # Level C: global GEL-v on the remaining CPUs.  Only each task's
        # earliest incomplete job is eligible: jobs of one task execute
        # sequentially (intra-task precedence), which is what makes a
        # single task's utilization a genuine bottleneck (paper Fig. 3).
        free = [p for p in range(m) if assignment[p] is None]
        if free and self.jobs_c:
            for cpu, job in select_gel_jobs(self._eligible(self.jobs_c), free).items():
                assignment[cpu] = job
        # Level D: background on whatever is left.
        left = [p for p in range(m) if assignment[p] is None]
        if left and self.jobs_d:
            self._dispatch_level_d(assignment, left, self._eligible(self.jobs_d))
        self._apply_assignment(assignment, now)

    def _pick_next_incremental(self, now: float) -> None:
        """Heap-backed dispatch: O(m + k log n) per event.

        Selects exactly what :meth:`_pick_next_baseline` would — level-A
        RM and level-B EDF minima come from per-CPU lazy heaps, the
        level-C GEL-v top-k from the ready heap (same key, same
        tie-break), and placement reuses the same migration-averse pass —
        so the resulting assignment is bit-identical.
        """
        m = self.taskset.m
        assignment: List[Optional[Job]] = [None] * m
        free: List[int] = []
        heaps_a, heaps_b = self._heap_a, self._heap_b
        for p in range(m):
            heap = heaps_a[p]
            while heap and heap[0][3].completion is not None:
                heapq.heappop(heap)  # lazily drop completed entries
            if not heap:
                heap = heaps_b[p]
                while heap and heap[0][3].completion is not None:
                    heapq.heappop(heap)
            if heap:
                assignment[p] = heap[0][3]
            else:
                free.append(p)
        if free and self._ready_c:
            chosen = self._top_ready_c(len(free))
            for cpu, job in place_gel_jobs(chosen, free).items():
                assignment[cpu] = job
        left = [p for p in range(m) if assignment[p] is None]
        if left and self._head_d:
            self._dispatch_level_d(assignment, left, self._head_d.values())
        self._apply_assignment(assignment, now)

    def _dispatch_level_d(
        self,
        assignment: List[Optional[Job]],
        left: List[int],
        eligible: "Sequence[Job] | object",
    ) -> None:
        """Fill leftover CPUs with best-effort level-D work (in place).

        Keeps running D jobs where they are, then fills FIFO; the result
        does not depend on *eligible*'s iteration order (the FIFO key is
        unique per job), so the baseline's list scan and the incremental
        head registry produce identical assignments.
        """
        pool = [
            j
            for j in eligible  # type: ignore[union-attr]
            if j.running_on is None or j.running_on in left
        ]
        for p in left:
            cur = self.processors[p].current
            if cur is not None and cur in pool:
                assignment[p] = cur
                pool.remove(cur)
        for p in left:
            if assignment[p] is None and pool:
                nxt = pick_best_effort(pool)
                assignment[p] = nxt
                pool.remove(nxt)  # type: ignore[arg-type]

    @staticmethod
    def _eligible(jobs: Sequence[Job]) -> List[Job]:
        """Each task's earliest incomplete job (intra-task precedence)."""
        head: Dict[int, Job] = {}
        for j in jobs:
            cur = head.get(j.task.task_id)
            if cur is None or j.index < cur.index:
                head[j.task.task_id] = j
        return list(head.values())

    def _apply_assignment(self, assignment: Sequence[Optional[Job]], now: float) -> None:
        eps = completion_eps(now)
        # Pass 1: stop jobs that lost their CPU (or must migrate).
        for p, proc in enumerate(self.processors):
            old = proc.current
            new = assignment[p]
            if old is new:
                continue
            if old is not None:
                proc.advance(now)  # no-op unless lazily deferred
                self._record_interval(p, old, self._run_start[p], now)
                old.generation += 1
                old.running_on = None
                old.last_cpu = p
                proc.assign(None, now)
                if old.remaining > eps:
                    self.preemptions += 1
                    if self._trace_on:
                        self.tracer.emit(
                            EventName.JOB_PREEMPT, now,
                            task=old.task.task_id, job=old.index, cpu=p,
                        )
        # Pass 2: start newly placed jobs and schedule their completions.
        for p, proc in enumerate(self.processors):
            new = assignment[p]
            if new is None or proc.current is new:
                continue
            if new.running_on is not None:
                # Migrating without a pause: close the old interval.
                old_cpu = new.running_on
                self.processors[old_cpu].advance(now)  # no-op unless deferred
                self._record_interval(old_cpu, new, self._run_start[old_cpu], now)
                self.processors[old_cpu].assign(None, now)
                new.generation += 1
            if new.last_cpu is not None and new.last_cpu != p:
                self.migrations += 1
                if self._trace_on:
                    self.tracer.emit(
                        EventName.JOB_MIGRATE, now,
                        task=new.task.task_id, job=new.index,
                        from_cpu=new.last_cpu, to_cpu=p,
                    )
            proc.assign(new, now)
            new.running_on = p
            new.last_cpu = p
            self._run_start[p] = now
            self.engine.push(
                Event(
                    time=now + new.remaining,
                    kind=EventKind.COMPLETION,
                    payload=new,
                    generation=new.generation,
                )
            )

    def _record_interval(self, cpu: int, job: Job, start: float, end: float) -> None:
        """Close one execution interval: in-memory trace + event stream.

        The tracer sees intervals whenever tracing is on, independently
        of ``record_intervals`` (which gates only the in-memory copy);
        both apply the same empty-interval filter, so with both enabled
        the counts match exactly.
        """
        self.trace.record_interval(cpu, job, start, end)
        if self._trace_on and end > start:
            self.tracer.emit(
                EventName.EXEC_INTERVAL,
                end,
                cpu=cpu,
                task=job.task.task_id,
                job=job.index,
                start=start,
                end=end,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.engine.now

    @property
    def events_processed(self) -> int:
        """Events handled so far (backend-neutral; see also ``engine``)."""
        return self.engine.events_processed

    def pending_c_released_before(self, end: float) -> bool:
        """True if any incomplete level-C job was released before *end*.

        Backend-neutral accessor for settling predicates (the SoA
        backend has no ``Job`` objects to iterate).
        """
        return any(j.release < end for j in self.jobs_c)

    @property
    def sched_overheads(self) -> List[int]:
        """Scheduler-invocation wall-clock samples in ns (Fig. 9).

        Backed by the metrics registry's span histograms
        (``kernel.pick_next.ns`` + ``kernel.change_speed.ns``); populated
        only when ``config.measure_overhead`` is set.
        """
        return [
            int(v)
            for name in ("kernel.pick_next.ns", "kernel.change_speed.ns")
            for v in self.metrics.histogram(name).samples
        ]

    def pending_level_c(self) -> List[Job]:
        """Incomplete released level-C jobs (the kernel's pending set)."""
        return list(self.jobs_c)


def simulate(
    taskset: TaskSet,
    until: float,
    behavior: Optional[ExecutionBehavior] = None,
    monitor_factory: Optional[Callable[[MC2Kernel], Monitor]] = None,
    config: Optional[KernelConfig] = None,
    stop: Optional[Callable[[MC2Kernel, Monitor], bool]] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple[Trace, MC2Kernel, Monitor]:
    """Convenience wrapper: build a kernel, attach a monitor, run.

    Parameters
    ----------
    taskset, until, behavior, config, tracer:
        Passed through to the kernel backend selected by
        ``config.backend`` (default ``"reference"``).
    monitor_factory:
        ``kernel -> Monitor``; defaults to a :class:`NullMonitor`.
    stop:
        Optional early-exit predicate ``(kernel, monitor) -> bool``.

    Returns
    -------
    (trace, kernel, monitor)
    """
    from repro.sim.backend import create_kernel

    kernel = create_kernel(taskset, behavior=behavior, config=config, tracer=tracer)
    monitor = monitor_factory(kernel) if monitor_factory else NullMonitor(kernel)
    kernel.attach_monitor(monitor)
    pred = (lambda: stop(kernel, monitor)) if stop else None
    trace = kernel.run(until, stop=pred)
    return trace, kernel, monitor
