"""Event types and the deterministic event queue.

The simulator is event-driven: nothing happens between events, so the
engine jumps from event to event.  Three properties matter for
reproducibility and correctness:

1. **Total order.**  Events are ordered by ``(time, kind, seq)``; ``seq``
   is a global insertion counter, so equal-time/equal-kind events process
   in insertion order and runs are bit-for-bit deterministic.
2. **Kind priority at equal times.**  Releases process before
   completions (a job releasing at the same instant another completes is
   already pending at that instant, per the paper's pending definition
   ``r <= t < t^c``), completions before deferred monitor reports,
   reports before generic callbacks, and the end-of-simulation marker
   last.
3. **Cancellation.**  Release timers are re-armed on every virtual-clock
   speed change (Algorithm 1 lines 21-22) and tentative completion events
   die on preemption.  Rather than deleting from the heap, events carry a
   generation stamp; stale generations are discarded when popped.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """Event kinds; the integer value is the equal-time processing order."""

    #: A job release timer fires (payload: task_id, generation).
    RELEASE = 0
    #: A running job's tentative completion (payload: job, generation).
    COMPLETION = 1
    #: Deferred delivery of a completion report to the monitor
    #: (payload: CompletionReport) — used when monitor latency is modelled.
    MONITOR_REPORT = 2
    #: A generic timer: the kernel invokes ``payload(now)``.  Used by
    #: cross-cutting layers (e.g. fault injection) to schedule work at a
    #: future instant without growing kernel-specific event kinds.
    #: Processed after same-instant reports (the callback sees the
    #: instant's final state) but before END.
    CALLBACK = 3
    #: End of simulation.
    END = 4


@dataclass(frozen=True)
class Event:
    """One scheduled event."""

    time: float
    kind: EventKind
    #: Kind-specific payload (task id, job, or report).
    payload: Any = None
    #: Generation stamp for cancellable events; compared against the
    #: owner's current generation on pop.
    generation: int = 0


class EventQueue:
    """A deterministic min-heap of :class:`Event`.

    Heap entries are ``(time, kind, seq, event)``; ``seq`` breaks all
    remaining ties by insertion order.
    """

    def __init__(self) -> None:
        self._heap: List[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        """Insert an event."""
        heapq.heappush(
            self._heap, (event.time, int(event.kind), next(self._counter), event)
        )

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises :class:`IndexError` when empty.
        """
        return heapq.heappop(self._heap)[3]

    def compact(self, is_stale: Callable[[Event], bool]) -> int:
        """Drop every event for which ``is_stale(event)`` is true.

        Lazy cancellation (generation stamps) normally leaves dead
        entries in the heap until they pop; when a workload re-arms
        timers much faster than the dead entries drain (e.g. rapid
        virtual-clock speed changes re-arming every level-C release
        timer), the heap grows without bound.  Compaction filters the
        dead entries out in one O(n) pass, preserving the original
        ``(time, kind, seq)`` keys of the survivors so the total order
        (and therefore every future pop) is unchanged.

        Returns the number of entries removed.
        """
        kept = [entry for entry in self._heap if not is_stale(entry[3])]
        removed = len(self._heap) - len(kept)
        if removed:
            heapq.heapify(kept)
            self._heap = kept
        return removed

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
