"""Struct-of-arrays kernel backend: the simulator's hot path.

:class:`SoAKernel` is a drop-in replacement for
:class:`~repro.sim.kernel.MC2Kernel` (selected via
``KernelConfig.backend = "soa"``, see :mod:`repro.sim.backend`) that
trades the reference kernel's per-job/per-event Python objects for flat
parallel arrays and a fused event loop:

* **Struct-of-arrays job records.**  A job is an integer *slot* into
  parallel columns (``j_rel``, ``j_rem``, ``j_gen``, ...).  Slots are
  append-only for the lifetime of a run — the per-CPU lazy heaps keep
  ``(key..., slot)`` entries that must never alias a recycled slot.
* **Pooled event slots.**  Heap entries are ``(time, kind<<50 | seq,
  slot)`` tuples of primitives; the kind/seq packing reproduces the
  reference queue's ``(time, kind, seq)`` total order exactly, and the
  payload columns (``_ev_a``/``_ev_gen``/``_ev_obj``) are recycled
  through a free list instead of allocating an ``Event`` per push.
* **A fused engine + handler loop.**  One ``while`` loop replaces the
  Engine/handler/dispatcher call chain, with every per-event structure
  bound to a local.  Dispatch is additionally skipped when no event
  since the last dispatch mutated any dispatch input (stale pops and
  monitor deliveries cannot change the assignment), which is
  observationally invisible.
* **Batched timer coalescing.**  Re-armed release timers are
  generation-invalidated in bulk (one counter bump per task per speed
  change) and the superseded heap entries are compacted away at the
  same threshold as the reference backend
  (:data:`repro.sim.kernel.COMPACT_STALE_RATIO`), keeping event counts
  aligned between backends.

The behavioural contract is **byte identity**: every observable —
job-record order and values, execution intervals, speed changes,
preemption/migration counts, processed-event counts, monitor state —
must match the reference backend bit for bit.  The diffcheck property
suite and the golden-fingerprint corpus enforce this; see DESIGN.md
"Kernel backends" for the invariants that keep it true.  Columns are
plain Python lists (not ``array``/numpy): unboxed-element access from
the interpreter is faster than ``array``'s box-on-getitem, and numpy
round-trips would change float identities on the hot comparisons.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from collections import deque
from time import perf_counter_ns
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.monitor import CompletionReport, Monitor, NullMonitor
from repro.core.svo import ReleaseController
from repro.core.virtual_time import VirtualClock
from repro.model.behavior import ConstantBehavior, ExecutionBehavior
from repro.model.task import CriticalityLevel
from repro.model.taskset import TaskSet
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTimer
from repro.obs.telemetry import PHASE_PROFILER, PHASE_SAMPLE_MASK
from repro.obs.tracer import NULL_TRACER, EventName, Tracer
from repro.sim import kernel as _kernel_mod
from repro.sim.kernel import KernelConfig, _IdentityClock
from repro.sim.trace import Trace

__all__ = ["SoAKernel"]

#: Bit position of the event kind inside the packed heap key.  seq is a
#: monotone per-kernel push counter; 2**50 pushes (~1e15) is out of
#: reach, so ``kind << 50 | seq`` orders exactly like ``(kind, seq)``.
_KS = 50

_INF = float("inf")

_RELEASE = 0
_COMPLETION = 1
_MONITOR_REPORT = 2
_CALLBACK = 3
_END = 4

_LEVEL_CODE = {
    CriticalityLevel.A: 0,
    CriticalityLevel.B: 1,
    CriticalityLevel.C: 2,
    CriticalityLevel.D: 3,
}


class SoAKernel:
    """Flat-array MC² kernel, trace-identical to the reference backend."""

    def __init__(
        self,
        taskset: TaskSet,
        behavior: Optional[ExecutionBehavior] = None,
        config: Optional[KernelConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.taskset = taskset
        self.behavior: ExecutionBehavior = (
            behavior if behavior is not None else ConstantBehavior()
        )
        self.config = config if config is not None else KernelConfig()
        if self.config.dispatcher not in ("incremental", "baseline"):
            raise ValueError(
                f"unknown dispatcher {self.config.dispatcher!r}; "
                "expected 'incremental' or 'baseline'"
            )
        self.trace = Trace(record_intervals=self.config.record_intervals)
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        self._trace_on = self.tracer.enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = SpanTimer(self.metrics, prefix="kernel")
        # Phase profiling (repro.obs.telemetry): process-global toggle
        # read once, like _trace_on.  Counts ride on fused-loop locals;
        # wall-clock is sampled every (PHASE_SAMPLE_MASK+1)-th event.
        self._phase_on = PHASE_PROFILER.enabled
        self._ph_dispatch = 0
        self._ph_dispatch_ns = 0
        self._ph_dispatch_samples = 0
        self._ph_monitor = 0
        self._ph_monitor_ns = 0
        self._ph_monitor_samples = 0
        self._ph_rearm = 0
        self._ph_rearm_ns = 0
        self._ph_rearm_calls = 0
        self.monitor: Monitor = NullMonitor(self)
        if self.config.use_virtual_time:
            self.clock: VirtualClock | _IdentityClock = VirtualClock(0.0)
        else:
            self.clock = _IdentityClock()

        m = taskset.m
        self._m = m
        self._cpus: Tuple[int, ...] = tuple(range(m))

        # Per-task constant columns (dict-keyed: task ids are sparse).
        self._task_of = {t.task_id: t for t in taskset}
        self._level_of = {t.task_id: t.level for t in taskset}
        self._level_code = {t.task_id: _LEVEL_CODE[t.level] for t in taskset}
        self._cpu_of = {t.task_id: t.cpu for t in taskset}
        self._period_of = {t.task_id: t.period for t in taskset}
        self._rel_pp = {t.task_id: t.relative_pp for t in taskset}

        # Job columns (slot = append-only index; see module docstring).
        self.j_tid: List[int] = []
        self.j_idx: List[int] = []
        self.j_rel: List[float] = []
        self.j_exec: List[float] = []
        self.j_rem: List[float] = []
        self.j_vrel: List[Optional[float]] = []
        self.j_vpp: List[Optional[float]] = []
        self.j_app: List[Optional[float]] = []
        self.j_comp: List[Optional[float]] = []
        self.j_run: List[int] = []  # CPU running the job, -1 if none
        self.j_last: List[int] = []  # CPU the job last ran on, -1 if never
        self.j_gen: List[int] = []  # scheduling generation stamp

        # Per-CPU columns (Processor's fields, flattened).
        self._cur: List[int] = [-1] * m
        self._since: List[float] = [0.0] * m
        self._anch_t: List[float] = [0.0] * m
        self._anch_r: List[float] = [0.0] * m
        self._run_start: List[float] = [0.0] * m

        # Per-level pools of incomplete released job slots.
        self.jobs_a: List[List[int]] = [[] for _ in range(m)]
        self.jobs_b: List[List[int]] = [[] for _ in range(m)]
        self.jobs_c: List[int] = []
        self.jobs_d: List[int] = []

        # Dispatch indexes — same invariants as MC2Kernel's (see its
        # __init__ comment), with slots in place of Job references.
        self._pending_cd: Dict[int, Deque[int]] = {
            t.task_id: deque()
            for t in taskset
            if t.level is CriticalityLevel.C or t.level is CriticalityLevel.D
        }
        self._head_c: Dict[int, int] = {}
        self._head_d: Dict[int, int] = {}
        self._ready_c: List[Tuple[float, int, int, int]] = []
        self._heap_a: List[List[Tuple[float, int, int, int]]] = [
            [] for _ in range(m)
        ]
        self._heap_b: List[List[Tuple[float, int, int, int]]] = [
            [] for _ in range(m)
        ]

        # Pooled event slots + packed heap.
        self._heap: List[Tuple[float, int, int]] = []
        self._ev_a: List[int] = []
        self._ev_gen: List[int] = []
        self._ev_obj: List[object] = []
        self._ev_free: List[int] = []
        self._seq = 0

        # Release bookkeeping.
        self.controllers: Dict[int, ReleaseController] = {}
        self._release_gen: Dict[int, int] = {}
        self._stale_releases = 0

        self._report_buffer: List[int] = []
        self.preemptions = 0
        self.migrations = 0
        self.events_processed = 0
        self._now = 0.0
        self._run_gen = 0
        self._latency = self.config.monitor_latency
        self._measure = self.config.measure_overhead
        self._rec_enabled = self.config.record_intervals or self._trace_on
        #: Reused assignment buffer (the reference allocates per event;
        #: the contents are fully rewritten before each use).
        self._assign_buf: List[int] = [-1] * m
        #: Cached per-CPU A/B pick: the top A (else top B) job slot, -1
        #: when that CPU has no A/B work.  Only an A/B release or
        #: completion on a CPU can change its pick, so those paths mark
        #: the CPU stale and _dispatch rescans just the stale ones.
        self._ab_top: List[int] = [-1] * m
        self._ab_stale: List[bool] = [True] * m
        #: CPUs whose _ab_top needs a rescan (each appears at most once;
        #: the bool list guards duplicates and gives O(1) membership).
        self._ab_stale_cpus: List[int] = list(range(m))
        #: Cached CPUs with no A/B work (ascending); None = recompute.
        self._ab_free: Optional[List[int]] = None
        #: Lower bound on the earliest instant any running job can have
        #: exhausted its budget: min over busy CPUs of anchor_time +
        #: anchor_remaining.  May be stale-low after a deschedule (that
        #: only costs a wasted scan, never a missed completion); the
        #: per-event completion pre-pass is skipped while now is clearly
        #: before this bound.
        self._next_done: float = float("inf")
        #: Pre-bound append methods for the job columns (the columns are
        #: append-only and never rebound, so binding once is safe); this
        #: trims two lookups per column from the per-release hot path.
        self._ap_tid = self.j_tid.append
        self._ap_idx = self.j_idx.append
        self._ap_rel = self.j_rel.append
        self._ap_exec = self.j_exec.append
        self._ap_rem = self.j_rem.append
        self._ap_vrel = self.j_vrel.append
        self._ap_vpp = self.j_vpp.append
        self._ap_app = self.j_app.append
        self._ap_comp = self.j_comp.append
        self._ap_run = self.j_run.append
        self._ap_last = self.j_last.append
        self._ap_gen = self.j_gen.append
        #: Whether any dispatch input changed since the last dispatch.
        self._dirty = True
        self._started = False
        self._finished = False

    # ------------------------------------------------------------------
    # Setup / lifecycle (mirrors MC2Kernel)
    # ------------------------------------------------------------------
    def attach_monitor(self, monitor: Monitor) -> None:
        """Install the userspace monitor (must happen before :meth:`run`)."""
        if self._started:
            raise RuntimeError("monitor must be attached before the simulation starts")
        if not self.config.use_virtual_time and not isinstance(monitor, NullMonitor):
            raise ValueError(
                "active monitors require use_virtual_time=True; the plain-GEL "
                "baseline only supports NullMonitor"
            )
        self.monitor = monitor
        monitor.tracer = self.tracer

    def _arm_initial_releases(self) -> None:
        for t in self.taskset:
            delay = (
                self.config.release_delay
                if t.level is not CriticalityLevel.A
                else None
            )
            ctrl = ReleaseController(t, release_delay=delay)
            self.controllers[t.task_id] = ctrl
            self._release_gen[t.task_id] = 0
            first = ctrl.next_release_actual(self.clock, 0.0)
            self._push_event(first, _RELEASE, t.task_id, 0, None, self._now)

    def start(self) -> None:
        """Arm the initial release timers (idempotent)."""
        if not self._started:
            self._started = True
            self._arm_initial_releases()

    def finish(self) -> Trace:
        """Close the trace (record still-running intervals and incomplete jobs)."""
        if not self._finished:
            self._finished = True
            self._finalize(self._now)
        return self.trace

    def run(
        self, until: float, stop: Optional[Callable[[], bool]] = None
    ) -> Trace:
        """Convenience: :meth:`run_until` one segment, then :meth:`finish`."""
        self.run_until(until, stop)
        return self.finish()

    # ------------------------------------------------------------------
    # The fused event loop (Engine.run + MC2Kernel._handle in one frame)
    # ------------------------------------------------------------------
    def run_until(
        self, until: float, stop: Optional[Callable[[], bool]] = None
    ) -> float:
        """Simulate up to *until* (or until *stop* fires); resumable."""
        self.start()
        if self._finished:
            raise RuntimeError("cannot resume a finished kernel")
        self._run_gen += 1
        run_gen = self._run_gen
        now = self._now
        self._push_event(until, _END, -1, run_gen, None, now)
        heap = self._heap
        heappop_ = heapq.heappop
        heappush_ = heapq.heappush
        ev_a = self._ev_a
        ev_gen = self._ev_gen
        ev_obj = self._ev_obj
        ev_free = self._ev_free
        cur = self._cur
        since = self._since
        anch_t = self._anch_t
        anch_r = self._anch_r
        run_start = self._run_start
        j_rem = self.j_rem
        j_gen = self.j_gen
        j_run = self.j_run
        j_last = self.j_last
        release_gen = self._release_gen
        cpus = self._cpus
        rec = self._rec_enabled
        measure = self._measure
        monitor = self.monitor
        events = self.events_processed
        phase_on = self._phase_on
        ph_dispatch = 0
        ph_dispatch_ns = 0
        ph_dispatch_samples = 0
        while heap:
            entry = heappop_(heap)
            time = entry[0]
            if time > until:
                # Put it back for a later run segment (fresh seq, like
                # the reference queue's re-push).
                seq = self._seq
                self._seq = seq + 1
                heappush_(heap, (time, ((entry[1] >> _KS) << _KS) | seq, entry[2]))
                now = until
                break
            tol = now * 1e-15  # inlined engine.past_tolerance(now)
            if tol < 1e-12:
                tol = 1e-12
            if time < now - tol:
                raise RuntimeError(f"event at {time} precedes now={now}")
            if time > now:
                now = time
            key = entry[1]
            slot = entry[2]
            kind = key >> _KS
            if kind == _END:
                gen = ev_gen[slot]
                ev_obj[slot] = None
                ev_free.append(slot)
                if gen == run_gen:
                    break
                continue  # stale END from an interrupted earlier segment
            events += 1
            self._now = now
            self.events_processed = events
            eps = now * 1e-15  # inlined kernel.completion_eps(now)
            if eps < 1e-9:
                eps = 1e-9
            # Same-instant completion pre-pass (MC2Kernel._handle): a
            # release at this instant must not preempt a job with zero
            # remaining work.  Skipped while now is clearly before the
            # earliest possible budget exhaustion; the 1e-6 margin
            # dominates the rounding difference between the bound's
            # anch_t + anch_r and the exact per-CPU expression below.
            if self._next_done <= now + eps + 1e-6:
                nd = _INF
                for p in cpus:
                    js = cur[p]
                    if js >= 0:
                        if anch_r[p] - (now - anch_t[p]) <= eps:
                            j_rem[js] = 0.0
                            if rec:
                                self._record_interval(p, js, run_start[p], now)
                            cur[p] = -1
                            since[p] = now
                            anch_t[p] = now
                            anch_r[p] = 0.0
                            j_run[js] = -1
                            j_last[js] = p
                            j_gen[js] += 1
                            self._complete_job(js, now)
                        else:
                            d = anch_t[p] + anch_r[p]
                            if d < nd:
                                nd = d
                self._next_done = nd
            if kind == _RELEASE:
                tid = ev_a[slot]
                gen = ev_gen[slot]
                ev_free.append(slot)
                if gen != release_gen[tid]:
                    self._stale_releases -= 1
                else:
                    self._do_release(tid, now)
            elif kind == _COMPLETION:
                js = ev_a[slot]
                gen = ev_gen[slot]
                ev_free.append(slot)
                p = j_run[js]
                if p >= 0 and gen == j_gen[js]:
                    # Still valid but with remaining work: float drift.
                    # Deschedule; the next dispatch re-issues a corrected
                    # completion event (MC2Kernel._on_completion).
                    if now != since[p]:
                        r = anch_r[p] - (now - anch_t[p])
                        j_rem[js] = r if r > 0.0 else 0.0
                    since[p] = now
                    if j_rem[js] > eps:
                        j_gen[js] += 1
                        if rec:
                            self._record_interval(p, js, run_start[p], now)
                        j_run[js] = -1
                        j_last[js] = p
                        cur[p] = -1
                        anch_t[p] = now
                        anch_r[p] = 0.0
                        self._dirty = True
            elif kind == _MONITOR_REPORT:
                payload = ev_obj[slot]
                ev_obj[slot] = None
                ev_free.append(slot)
                tag, data = payload  # type: ignore[misc]
                if tag == "release":
                    monitor.on_job_release(data)
                else:
                    monitor.on_job_complete(data)
            else:  # _CALLBACK
                cb = ev_obj[slot]
                ev_obj[slot] = None
                ev_free.append(slot)
                cb(now)  # type: ignore[operator]
                self._dirty = True
            # End-of-instant: deliver completion reports once no further
            # event shares this timestamp.
            if self._report_buffer and (not heap or heap[0][0] > now):
                if phase_on:
                    self._ph_monitor += len(self._report_buffer)
                    if events & PHASE_SAMPLE_MASK == 0:
                        t0 = perf_counter_ns()
                        self._flush_reports(now)
                        self._ph_monitor_ns += perf_counter_ns() - t0
                        self._ph_monitor_samples += 1
                    else:
                        self._flush_reports(now)
                else:
                    self._flush_reports(now)
            # Dispatch — skipped when provably a no-op: no mutation of a
            # dispatch input (pools, indexes, run state) since the last
            # dispatch means the same assignment, and re-applying an
            # unchanged assignment has no observable effect.  Speed
            # changes don't set the flag: they alter neither selection
            # keys (virtual PPs are fixed at release) nor run state.
            if self._dirty or measure:
                self._dirty = False
                if measure:
                    with self.spans.span("pick_next"):
                        self._dispatch(now, eps)
                elif phase_on:
                    ph_dispatch += 1
                    if events & PHASE_SAMPLE_MASK == 0:
                        t0 = perf_counter_ns()
                        self._dispatch(now, eps)
                        ph_dispatch_ns += perf_counter_ns() - t0
                        ph_dispatch_samples += 1
                    else:
                        self._dispatch(now, eps)
                else:
                    self._dispatch(now, eps)
            if stop is not None and stop():
                break
        self._now = now
        self.events_processed = events
        if phase_on:
            self._ph_dispatch += ph_dispatch
            self._ph_dispatch_ns += ph_dispatch_ns
            self._ph_dispatch_samples += ph_dispatch_samples
        # Between-segment advance (MC2Kernel.run_until): bring lazily
        # advanced run state up to date for outside inspection.
        for p in cpus:
            js = cur[p]
            if js >= 0 and now != since[p]:
                r = anch_r[p] - (now - anch_t[p])
                j_rem[js] = r if r > 0.0 else 0.0
            since[p] = now
        return now

    # ------------------------------------------------------------------
    # Event-slot pool
    # ------------------------------------------------------------------
    def _push_event(
        self, time: float, kind: int, a: int, gen: int, obj: object, now: float
    ) -> None:
        tol = now * 1e-15
        if tol < 1e-12:
            tol = 1e-12
        if time < now - tol:
            raise ValueError(f"cannot schedule event at {time}; now is {now}")
        free = self._ev_free
        if free:
            slot = free.pop()
            self._ev_a[slot] = a
            self._ev_gen[slot] = gen
            self._ev_obj[slot] = obj
        else:
            slot = len(self._ev_a)
            self._ev_a.append(a)
            self._ev_gen.append(gen)
            self._ev_obj.append(obj)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, (kind << _KS) | seq, slot))

    # ------------------------------------------------------------------
    # Releases
    # ------------------------------------------------------------------
    def _do_release(self, tid: int, now: float) -> None:
        # Dirty is set selectively below: only a release that changes a
        # dispatch input (a new A/B per-CPU top, a new C/D task head)
        # can alter the assignment the dispatcher would compute.
        ctrl = self.controllers[tid]
        clock = self.clock
        index, v_r = ctrl.fire(clock, now)
        task = self._task_of[tid]
        exec_time = self.behavior.exec_time(task, index, now)
        if exec_time < 0:
            raise ValueError(f"exec_time must be >= 0, got {exec_time}")
        js = len(self.j_tid)
        self._ap_tid(tid)
        self._ap_idx(index)
        self._ap_rel(now)
        self._ap_exec(exec_time)
        self._ap_rem(exec_time)
        self._ap_comp(None)
        self._ap_run(-1)
        self._ap_last(-1)
        self._ap_gen(0)
        level = self._level_code[tid]
        if level == 2:
            rel_pp = self._rel_pp[tid]
            assert rel_pp is not None
            vpp = v_r + rel_pp
            self._ap_vrel(v_r)
            self._ap_vpp(vpp)
            self._ap_app(None)
            self.jobs_c.append(js)
            q = self._pending_cd[tid]
            q.append(js)
            if q[0] == js:
                self._head_c[tid] = js
                insort(self._ready_c, (vpp, tid, index, js))
                self._dirty = True
            if self._trace_on:
                self._trace_release(tid, index, exec_time, v_r, vpp, now)
            if self._latency > 0.0:
                self._push_event(
                    now + self._latency,
                    _MONITOR_REPORT,
                    -1,
                    0,
                    ("release", (tid, index)),
                    now,
                )
            else:
                self.monitor.on_job_release((tid, index))
            if exec_time <= 0.0:
                self._complete_job(js, now)
        else:
            self._ap_vrel(None)
            self._ap_vpp(None)
            self._ap_app(None)
            if level == 0:
                cpu = self._cpu_of[tid]
                self.jobs_a[cpu].append(js)
                heap = self._heap_a[cpu]
                heapq.heappush(heap, (self._period_of[tid], tid, index, js))
                # The pick for this CPU changes only if the new job took
                # the top; when the cache is valid the heap top is live
                # (tops are cleaned at scan and completions mark stale),
                # so the comparison is exact.
                if self._ab_stale[cpu]:
                    self._dirty = True
                else:
                    top = heap[0][3]
                    if top != self._ab_top[cpu]:
                        if self._ab_top[cpu] == -1:
                            self._ab_free = None
                        self._ab_top[cpu] = top
                        self._dirty = True
            elif level == 1:
                cpu = self._cpu_of[tid]
                deadline = now + self._period_of[tid]
                self.jobs_b[cpu].append(js)
                heap = self._heap_b[cpu]
                heapq.heappush(heap, (deadline, tid, index, js))
                if self._ab_stale[cpu]:
                    self._dirty = True
                elif not self._heap_a[cpu]:
                    # No level-A work (a valid cache implies a non-empty
                    # A heap has a live top that outranks any B job).
                    top = heap[0][3]
                    if top != self._ab_top[cpu]:
                        if self._ab_top[cpu] == -1:
                            self._ab_free = None
                        self._ab_top[cpu] = top
                        self._dirty = True
            else:
                self.jobs_d.append(js)
                q = self._pending_cd[tid]
                q.append(js)
                if q[0] == js:
                    self._head_d[tid] = js
                    self._dirty = True
            if self._trace_on:
                self._trace_release(tid, index, exec_time, None, None, now)
            if exec_time <= 0.0:
                self._complete_job(js, now)
        # schedule_pending_release() for the successor (inlined
        # _push_event; SVO guarantees the point is not in the past).
        nxt = ctrl.next_release_actual(clock, now)
        ev_free = self._ev_free
        if ev_free:
            slot = ev_free.pop()
            self._ev_a[slot] = tid
            self._ev_gen[slot] = self._release_gen[tid]
            self._ev_obj[slot] = None
        else:
            slot = len(self._ev_a)
            self._ev_a.append(tid)
            self._ev_gen.append(self._release_gen[tid])
            self._ev_obj.append(None)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (nxt, (_RELEASE << _KS) | seq, slot))

    def _trace_release(
        self,
        tid: int,
        index: int,
        exec_time: float,
        v_r: Optional[float],
        vpp: Optional[float],
        now: float,
    ) -> None:
        self.tracer.emit(
            EventName.JOB_RELEASE,
            now,
            task=tid,
            job=index,
            level=self._level_of[tid].name,
            exec_time=exec_time,
            virtual_release=v_r,
            virtual_pp=vpp,
        )

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------
    def _complete_job(self, js: int, now: float) -> None:
        self._dirty = True
        self.j_comp[js] = now
        tid = self.j_tid[js]
        level = self._level_code[tid]
        if level == 2:
            self.jobs_c.remove(js)
            self._deindex_cd(js, tid, self._head_c, True)
            # Algorithm 1 job_complete() lines 10-12 (Fig. 5(d) case).
            clock = self.clock
            virt = clock.act_to_virt(now)
            vpp = self.j_vpp[js]
            if self.j_app[js] is None and vpp < virt:  # type: ignore[operator]
                self.j_app[js] = clock.virt_to_act(vpp)  # type: ignore[arg-type]
            self._report_buffer.append(js)
        elif level == 3:
            self.jobs_d.remove(js)
            self._deindex_cd(js, tid, self._head_d, False)
        elif level == 0:
            cpu = self._cpu_of[tid]
            self.jobs_a[cpu].remove(js)
            if not self._ab_stale[cpu]:
                self._ab_stale[cpu] = True
                self._ab_stale_cpus.append(cpu)
        else:
            cpu = self._cpu_of[tid]
            self.jobs_b[cpu].remove(js)
            if not self._ab_stale[cpu]:
                self._ab_stale[cpu] = True
                self._ab_stale_cpus.append(cpu)
        index = self.j_idx[js]
        self.trace.record_job_values(
            tid,
            self._level_of[tid],
            index,
            self.j_rel[js],
            self.j_exec[js],
            now,
            self.j_app[js],
            self.j_vrel[js],
            self.j_vpp[js],
        )
        if self._trace_on:
            self.tracer.emit(
                EventName.JOB_COMPLETE,
                now,
                task=tid,
                job=index,
                level=self._level_of[tid].name,
                release=self.j_rel[js],
                response=now - self.j_rel[js],
                actual_pp=self.j_app[js],
            )

    def _deindex_cd(
        self, js: int, tid: int, heads: Dict[int, int], is_c: bool
    ) -> None:
        q = self._pending_cd[tid]
        if q and q[0] == js:
            q.popleft()
            if is_c:
                entry = (self.j_vpp[js], tid, self.j_idx[js], js)
                pos = bisect_left(self._ready_c, entry)  # type: ignore[arg-type]
                assert self._ready_c[pos][3] == js
                del self._ready_c[pos]
            if q:
                head = q[0]
                heads[tid] = head
                if is_c:
                    insort(
                        self._ready_c,
                        (self.j_vpp[head], tid, self.j_idx[head], head),  # type: ignore[arg-type]
                    )
            else:
                del heads[tid]
        elif q and q[-1] == js:
            # Zero-demand job completing at its own release instant.
            q.pop()
        else:  # pragma: no cover - unreachable via kernel release paths
            q.remove(js)

    def _flush_reports(self, now: float) -> None:
        """End-of-instant report delivery (see MC2Kernel._flush_reports)."""
        m = self._m
        jobs_a = self.jobs_a
        jobs_b = self.jobs_b
        busy_ab = 0
        for p in self._cpus:
            if jobs_a[p] or jobs_b[p]:
                busy_ab += 1
        processor_idle = busy_ab + len(self._head_c) < m
        buffered, self._report_buffer = self._report_buffer, []
        latency = self._latency
        for js in buffered:
            comp = self.j_comp[js]
            # Filled directly (CompletionReport is a plain frozen
            # dataclass, no __post_init__): the generated __init__ pays
            # one object.__setattr__ per field on this hot path.
            report = object.__new__(CompletionReport)
            report.__dict__.update(
                task=self._task_of[self.j_tid[js]],
                job_index=self.j_idx[js],
                release=self.j_rel[js],
                actual_pp=self.j_app[js],
                comp_time=comp if comp is not None else now,
                queue_empty=processor_idle,
            )
            if latency > 0.0:
                self._push_event(
                    report.comp_time + latency,
                    _MONITOR_REPORT,
                    -1,
                    0,
                    ("complete", report),
                    now,
                )
            else:
                self.monitor.on_job_complete(report)

    # ------------------------------------------------------------------
    # The change_speed system call (Algorithm 1 lines 14-22)
    # ------------------------------------------------------------------
    def change_speed(self, new_speed: float, now: float) -> None:
        """Install a new virtual-clock speed; called by the monitor."""
        if not self.config.use_virtual_time:
            raise RuntimeError("change_speed requires use_virtual_time=True")
        if self._measure:
            with self.spans.span("change_speed"):
                self._change_speed(new_speed, now)
        else:
            self._change_speed(new_speed, now)

    def _change_speed(self, new_speed: float, now: float) -> None:
        clock = self.clock
        assert isinstance(clock, VirtualClock)
        virt = clock.act_to_virt(now)  # lines 14-15
        j_app = self.j_app
        j_vpp = self.j_vpp
        for js in self.jobs_c:  # lines 16-17
            vpp = j_vpp[js]
            if j_app[js] is None and vpp < virt:  # type: ignore[operator]
                j_app[js] = clock.virt_to_act(vpp)  # type: ignore[arg-type]
        clock.change_speed(new_speed, now)  # lines 18-20
        self.trace.record_speed_change(now, new_speed)
        if self._trace_on:
            self.tracer.emit(EventName.SPEED_CHANGE, now, speed=new_speed)
        # Lines 21-22: re-arm every pending level-C release timer.  The
        # guard time is the kernel's current time, matching the
        # reference engine's push guard.  Rare path, so the phase
        # profile times every re-arm pass in full.
        t0 = perf_counter_ns() if self._phase_on else 0
        stale_before = self._stale_releases
        guard_now = self._now
        for t in self.taskset.level(CriticalityLevel.C):
            tid = t.task_id
            self._release_gen[tid] += 1
            nxt = self.controllers[tid].next_release_actual(clock, now)
            self._push_event(nxt, _RELEASE, tid, self._release_gen[tid], None, guard_now)
            self._stale_releases += 1
        if self._phase_on:
            self._ph_rearm_ns += perf_counter_ns() - t0
            self._ph_rearm += self._stale_releases - stale_before
            self._ph_rearm_calls += 1
        # Same trigger as MC2Kernel._change_speed (shared module-level
        # ratio), so both backends compact at identical instants and
        # their event counts stay aligned.
        if self._stale_releases > _kernel_mod.COMPACT_STALE_RATIO * len(self.taskset):
            self._compact_release_timers()

    def _compact_release_timers(self) -> None:
        """Filter superseded release-timer entries out of the heap."""
        ev_a = self._ev_a
        ev_gen = self._ev_gen
        ev_obj = self._ev_obj
        ev_free = self._ev_free
        gens = self._release_gen
        kept = []
        for entry in self._heap:
            if entry[1] >> _KS == _RELEASE:
                slot = entry[2]
                if ev_gen[slot] != gens[ev_a[slot]]:
                    ev_obj[slot] = None
                    ev_free.append(slot)
                    continue
            kept.append(entry)
        heapq.heapify(kept)
        # In-place: run_until holds a local alias to the heap list.
        self._heap[:] = kept
        self._stale_releases = 0

    # ------------------------------------------------------------------
    # Dispatching (fused _pick_next_incremental + _apply_assignment)
    # ------------------------------------------------------------------
    def _dispatch(self, now: float, eps: float) -> None:
        m = self._m
        assignment = self._assign_buf
        j_run = self.j_run
        ab_top = self._ab_top
        stale = self._ab_stale_cpus
        if stale:
            ab_stale = self._ab_stale
            j_comp = self.j_comp
            heappop_ = heapq.heappop
            for p in stale:
                ab_stale[p] = False
                heap = self._heap_a[p]
                while heap and j_comp[heap[0][3]] is not None:
                    heappop_(heap)  # lazily drop completed entries
                if not heap:
                    heap = self._heap_b[p]
                    while heap and j_comp[heap[0][3]] is not None:
                        heappop_(heap)
                ab_top[p] = heap[0][3] if heap else -1
            del stale[:]
            self._ab_free = None
        assignment[:] = ab_top
        free = self._ab_free
        if free is None:
            free = self._ab_free = [
                p for p in self._cpus if ab_top[p] == -1
            ]
        ready = self._ready_c
        if free and ready:
            # place_gel_jobs over slots: keep running choices in place,
            # then fill remaining free CPUs in ascending order.
            rest: Optional[List[int]] = None
            nfree = len(free)
            if len(ready) < nfree:
                nfree = len(ready)
            for i in range(nfree):
                js = ready[i][3]
                q = j_run[js]
                if q >= 0 and assignment[q] == -1:
                    assignment[q] = js
                elif rest is None:
                    rest = [js]
                else:
                    rest.append(js)
            if rest is not None:
                targets = iter([c for c in free if assignment[c] == -1])
                for js in rest:
                    assignment[next(targets)] = js
        if self._head_d:
            left = [p for p in self._cpus if assignment[p] == -1]
            if left:
                self._dispatch_level_d(assignment, left)
        # Apply (MC2Kernel._apply_assignment over slots).
        cur = self._cur
        if assignment == cur:
            return  # no-op dispatch: both apply passes would skip every CPU
        since = self._since
        anch_t = self._anch_t
        anch_r = self._anch_r
        run_start = self._run_start
        j_rem = self.j_rem
        j_gen = self.j_gen
        j_last = self.j_last
        rec = self._rec_enabled
        trace_on = self._trace_on
        # Dispatch is NOT idempotent: applying an assignment changes run
        # state (e.g. a preempted level-D job regains pool eligibility
        # once descheduled), so a context switch here must force the
        # next event to dispatch again — exactly like the reference,
        # which dispatches every event and only reaches a no-op once the
        # assignment is a fixpoint of the state it produced.
        changed = False
        # Pass 1: stop jobs that lost their CPU (or must migrate).
        for p in self._cpus:
            old = cur[p]
            if old == assignment[p]:
                continue
            if old >= 0:
                changed = True
                if now != since[p]:
                    r = anch_r[p] - (now - anch_t[p])
                    j_rem[old] = r if r > 0.0 else 0.0
                since[p] = now
                if rec:
                    self._record_interval(p, old, run_start[p], now)
                j_gen[old] += 1
                j_run[old] = -1
                j_last[old] = p
                cur[p] = -1
                anch_t[p] = now
                anch_r[p] = 0.0
                if j_rem[old] > eps:
                    self.preemptions += 1
                    if trace_on:
                        self.tracer.emit(
                            EventName.JOB_PREEMPT, now,
                            task=self.j_tid[old], job=self.j_idx[old], cpu=p,
                        )
        # Pass 2: start newly placed jobs and schedule their completions.
        ev_free = self._ev_free
        ev_a = self._ev_a
        ev_gen = self._ev_gen
        heap = self._heap
        heappush_ = heapq.heappush
        for p in self._cpus:
            new = assignment[p]
            if new == -1 or cur[p] == new:
                continue
            changed = True
            q = j_run[new]
            if q >= 0:
                # Migrating without a pause: close the old interval.
                if now != since[q]:
                    r = anch_r[q] - (now - anch_t[q])
                    j_rem[new] = r if r > 0.0 else 0.0
                since[q] = now
                if rec:
                    self._record_interval(q, new, run_start[q], now)
                cur[q] = -1
                anch_t[q] = now
                anch_r[q] = 0.0
                j_gen[new] += 1
            last = j_last[new]
            if last >= 0 and last != p:
                self.migrations += 1
                if trace_on:
                    self.tracer.emit(
                        EventName.JOB_MIGRATE, now,
                        task=self.j_tid[new], job=self.j_idx[new],
                        from_cpu=last, to_cpu=p,
                    )
            remaining = j_rem[new]
            cur[p] = new
            since[p] = now
            anch_t[p] = now
            anch_r[p] = remaining
            j_run[new] = p
            j_last[new] = p
            run_start[p] = now
            # Inlined completion push (time >= now, guard unnecessary).
            if ev_free:
                slot = ev_free.pop()
                ev_a[slot] = new
                ev_gen[slot] = j_gen[new]
            else:
                slot = len(ev_a)
                ev_a.append(new)
                ev_gen.append(j_gen[new])
                self._ev_obj.append(None)
            seq = self._seq
            self._seq = seq + 1
            done = now + remaining
            if done < self._next_done:
                self._next_done = done
            heappush_(heap, (done, (_COMPLETION << _KS) | seq, slot))
        if changed:
            self._dirty = True

    def _dispatch_level_d(self, assignment: List[int], left: List[int]) -> None:
        """Fill leftover CPUs with best-effort level-D work (in place)."""
        j_run = self.j_run
        j_rel = self.j_rel
        j_tid = self.j_tid
        j_idx = self.j_idx
        pool = [
            js
            for js in self._head_d.values()
            if j_run[js] < 0 or j_run[js] in left
        ]
        cur = self._cur
        for p in left:
            c = cur[p]
            if c >= 0 and c in pool:
                assignment[p] = c
                pool.remove(c)
        for p in left:
            if assignment[p] == -1 and pool:
                # Inlined pick_best_effort: min (release, tid, index).
                best = pool[0]
                best_key = (j_rel[best], j_tid[best], j_idx[best])
                for js in pool:
                    key = (j_rel[js], j_tid[js], j_idx[js])
                    if key < best_key:
                        best, best_key = js, key
                assignment[p] = best
                pool.remove(best)

    # ------------------------------------------------------------------
    # Trace plumbing / finalization
    # ------------------------------------------------------------------
    def _record_interval(self, cpu: int, js: int, start: float, end: float) -> None:
        self.trace.record_interval_values(
            cpu, self.j_tid[js], self.j_idx[js], start, end
        )
        if self._trace_on and end > start:
            self.tracer.emit(
                EventName.EXEC_INTERVAL,
                end,
                cpu=cpu,
                task=self.j_tid[js],
                job=self.j_idx[js],
                start=start,
                end=end,
            )

    def _finalize(self, now: float) -> None:
        if self._report_buffer:
            self._flush_reports(now)
        cur = self._cur
        since = self._since
        for p in self._cpus:
            js = cur[p]
            if js >= 0:
                if now != since[p]:
                    r = self._anch_r[p] - (now - self._anch_t[p])
                    self.j_rem[js] = r if r > 0.0 else 0.0
                since[p] = now
                self._record_interval(p, js, self._run_start[p], now)
            else:
                since[p] = now
        record = self.trace.record_job_values
        for pool in (*self.jobs_a, *self.jobs_b, self.jobs_c, self.jobs_d):
            for js in pool:
                tid = self.j_tid[js]
                record(
                    tid,
                    self._level_of[tid],
                    self.j_idx[js],
                    self.j_rel[js],
                    self.j_exec[js],
                    self.j_comp[js],
                    self.j_app[js],
                    self.j_vrel[js],
                    self.j_vpp[js],
                )
        self.metrics.counter("kernel.events").inc(self.events_processed)
        self.metrics.counter("kernel.preemptions").inc(self.preemptions)
        self.metrics.counter("kernel.migrations").inc(self.migrations)
        if self._phase_on:
            self._flush_phases()

    def _flush_phases(self) -> None:
        """Publish phase counters to the registry and the global profiler.

        ``engine_pop`` count is ``events_processed`` (the fused loop pops
        exactly one event per iteration); ``dispatch`` uses its own
        counter because the dirty-flag skip makes dispatches strictly
        fewer than events on this backend.
        """
        phases = (
            ("engine_pop", self.events_processed, 0, 0),
            ("dispatch", self._ph_dispatch, self._ph_dispatch_ns, self._ph_dispatch_samples),
            ("monitor", self._ph_monitor, self._ph_monitor_ns, self._ph_monitor_samples),
            ("timer_rearm", self._ph_rearm, self._ph_rearm_ns, self._ph_rearm_calls),
        )
        for name, count, ns, samples in phases:
            self.metrics.counter(f"kernel.phase.{name}.count").inc(count)
            self.metrics.counter(f"kernel.phase.{name}.sampled_ns").inc(ns)
            self.metrics.counter(f"kernel.phase.{name}.samples").inc(samples)
            PHASE_PROFILER.add(name, count=count, ns=ns, samples=samples)

    # ------------------------------------------------------------------
    # Introspection (backend-neutral surface)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def pending_c_released_before(self, end: float) -> bool:
        """True if any incomplete level-C job was released before *end*."""
        j_rel = self.j_rel
        return any(j_rel[js] < end for js in self.jobs_c)

    @property
    def sched_overheads(self) -> List[int]:
        """Scheduler-invocation wall-clock samples in ns (Fig. 9)."""
        return [
            int(v)
            for name in ("kernel.pick_next.ns", "kernel.change_speed.ns")
            for v in self.metrics.histogram(name).samples
        ]
