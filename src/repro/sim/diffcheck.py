"""Differential equivalence harness: baseline vs. incremental dispatch.

The kernel carries two dispatcher implementations (see
:class:`~repro.sim.kernel.KernelConfig`): the original *baseline* path
that re-sorts the full level-C pool at every scheduling point, and the
*incremental* path built on lazy heaps and per-task head tracking.  The
two are required to be **trace-equivalent**: run over the same scenario
they must produce bit-identical job records, execution intervals, speed
changes, preemption/migration counts, and event counts.

This module is the gate for that requirement.  It

* runs one scenario under both dispatchers
  (:func:`run_dispatcher` / :func:`compare_dispatchers`),
* reduces each run to a comparable :func:`fingerprint`,
* generates randomized scenario grids spanning the interesting axes —
  platform size, utilization, overload scenarios, recovery monitors,
  monitor latency, zero-demand jobs, level-D background load
  (:func:`random_scenarios`),
* and sweeps them (:func:`check_many`), reporting every divergence.

Fingerprints keep the kernel's own recording order (no sorting): the
claim is event-for-event equivalence, not merely set equivalence.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import AdaptiveMonitor, Monitor, NullMonitor, SimpleMonitor
from repro.model.behavior import (
    ConstantBehavior,
    ExecutionBehavior,
    PwcetFractionBehavior,
)
from repro.model.task import CriticalityLevel, Task
from repro.model.taskset import TaskSet
from repro.sim.backend import create_kernel
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.sim.trace import Trace
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import DOUBLE, LONG, SHORT, OverloadScenario

__all__ = [
    "DiffScenario",
    "DiffResult",
    "ZeroDemandEvery",
    "build_kernel",
    "fingerprint",
    "fingerprint_digest",
    "run_dispatcher",
    "compare_dispatchers",
    "compare_backends",
    "random_scenarios",
    "check_many",
    "check_many_backends",
    "main",
]

_SCENARIOS: Dict[str, OverloadScenario] = {s.name: s for s in (SHORT, LONG, DOUBLE)}

#: Task-id offset for synthesized level-D background tasks (the Sec. 5
#: generator only emits levels A-C with small ids).
_LEVEL_D_BASE_ID = 10_000


def _traffic_presets() -> Dict[str, "TrafficSpec"]:  # noqa: F821 - late import
    """Canned open-system workloads for the traffic differential axis.

    Built lazily (and deterministically — everything is seeded by value)
    so importing diffcheck stays cheap for non-traffic runs.
    """
    from repro.workload.traffic import (
        DiurnalCurveSource,
        MMPPSource,
        PoissonSource,
        ServerSpec,
        TrafficFlow,
        TrafficSpec,
    )

    return {
        "poisson": TrafficSpec(flows=(
            TrafficFlow(
                PoissonSource(rate=300.0, mean_demand=0.002, seed=11),
                ServerSpec(period=0.02, budget=0.004, count=2),
            ),
        )),
        "mmpp": TrafficSpec(flows=(
            TrafficFlow(
                MMPPSource(
                    rates=(60.0, 1200.0), dwells=(0.25, 0.06),
                    mean_demand=0.002, seed=23,
                ),
                ServerSpec(period=0.02, budget=0.004, count=2),
            ),
            TrafficFlow(
                PoissonSource(rate=150.0, mean_demand=0.001, seed=29),
                ServerSpec(
                    period=0.05, budget=0.01, level="D", policy="deferrable"
                ),
            ),
        )),
        "diurnal": TrafficSpec(flows=(
            TrafficFlow(
                DiurnalCurveSource(
                    base_rate=40.0, peak_rate=700.0, period=0.8,
                    mean_demand=0.002, seed=37,
                ),
                ServerSpec(period=0.025, budget=0.005, count=2,
                           policy="deferrable"),
            ),
        )),
    }


@dataclass(frozen=True)
class ZeroDemandEvery:
    """Wrap a behaviour, zeroing the demand of every ``k``-th job.

    Zero-demand jobs complete at their own release instant — the nastiest
    same-instant ordering case for the dispatcher (the job must never
    occupy a CPU, and its successor becomes the task's head immediately).
    The ``task_id + index`` phase spreads the zeros across tasks.
    """

    inner: ExecutionBehavior
    every: int

    def exec_time(self, task: Task, job_index: int, release: float) -> float:
        if (task.task_id + job_index) % self.every == 0:
            return 0.0
        return self.inner.exec_time(task, job_index, release)


@dataclass(frozen=True)
class DiffScenario:
    """One fully-determined differential test case."""

    #: Task-set generator seed.
    seed: int
    #: Platform size.
    m: int = 4
    #: Per-task utilization range for the generator.
    util_range: Tuple[float, float] = (0.1, 0.4)
    #: Execution behaviour: an overload-scenario name ("SHORT", "LONG",
    #: "DOUBLE"), "constant" (level-C PWCETs), or "overrun" (sustained
    #: 1.25x level-C PWCETs).
    behavior: str = "constant"
    #: Recovery monitor: "null", "simple", or "adaptive".
    monitor: str = "null"
    #: SimpleMonitor speed ``s`` / AdaptiveMonitor aggressiveness ``a``.
    monitor_arg: float = 0.5
    #: Simulation horizon (seconds).
    horizon: float = 1.5
    use_virtual_time: bool = True
    record_intervals: bool = True
    monitor_latency: float = 0.0
    #: If > 0, zero the demand of every k-th job (see ZeroDemandEvery).
    zero_every: int = 0
    #: Number of synthesized level-D background tasks.
    level_d_tasks: int = 0
    #: Open-system traffic preset name ("" = none; see _traffic_presets).
    traffic: str = ""

    def label(self) -> str:
        """Compact one-line description for failure reports.

        The traffic field appends only when set, so every pre-traffic
        scenario keeps its exact label (the golden-corpus key).
        """
        base = (
            f"seed={self.seed} m={self.m} util={self.util_range} "
            f"behavior={self.behavior} monitor={self.monitor}({self.monitor_arg}) "
            f"vt={self.use_virtual_time} lat={self.monitor_latency} "
            f"zero={self.zero_every} d={self.level_d_tasks} h={self.horizon}"
        )
        if self.traffic:
            base += f" traffic={self.traffic}"
        return base


@dataclass(frozen=True)
class DiffResult:
    """Outcome of one baseline-vs-incremental comparison."""

    scenario: DiffScenario
    equal: bool
    #: Names of the fingerprint fields that diverged (empty when equal).
    mismatched: Tuple[str, ...]


def _level_d_tasks(count: int, rng_seed: int) -> List[Task]:
    """Synthesize *count* level-D background tasks (the generator emits none)."""
    rng = random.Random(rng_seed)
    out = []
    for i in range(count):
        period = rng.uniform(0.01, 0.1)
        util = rng.uniform(0.1, 0.5)
        out.append(
            Task(
                task_id=_LEVEL_D_BASE_ID + i,
                level=CriticalityLevel.D,
                period=period,
                pwcets={CriticalityLevel.D: util * period},
            )
        )
    return out


def _behavior_for(sc: DiffScenario) -> ExecutionBehavior:
    if sc.behavior in _SCENARIOS:
        behavior: ExecutionBehavior = _SCENARIOS[sc.behavior].behavior()
    elif sc.behavior == "constant":
        behavior = ConstantBehavior()
    elif sc.behavior == "overrun":
        behavior = PwcetFractionBehavior(1.25)
    else:
        raise ValueError(f"unknown behavior {sc.behavior!r}")
    if sc.zero_every:
        behavior = ZeroDemandEvery(behavior, sc.zero_every)
    return behavior


def _monitor_for(sc: DiffScenario, kernel: MC2Kernel) -> Monitor:
    if sc.monitor == "null":
        return NullMonitor(kernel)
    if sc.monitor == "simple":
        return SimpleMonitor(kernel, s=sc.monitor_arg)
    if sc.monitor == "adaptive":
        return AdaptiveMonitor(kernel, a=sc.monitor_arg)
    raise ValueError(f"unknown monitor {sc.monitor!r}")


def build_kernel(
    sc: DiffScenario, dispatcher: str, backend: str = "reference"
) -> Tuple[MC2Kernel, Monitor]:
    """Construct the kernel + monitor for *sc* under *dispatcher*/*backend*."""
    ts = generate_taskset(
        sc.seed, GeneratorParams(m=sc.m, util_range=sc.util_range)
    )
    if sc.level_d_tasks:
        ts = TaskSet(
            list(ts) + _level_d_tasks(sc.level_d_tasks, sc.seed), m=ts.m
        )
    behavior = _behavior_for(sc)
    if sc.traffic:
        tspec = _traffic_presets()[sc.traffic]
        ts = tspec.augment(ts)
        behavior = tspec.build_behavior(behavior, sc.horizon)
    config = KernelConfig(
        use_virtual_time=sc.use_virtual_time,
        record_intervals=sc.record_intervals,
        monitor_latency=sc.monitor_latency,
        dispatcher=dispatcher,
        backend=backend,
    )
    kernel = create_kernel(ts, behavior=behavior, config=config)
    monitor = _monitor_for(sc, kernel)
    kernel.attach_monitor(monitor)
    return kernel, monitor


def fingerprint(trace: Trace, kernel: MC2Kernel, monitor: Monitor) -> Dict[str, object]:
    """Reduce one run to its comparable observable state.

    Job records and intervals keep the kernel's recording order —
    completion order is part of the equivalence claim.
    """
    return {
        "jobs": [
            (
                r.task_id,
                r.level.name,
                r.index,
                r.release,
                r.exec_time,
                r.completion,
                r.actual_pp,
                r.virtual_release,
                r.virtual_pp,
            )
            for r in trace.jobs
        ],
        "intervals": [
            (iv.cpu, iv.task_id, iv.job_index, iv.start, iv.end)
            for iv in trace.intervals
        ],
        "speed_changes": list(trace.speed_changes),
        "preemptions": kernel.preemptions,
        "migrations": kernel.migrations,
        "events_processed": kernel.events_processed,
        "misses": monitor.miss_count,
        "episodes": [(ep.start, ep.end) for ep in monitor.episodes],
    }


def fingerprint_digest(fp: Dict[str, object]) -> str:
    """sha256 hex digest of a :func:`fingerprint`'s canonical JSON form.

    Levels are already strings and episode ends may be ``None`` (open
    episodes), both of which JSON carries natively; tuples collapse to
    lists, which is fine because digests are only ever compared to
    other digests.  Used by the fault campaigns to compare whole runs
    across executor backends by a single stable token.
    """
    doc = json.dumps(fp, sort_keys=True, separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def run_dispatcher(
    sc: DiffScenario, dispatcher: str, backend: str = "reference"
) -> Dict[str, object]:
    """Run *sc* to its horizon under *dispatcher*; return the fingerprint."""
    kernel, monitor = build_kernel(sc, dispatcher, backend)
    trace = kernel.run(sc.horizon)
    return fingerprint(trace, kernel, monitor)


def compare_dispatchers(sc: DiffScenario) -> DiffResult:
    """Run *sc* under both dispatchers and diff the fingerprints."""
    base = run_dispatcher(sc, "baseline")
    inc = run_dispatcher(sc, "incremental")
    mismatched = tuple(k for k in base if base[k] != inc[k])
    return DiffResult(scenario=sc, equal=not mismatched, mismatched=mismatched)


def compare_backends(sc: DiffScenario) -> DiffResult:
    """Run *sc* under the reference and SoA backends; diff the fingerprints."""
    ref = run_dispatcher(sc, "incremental", "reference")
    soa = run_dispatcher(sc, "incremental", "soa")
    mismatched = tuple(k for k in ref if ref[k] != soa[k])
    return DiffResult(scenario=sc, equal=not mismatched, mismatched=mismatched)


def random_scenarios(count: int, base_seed: int = 2015) -> List[DiffScenario]:
    """*count* randomized scenarios spanning the interesting axes.

    Deterministic in *base_seed*.  Overload behaviours are weighted
    heavily and always paired with an active monitor, so the sweep
    exercises recovery (speed changes, PP actualization, timer re-arming)
    rather than mostly steady-state runs.
    """
    rng = random.Random(base_seed)
    out: List[DiffScenario] = []
    for i in range(count):
        behavior = rng.choice(
            ["SHORT", "LONG", "DOUBLE", "SHORT", "LONG", "constant", "overrun"]
        )
        if behavior in _SCENARIOS or behavior == "overrun":
            monitor = rng.choice(["simple", "adaptive"])
            use_virtual_time = True
        else:
            monitor = rng.choice(["null", "simple", "adaptive"])
            use_virtual_time = monitor != "null" or rng.random() < 0.5
        out.append(
            DiffScenario(
                seed=base_seed + i,
                m=rng.choice([2, 2, 4, 4, 8]),
                util_range=rng.choice([(0.05, 0.2), (0.1, 0.4), (0.2, 0.5)]),
                behavior=behavior,
                monitor=monitor,
                monitor_arg=(
                    rng.choice([0.25, 0.5, 0.75])
                    if monitor == "simple"
                    else rng.choice([0.25, 0.5, 1.0])
                ),
                horizon=rng.choice([1.0, 1.5, 2.0]),
                use_virtual_time=use_virtual_time,
                record_intervals=rng.random() < 0.5,
                monitor_latency=rng.choice([0.0, 0.0, 0.0, 0.001]),
                zero_every=rng.choice([0, 0, 0, 3, 5]),
                level_d_tasks=rng.choice([0, 0, 0, 2]),
            )
        )
    return out


def check_many(
    scenarios: Sequence[DiffScenario],
) -> Tuple[int, List[DiffResult]]:
    """Compare every scenario; return ``(checked, failures)``."""
    failures = [r for r in map(compare_dispatchers, scenarios) if not r.equal]
    return len(scenarios), failures


def check_many_backends(
    scenarios: Sequence[DiffScenario],
) -> Tuple[int, List[DiffResult]]:
    """reference-vs-soa twin of :func:`check_many`."""
    failures = [r for r in map(compare_backends, scenarios) if not r.equal]
    return len(scenarios), failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: sweep randomized scenarios, exit non-zero on any divergence."""
    parser = argparse.ArgumentParser(
        description="Differential check: baseline vs incremental dispatch, "
        "or reference vs soa kernel backend"
    )
    parser.add_argument("--count", type=int, default=50, help="scenarios to run")
    parser.add_argument("--base-seed", type=int, default=2015)
    parser.add_argument(
        "--horizon", type=float, default=None, help="override every scenario's horizon"
    )
    parser.add_argument(
        "--mode",
        choices=("dispatchers", "backends"),
        default="dispatchers",
        help="what to diff: the two dispatchers (default) or the two kernel backends",
    )
    parser.add_argument(
        "--traffic",
        choices=("poisson", "mmpp", "diurnal"),
        default=None,
        help="attach this open-system traffic preset to every scenario",
    )
    args = parser.parse_args(argv)
    scenarios = random_scenarios(args.count, args.base_seed)
    if args.horizon is not None:
        scenarios = [replace(sc, horizon=args.horizon) for sc in scenarios]
    if args.traffic is not None:
        scenarios = [replace(sc, traffic=args.traffic) for sc in scenarios]
    check = check_many if args.mode == "dispatchers" else check_many_backends
    checked, failures = check(scenarios)
    for fail in failures:
        print(f"DIVERGED [{', '.join(fail.mismatched)}]: {fail.scenario.label()}")
    print(f"{checked - len(failures)}/{checked} scenarios trace-equivalent")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
