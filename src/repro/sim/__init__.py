"""Discrete-event multicore scheduling simulator.

This package plays the role of the LITMUS^RT kernel in the paper's
implementation (DESIGN.md, substitution 1):

* :mod:`repro.sim.events` — event types and the deterministic event queue;
* :mod:`repro.sim.engine` — the simulation loop;
* :mod:`repro.sim.processor` — per-CPU run state;
* :mod:`repro.sim.trace` — schedule traces and response-time records
  (the stand-in for sched_trace/Feather-Trace);
* :mod:`repro.sim.kernel` — the MC² kernel proper: per-level dispatching,
  Algorithm 1's virtual-time bookkeeping, release timers, and the
  ``change_speed`` system call exposed to monitors;
* :mod:`repro.sim.budgets` — optional PWCET budget enforcement
  (footnote 2 of the paper).
"""

from repro.sim.engine import Engine
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.kernel import KernelConfig, MC2Kernel, simulate
from repro.sim.processor import Processor
from repro.sim.stats import ResponseStats, level_response_stats, task_response_stats
from repro.sim.trace import ExecutionInterval, JobRecord, Trace

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "Engine",
    "Processor",
    "ResponseStats",
    "task_response_stats",
    "level_response_stats",
    "Trace",
    "JobRecord",
    "ExecutionInterval",
    "MC2Kernel",
    "KernelConfig",
    "simulate",
]
