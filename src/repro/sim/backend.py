"""Kernel-backend registry: pluggable simulator cores behind one seam.

Every run path (:func:`repro.sim.kernel.simulate`, the experiment
runner, diffcheck, the benchmark harness) builds its kernel through
:func:`create_kernel`, which resolves ``KernelConfig.backend`` against
this registry:

``"reference"``
    The object-based :class:`~repro.sim.kernel.MC2Kernel` — the
    readable ground truth, one Python object per job/event/processor.
``"soa"``
    The struct-of-arrays hot path (:mod:`repro.sim.soa`): flat parallel
    arrays for job state, pooled event slots, a fused event loop.
    Gated to byte-identical traces against ``"reference"`` by the
    diffcheck property suite and the golden-fingerprint corpus.

Backends share one behavioural contract (see DESIGN.md "Kernel
backends"): identical construction signature, and a uniform run surface
— ``start`` / ``run_until`` / ``run`` / ``finish``, ``attach_monitor``,
``change_speed``, ``now`` / ``events_processed`` / ``clock`` /
``trace`` / ``monitor`` / ``preemptions`` / ``migrations``, and
``pending_c_released_before``.  A third backend registers a builder
with the same signature::

    from repro.sim.backend import kernel_backend_registry
    kernel_backend_registry.register("mine", _build_mine)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.runtime.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.behavior import ExecutionBehavior
    from repro.model.taskset import TaskSet
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer
    from repro.sim.kernel import KernelConfig

__all__ = ["KernelBuilder", "kernel_backend_registry", "create_kernel"]

#: ``(taskset, behavior, config, tracer, metrics) -> kernel``
KernelBuilder = Callable[..., object]

kernel_backend_registry: Registry[KernelBuilder] = Registry("kernel backend")


def _build_reference(taskset, behavior, config, tracer, metrics):
    from repro.sim.kernel import MC2Kernel

    return MC2Kernel(
        taskset, behavior=behavior, config=config, tracer=tracer, metrics=metrics
    )


def _build_soa(taskset, behavior, config, tracer, metrics):
    # Imported lazily: the SoA module is only paid for when selected.
    from repro.sim.soa import SoAKernel

    return SoAKernel(
        taskset, behavior=behavior, config=config, tracer=tracer, metrics=metrics
    )


kernel_backend_registry.register("reference", _build_reference)
kernel_backend_registry.register("soa", _build_soa)


def create_kernel(
    taskset: "TaskSet",
    behavior: Optional["ExecutionBehavior"] = None,
    config: Optional["KernelConfig"] = None,
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
):
    """Build the kernel backend selected by ``config.backend``.

    Raises ``ValueError`` (listing the registered names) for an unknown
    backend.
    """
    backend = config.backend if config is not None else "reference"
    builder = kernel_backend_registry.get(backend)
    return builder(taskset, behavior, config, tracer, metrics)
