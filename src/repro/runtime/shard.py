"""Checkpointed, sharded campaign execution with crash-safe resume.

The sweeps behind the paper's evaluation (Figs. 6-9 grids, the fault
campaigns of :mod:`repro.faults`) are long: hundreds to thousands of
deterministic cells.  The process-pool backends parallelize them, but a
killed process loses every in-flight cell and an interrupted campaign
must restart from whatever the :class:`~repro.runtime.cache.ResultCache`
happened to retain.  This module makes campaign execution *durable*:

* **Content-addressed shards.**  A cell list (``RunSpec`` sweep cells or
  :class:`~repro.faults.campaign.CampaignCell` fault cells) is split
  into fixed-size shards; the campaign key is the sha256 of the ordered
  cell keys, and each shard's id is the sha256 of the campaign key plus
  its slice.  The same cell list always maps to the same shards, so a
  re-attached run agrees with the original about what the work *is*.

* **File-based work queue with lease/heartbeat ownership.**  Workers —
  threads of one process, separate processes, even separate invocations
  of the CLI — claim shards by atomically creating a lease file
  (``O_CREAT | O_EXCL``), heartbeat it after every cell, and release it
  when the shard's result manifest lands.  A lease whose heartbeat is
  older than the TTL is presumed dead and reclaimed.  Leases are a
  *performance* mechanism, not a correctness one: cells are
  deterministic, so the rare double execution after a lease steal just
  writes the same manifest twice.

* **Atomic per-shard result manifests.**  Each completed shard is one
  JSON file written via temp-file + ``os.replace``
  (:mod:`repro.util.atomicio`); a crash mid-write leaves a stray
  ``*.tmp``, never a torn manifest.  A campaign is complete exactly when
  every shard has a valid manifest, and *resume* is nothing more than
  executing the shards that don't.

* **Streaming reduce.**  Merging walks shard manifests in order and
  feeds results one at a time into incremental accumulators
  (:func:`write_merged_results`,
  :func:`~repro.faults.campaign.ScorecardSummaryAccumulator`), so the
  final artifact is produced without ever holding the whole campaign's
  results in memory — and it is byte-identical to what an uninterrupted
  in-memory run would have saved.

Directory layout (one campaign)::

    <dir>/
      campaign.json        # manifest: kind, cells, shard size, key
      shards/<id>.json     # one atomic result manifest per shard
      leases/<id>.json     # live ownership (deleted on completion)
      merged.json          # streamed final artifact

:func:`prepare_campaign` nests each campaign under a key-prefixed
subdirectory of a shared root, so the same root can host many grids and
``repro-mc2 sweep resume <root>`` / ``faults resume <root>`` re-attach
to whatever is unfinished.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.experiments.metrics import RunResult
from repro.faults.campaign import (
    SCORECARD_FORMAT,
    SCORECARD_VERSION,
    CampaignCell,
    CellOutcome,
    Scorecard,
    ScorecardSummaryAccumulator,
    run_cell,
)
from repro.obs.report import ShardReport
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor, SweepStats, run_spec
from repro.runtime.spec import RunSpec
from repro.util.atomicio import atomic_write_text, atomic_writer

__all__ = [
    "CAMPAIGN_FORMAT",
    "SHARD_RESULT_FORMAT",
    "MERGED_SWEEP_FORMAT",
    "CampaignMismatchError",
    "IncompleteCampaignError",
    "ShardSpec",
    "ShardedCampaign",
    "CampaignStore",
    "get_kind",
    "WorkStats",
    "work",
    "run_workers",
    "prepare_campaign",
    "iter_campaign_dirs",
    "campaign_status",
    "iter_result_docs",
    "merge_results",
    "write_merged_results",
    "merge_scorecard",
    "write_merged_scorecard",
    "write_results_artifact",
    "run_sharded_campaign",
    "resume_campaign",
    "ShardedBackend",
]

CAMPAIGN_FORMAT = "repro-shard-campaign"
CAMPAIGN_VERSION = 1
SHARD_RESULT_FORMAT = "repro-shard-result"
SHARD_RESULT_VERSION = 1
LEASE_FORMAT = "repro-shard-lease"
MERGED_SWEEP_FORMAT = "repro-sweep-results"
MERGED_SWEEP_VERSION = 1

Pathish = Union[str, "os.PathLike[str]"]

_CANON = dict(sort_keys=True, separators=(",", ":"), allow_nan=False)


class CampaignMismatchError(ValueError):
    """The directory already holds a *different* campaign."""


class IncompleteCampaignError(RuntimeError):
    """A merge was requested while shards are still missing."""

    def __init__(self, missing: Sequence[int]) -> None:
        self.missing = tuple(missing)
        super().__init__(
            f"campaign is incomplete: {len(self.missing)} shard(s) missing "
            f"(indices {list(self.missing)[:8]}{'...' if len(self.missing) > 8 else ''})"
        )


# ----------------------------------------------------------------------
# Kind adapters: what a "cell" is and how to run one.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Kind:
    """How the orchestrator handles one campaign flavour."""

    name: str
    cell_key: Callable[[Any], str]
    cell_to_dict: Callable[[Any], Dict[str, Any]]
    cell_from_dict: Callable[[Dict[str, Any]], Any]
    #: Execute one cell, returning its JSON-ready result document.
    execute: Callable[[Any], Dict[str, Any]]
    #: Whether cells can be served from / written to a ResultCache.
    cacheable: bool
    #: Optional batched execution: lazily yield ``(doc, wall_ns)`` per
    #: cell, in order, sharing per-batch state (e.g. materialized task
    #: sets).  ``None`` means the kind only executes cell-by-cell.
    execute_batch: Optional[Callable[[Sequence[Any]], Iterator[Tuple[Dict[str, Any], int]]]] = None


def _sweep_cell_to_dict(spec: RunSpec) -> Dict[str, Any]:
    from repro.io.runspec_json import runspec_to_dict

    return runspec_to_dict(spec)


def _sweep_cell_from_dict(doc: Dict[str, Any]) -> RunSpec:
    from repro.io.runspec_json import runspec_from_dict

    return runspec_from_dict(doc)


def _sweep_execute(spec: RunSpec) -> Dict[str, Any]:
    from repro.io.results_json import run_result_to_dict

    return run_result_to_dict(run_spec(spec))


def _sweep_execute_batch(
    specs: Sequence[RunSpec],
) -> Iterator[Tuple[Dict[str, Any], int]]:
    """Simulate a slice of sweep cells in-process, sharing task sets.

    Streams ``(result_doc, wall_ns)`` as each cell finishes, so the
    shard loop keeps its per-cell heartbeat/progress cadence.  Results
    are bit-for-bit identical to :func:`_sweep_execute` per cell.
    """
    from repro.io.results_json import run_result_to_dict
    from repro.runtime.executor import _iter_timed_batch

    for result, wall_ns in _iter_timed_batch(specs):
        yield run_result_to_dict(result), wall_ns


def _faults_execute(cell: CampaignCell) -> Dict[str, Any]:
    return run_cell(cell).to_dict()


_KINDS: Dict[str, _Kind] = {
    "sweep": _Kind(
        name="sweep",
        cell_key=lambda spec: spec.key(),
        cell_to_dict=_sweep_cell_to_dict,
        cell_from_dict=_sweep_cell_from_dict,
        execute=_sweep_execute,
        cacheable=True,
        execute_batch=_sweep_execute_batch,
    ),
    "faults": _Kind(
        name="faults",
        cell_key=lambda cell: cell.key(),
        cell_to_dict=lambda cell: cell.to_dict(),
        cell_from_dict=CampaignCell.from_dict,
        execute=_faults_execute,
        cacheable=False,
    ),
}


def get_kind(name: str) -> _Kind:
    """The kind adapter for *name* (``"sweep"`` / ``"faults"``).

    The public accessor remote executors (:mod:`repro.serve.worker`) use
    to reconstruct and execute cells from their wire documents with the
    exact serialization/execution semantics of the file queue.
    """
    try:
        return _KINDS[name]
    except KeyError:
        raise ValueError(f"unknown campaign kind {name!r} (have {sorted(_KINDS)})") from None


# ----------------------------------------------------------------------
# Campaign identity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One content-addressed slice of a campaign's cell list."""

    index: int
    shard_id: str
    #: Cell positions in the campaign's cell list (contiguous slice).
    start: int
    stop: int

    @property
    def cells(self) -> int:
        return self.stop - self.start


class ShardedCampaign:
    """An immutable cell list plus its sharding, content-addressed.

    Parameters
    ----------
    kind:
        ``"sweep"`` (cells are :class:`~repro.runtime.spec.RunSpec`) or
        ``"faults"`` (cells are
        :class:`~repro.faults.campaign.CampaignCell`).
    cells:
        The ordered cell list.  Order is part of the campaign's identity
        — merged artifacts restore it exactly.
    shard_size:
        Cells per shard (the last shard may be short).
    meta:
        Free-form JSON-able metadata carried in the manifest (e.g. the
        fault campaign's ``fault_free`` flag, so ``resume`` can apply
        acceptance-gate semantics without re-supplying flags).
    """

    def __init__(
        self,
        kind: str,
        cells: Sequence[Any],
        shard_size: int = 16,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown campaign kind {kind!r} (have {sorted(_KINDS)})")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if not cells:
            raise ValueError("a campaign needs at least one cell")
        self.kind = kind
        self.cells: Tuple[Any, ...] = tuple(cells)
        self.shard_size = shard_size
        self.meta: Dict[str, Any] = dict(meta or {})
        k = _KINDS[kind]
        self.cell_keys: Tuple[str, ...] = tuple(k.cell_key(c) for c in self.cells)
        self.campaign_key = self._compute_key()
        self.shards: Tuple[ShardSpec, ...] = tuple(self._compute_shards())

    def _compute_key(self) -> str:
        doc = {
            "format": CAMPAIGN_FORMAT,
            "version": CAMPAIGN_VERSION,
            "kind": self.kind,
            "shard_size": self.shard_size,
            "cell_keys": list(self.cell_keys),
        }
        blob = json.dumps(doc, **_CANON)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _compute_shards(self) -> List[ShardSpec]:
        out: List[ShardSpec] = []
        for idx, start in enumerate(range(0, len(self.cells), self.shard_size)):
            stop = min(start + self.shard_size, len(self.cells))
            blob = json.dumps(
                {
                    "campaign": self.campaign_key,
                    "index": idx,
                    "cell_keys": list(self.cell_keys[start:stop]),
                },
                **_CANON,
            )
            shard_id = hashlib.sha256(blob.encode("utf-8")).hexdigest()
            out.append(ShardSpec(index=idx, shard_id=shard_id, start=start, stop=stop))
        return out

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        k = _KINDS[self.kind]
        return {
            "format": CAMPAIGN_FORMAT,
            "version": CAMPAIGN_VERSION,
            "kind": self.kind,
            "key": self.campaign_key,
            "shard_size": self.shard_size,
            "meta": self.meta,
            "cells": [k.cell_to_dict(c) for c in self.cells],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ShardedCampaign":
        if doc.get("format") != CAMPAIGN_FORMAT:
            raise ValueError(f"not a {CAMPAIGN_FORMAT} document: {doc.get('format')!r}")
        kind = doc["kind"]
        k = _KINDS[kind]
        campaign = cls(
            kind=kind,
            cells=[k.cell_from_dict(c) for c in doc["cells"]],
            shard_size=int(doc["shard_size"]),
            meta=dict(doc.get("meta", {})),
        )
        recorded = doc.get("key")
        if recorded is not None and recorded != campaign.campaign_key:
            raise ValueError(
                f"campaign manifest key {recorded[:12]} does not match its "
                f"reconstructed cells ({campaign.campaign_key[:12]}); the "
                "manifest is corrupt or from an incompatible version"
            )
        return campaign


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------
class CampaignStore:
    """Directory layout + atomic IO for one campaign."""

    def __init__(self, directory: Pathish) -> None:
        self.root = pathlib.Path(directory)

    @property
    def campaign_path(self) -> pathlib.Path:
        return self.root / "campaign.json"

    @property
    def merged_path(self) -> pathlib.Path:
        return self.root / "merged.json"

    def shard_path(self, shard_id: str) -> pathlib.Path:
        return self.root / "shards" / f"{shard_id}.json"

    def lease_path(self, shard_id: str) -> pathlib.Path:
        return self.root / "leases" / f"{shard_id}.json"

    # -- campaign manifest ---------------------------------------------
    def initialize(self, campaign: ShardedCampaign) -> None:
        """Write the campaign manifest, or verify an existing one matches."""
        if self.campaign_path.exists():
            existing = self.load()
            if existing.campaign_key != campaign.campaign_key:
                raise CampaignMismatchError(
                    f"{self.root} already holds campaign "
                    f"{existing.campaign_key[:12]} ({len(existing.cells)} cells), "
                    f"not {campaign.campaign_key[:12]} ({len(campaign.cells)} "
                    "cells); use a fresh directory per cell list"
                )
            return
        atomic_write_text(
            self.campaign_path, json.dumps(campaign.to_dict(), indent=2) + "\n"
        )

    def load(self) -> ShardedCampaign:
        with open(self.campaign_path, "r", encoding="utf-8") as fh:
            return ShardedCampaign.from_dict(json.load(fh))

    # -- shard manifests -----------------------------------------------
    def read_manifest(self, shard: ShardSpec) -> Optional[Dict[str, Any]]:
        """The shard's result manifest, or ``None`` if absent/torn."""
        try:
            doc = json.loads(self.shard_path(shard.shard_id).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if doc.get("format") != SHARD_RESULT_FORMAT or doc.get("shard") != shard.shard_id:
            return None
        if len(doc.get("results", ())) != shard.cells:
            return None
        return doc

    def shard_done(self, shard: ShardSpec) -> bool:
        return self.read_manifest(shard) is not None

    def write_manifest(
        self,
        campaign: ShardedCampaign,
        shard: ShardSpec,
        results: Sequence[Dict[str, Any]],
        cached: Sequence[bool],
        wall_ns: Sequence[int],
        owner: str,
        shard_wall_ns: int,
    ) -> None:
        doc = {
            "format": SHARD_RESULT_FORMAT,
            "version": SHARD_RESULT_VERSION,
            "campaign": campaign.campaign_key,
            "shard": shard.shard_id,
            "index": shard.index,
            "cell_keys": list(campaign.cell_keys[shard.start : shard.stop]),
            "results": list(results),
            "cached": list(cached),
            "wall_ns": list(wall_ns),
            "owner": owner,
            "shard_wall_ns": shard_wall_ns,
        }
        atomic_write_text(
            self.shard_path(shard.shard_id), json.dumps(doc, indent=2) + "\n"
        )

    # -- leases --------------------------------------------------------
    def _lease_doc(self, owner: str, acquired: float, heartbeat: float) -> str:
        # acquired/heartbeat come from the staleness clock (monotonic by
        # default — see try_acquire); "wall" is display-only, so humans
        # inspecting a lease file still see a civil timestamp.
        return json.dumps(
            {
                "format": LEASE_FORMAT,
                "owner": owner,
                "acquired": acquired,
                "heartbeat": heartbeat,
                "wall": time.time(),
            }
        )

    def read_lease(self, shard_id: str) -> Optional[Dict[str, Any]]:
        try:
            doc = json.loads(self.lease_path(shard_id).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if doc.get("format") != LEASE_FORMAT:
            return None
        return doc

    def try_acquire(
        self,
        shard_id: str,
        owner: str,
        lease_ttl: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> bool:
        """Claim *shard_id*: fresh lease, or steal one whose heartbeat expired.

        Best-effort mutual exclusion — see the module docstring; a lost
        race costs a redundant (deterministic) shard execution, never a
        wrong result.

        Staleness is judged on ``clock``, **monotonic** by default:
        lease files coordinate processes on one machine, where
        ``CLOCK_MONOTONIC`` is shared, and a wall-clock step (NTP slew,
        suspend/resume) must neither steal a live worker's lease (jump
        forward) nor keep a dead worker's lease alive (jump back) —
        the same dual-clock rule the telemetry writer follows.
        """
        path = self.lease_path(shard_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        now = clock()
        payload = self._lease_doc(owner, now, now)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            existing = self.read_lease(shard_id)
            if existing is not None:
                if existing.get("owner") == owner:
                    return True
                beat = float(existing.get("heartbeat", 0.0))
                if now - beat <= lease_ttl:
                    return False
            # Expired (or torn) lease: steal it atomically and confirm.
            atomic_write_text(path, payload, fsync=False)
            stolen = self.read_lease(shard_id)
            return stolen is not None and stolen.get("owner") == owner
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
        except BaseException:
            try:
                os.unlink(path)
            except OSError:
                pass
            raise
        return True

    def heartbeat(
        self, shard_id: str, owner: str, clock: Callable[[], float] = time.monotonic
    ) -> None:
        existing = self.read_lease(shard_id)
        if existing is None or existing.get("owner") != owner:
            return  # lost the lease; the executing work is still valid
        atomic_write_text(
            self.lease_path(shard_id),
            self._lease_doc(owner, float(existing.get("acquired", 0.0)), clock()),
            fsync=False,
        )

    def release(self, shard_id: str, owner: str) -> None:
        existing = self.read_lease(shard_id)
        if existing is None or existing.get("owner") != owner:
            return
        try:
            os.unlink(self.lease_path(shard_id))
        except OSError:
            pass


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkStats:
    """What one :func:`work` (or :func:`run_workers`) call did."""

    shards_total: int = 0
    #: Shards this call executed (claimed, ran, wrote the manifest).
    shards_claimed: int = 0
    #: Shards whose manifest already existed when visited.
    shards_skipped: int = 0
    #: Cells actually simulated by this call.
    cells_run: int = 0
    #: Cells served from the result cache (sweep kind only).
    cache_hits: int = 0
    #: Process-pool breaks absorbed (pool driver only).
    pool_breaks: int = 0

    def merged(self, other: "WorkStats") -> "WorkStats":
        return WorkStats(
            shards_total=max(self.shards_total, other.shards_total),
            shards_claimed=self.shards_claimed + other.shards_claimed,
            shards_skipped=self.shards_skipped + other.shards_skipped,
            cells_run=self.cells_run + other.cells_run,
            cache_hits=self.cache_hits + other.cache_hits,
            pool_breaks=self.pool_breaks + other.pool_breaks,
        )


def _default_owner() -> str:
    return f"{os.uname().nodename}:{os.getpid()}"


def _execute_shard(
    store: CampaignStore,
    campaign: ShardedCampaign,
    shard: ShardSpec,
    owner: str,
    cache: Optional[ResultCache],
    clock: Callable[[], float],
    on_cell: Optional[Callable[[bool], None]] = None,
    batch: bool = False,
    telemetry=None,
) -> Tuple[int, int]:
    """Run one claimed shard to its manifest; returns (cells_run, hits)."""
    kind = _KINDS[campaign.kind]
    if batch and kind.execute_batch is not None:
        return _execute_shard_batched(
            store, campaign, shard, owner, cache, clock, on_cell, telemetry
        )
    results: List[Dict[str, Any]] = []
    cached_flags: List[bool] = []
    wall: List[int] = []
    cells_run = 0
    hits = 0
    t_shard = time.perf_counter_ns()
    for pos in range(shard.start, shard.stop):
        cell = campaign.cells[pos]
        key = campaign.cell_keys[pos]
        t0 = time.perf_counter_ns()
        doc: Optional[Dict[str, Any]] = None
        was_cached = False
        if kind.cacheable and cache is not None:
            hit = cache.get(key)
            if hit is not None:
                from repro.io.results_json import run_result_to_dict

                doc = run_result_to_dict(hit)
                was_cached = True
                hits += 1
        if doc is None:
            doc = kind.execute(cell)
            cells_run += 1
            if kind.cacheable and cache is not None:
                from repro.io.results_json import run_result_from_dict

                cache.put(key, kind.cell_to_dict(cell), run_result_from_dict(doc))
        results.append(doc)
        cached_flags.append(was_cached)
        wall.append(time.perf_counter_ns() - t0)
        store.heartbeat(shard.shard_id, owner, clock)
        if on_cell is not None:
            on_cell(was_cached)
        if telemetry is not None:
            telemetry.cell_done(
                was_cached, events=int(doc.get("events", 0)), wall_ns=wall[-1]
            )
    store.write_manifest(
        campaign,
        shard,
        results,
        cached_flags,
        wall,
        owner,
        time.perf_counter_ns() - t_shard,
    )
    return cells_run, hits


def _execute_shard_batched(
    store: CampaignStore,
    campaign: ShardedCampaign,
    shard: ShardSpec,
    owner: str,
    cache: Optional[ResultCache],
    clock: Callable[[], float],
    on_cell: Optional[Callable[[bool], None]] = None,
    telemetry=None,
) -> Tuple[int, int]:
    """Batched twin of :func:`_execute_shard` (same manifest semantics).

    Cache hits are collected first, then every miss in the shard is
    simulated by one streaming ``execute_batch`` call — so per-batch
    state (materialized task sets) is shared across the whole shard.
    The manifest lists results/flags/walls in cell order exactly as the
    per-cell path would; result documents are byte-identical, so the
    merged campaign artifact is too.  Heartbeats still land after every
    simulated cell (the batch executor streams), keeping lease liveness
    on the same cadence.
    """
    kind = _KINDS[campaign.kind]
    n = shard.cells
    results: List[Optional[Dict[str, Any]]] = [None] * n
    cached_flags = [False] * n
    wall = [0] * n
    hits = 0
    miss_off: List[int] = []
    t_shard = time.perf_counter_ns()
    for off in range(n):
        pos = shard.start + off
        t0 = time.perf_counter_ns()
        doc: Optional[Dict[str, Any]] = None
        if kind.cacheable and cache is not None:
            hit = cache.get(campaign.cell_keys[pos])
            if hit is not None:
                from repro.io.results_json import run_result_to_dict

                doc = run_result_to_dict(hit)
        if doc is not None:
            results[off] = doc
            cached_flags[off] = True
            wall[off] = time.perf_counter_ns() - t0
            hits += 1
            store.heartbeat(shard.shard_id, owner, clock)
            if on_cell is not None:
                on_cell(True)
            if telemetry is not None:
                telemetry.cell_done(True, wall_ns=wall[off])
        else:
            miss_off.append(off)
    if miss_off:
        cells = [campaign.cells[shard.start + off] for off in miss_off]
        assert kind.execute_batch is not None
        for off, (doc, wall_ns) in zip(miss_off, kind.execute_batch(cells)):
            results[off] = doc
            wall[off] = wall_ns
            if kind.cacheable and cache is not None:
                from repro.io.results_json import run_result_from_dict

                cell = campaign.cells[shard.start + off]
                cache.put(
                    campaign.cell_keys[shard.start + off],
                    kind.cell_to_dict(cell),
                    run_result_from_dict(doc),
                )
            store.heartbeat(shard.shard_id, owner, clock)
            if on_cell is not None:
                on_cell(False)
            if telemetry is not None:
                telemetry.cell_done(
                    False, events=int(doc.get("events", 0)), wall_ns=wall_ns
                )
        if telemetry is not None:
            telemetry.batch_slice()
    store.write_manifest(
        campaign,
        shard,
        results,  # type: ignore[arg-type]  # every slot filled above
        cached_flags,
        wall,
        owner,
        time.perf_counter_ns() - t_shard,
    )
    return len(miss_off), hits


def work(
    directory: Pathish,
    owner: Optional[str] = None,
    cache: Optional[ResultCache] = None,
    lease_ttl: float = 60.0,
    poll_interval: float = 0.05,
    wait: bool = True,
    max_shards: Optional[int] = None,
    progress=None,
    metrics=None,
    clock: Callable[[], float] = time.monotonic,
    batch: bool = False,
    telemetry: bool = False,
) -> WorkStats:
    """Drive one campaign directory toward completion from this process.

    Repeatedly scans the shard list in index order, claims unowned
    incomplete shards, executes them, and writes their manifests.  With
    ``wait=True`` (default) the call returns only when **every** shard
    has a manifest — shards held by live foreign leases are polled until
    their owners finish or their leases expire (TTL), at which point
    they are reclaimed and executed here.  ``wait=False`` returns as
    soon as no shard is claimable.  ``max_shards`` stops after this call
    has executed that many shards (used by tests and incremental runs).
    ``batch=True`` executes each shard's cache misses as one streaming
    batch (sweep kind only — identical manifests, shared task-set
    materialization; other kinds fall back to cell-by-cell).
    ``telemetry=True`` appends an NDJSON telemetry stream under
    ``<dir>/telemetry/<owner>.ndjson`` (:mod:`repro.obs.telemetry`) and
    enables kernel phase profiling — observation only, results and
    manifests are byte-identical either way.

    Safe to run concurrently from any number of processes against the
    same directory; the lease files partition the work.
    """
    store = CampaignStore(directory)
    campaign = store.load()
    who = owner if owner is not None else _default_owner()
    spans = None
    if metrics is not None:
        from repro.obs.spans import SpanTimer

        spans = SpanTimer(metrics, "shard")
    tele = None
    if telemetry:
        from repro.obs.telemetry import (
            TelemetryWriter,
            enable_phase_profiling,
            telemetry_path,
        )

        enable_phase_profiling(True)
        backend = ""
        if campaign.kind == "sweep" and campaign.cells:
            backend = campaign.cells[0].kernel.backend
        # Note: the telemetry writer keeps its own (wall, monotonic)
        # clock pair — the lease clock is monotonic and must not leak
        # into wall-stamped telemetry records.
        tele = TelemetryWriter(
            telemetry_path(directory, who),
            owner=who,
            campaign=campaign.campaign_key,
            backend=backend,
            batch=batch,
        )
    claimed = 0
    skipped = 0
    cells_run = 0
    hits = 0
    seen_done: set = set()

    def note_done(shard: ShardSpec, mine: bool) -> None:
        if shard.shard_id in seen_done:
            return
        seen_done.add(shard.shard_id)
        if progress is not None and hasattr(progress, "shard_done"):
            progress.shard_done(executed=mine)

    try:
        while True:
            pending = [s for s in campaign.shards if s.shard_id not in seen_done]
            progressed = False
            for shard in pending:
                if store.shard_done(shard):
                    if shard.shard_id not in seen_done:
                        skipped += 1
                    note_done(shard, mine=False)
                    progressed = True
                    continue
                if max_shards is not None and claimed >= max_shards:
                    continue
                prior_owner = None
                if tele is not None:
                    prior = store.read_lease(shard.shard_id)
                    prior_owner = prior.get("owner") if prior else None
                if not store.try_acquire(shard.shard_id, who, lease_ttl, clock):
                    continue
                if tele is not None:
                    tele.lease_acquired(
                        stolen=prior_owner is not None and prior_owner != who
                    )
                # Re-check under the lease: a racing worker may have finished
                # the shard between our scan and the acquire.
                if store.shard_done(shard):
                    store.release(shard.shard_id, who)
                    skipped += 1
                    note_done(shard, mine=False)
                    progressed = True
                    continue
                if tele is not None:
                    tele.shard_claimed()
                on_cell = None
                if progress is not None and hasattr(progress, "cell_done"):
                    on_cell = lambda cached: progress.cell_done(cached=cached)  # noqa: E731
                try:
                    if spans is not None:
                        with spans.span("execute"):
                            ran, h = _execute_shard(
                                store, campaign, shard, who, cache, clock,
                                on_cell, batch, tele,
                            )
                    else:
                        ran, h = _execute_shard(
                            store, campaign, shard, who, cache, clock,
                            on_cell, batch, tele,
                        )
                finally:
                    store.release(shard.shard_id, who)
                claimed += 1
                cells_run += ran
                hits += h
                note_done(shard, mine=True)
                if tele is not None:
                    tele.shard_finished()
                progressed = True
            remaining = [s for s in campaign.shards if s.shard_id not in seen_done]
            if not remaining:
                break
            if max_shards is not None and claimed >= max_shards:
                break
            if not progressed:
                if not wait:
                    break
                time.sleep(poll_interval)
    finally:
        if tele is not None:
            tele.close()
    return WorkStats(
        shards_total=len(campaign.shards),
        shards_claimed=claimed,
        shards_skipped=skipped,
        cells_run=cells_run,
        cache_hits=hits,
    )


def _work_entry(
    directory: str,
    owner: str,
    cache_dir: Optional[str],
    lease_ttl: float,
    batch: bool = False,
    telemetry: bool = False,
) -> WorkStats:
    """Module-level pool entry point (picklable)."""
    cache = ResultCache(cache_dir) if cache_dir else None
    return work(
        directory,
        owner=owner,
        cache=cache,
        lease_ttl=lease_ttl,
        wait=False,
        batch=batch,
        telemetry=telemetry,
    )


def run_workers(
    directory: Pathish,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    lease_ttl: float = 60.0,
    progress=None,
    metrics=None,
    max_shards: Optional[int] = None,
    batch: bool = False,
    telemetry: bool = False,
) -> WorkStats:
    """Drive a campaign with *jobs* worker processes (1 = in-process).

    Worker processes coordinate purely through the campaign directory's
    lease files, so a SIGKILLed worker costs only its in-flight shard:
    the resulting ``BrokenProcessPool`` is absorbed and the survivors'
    completed manifests stand.  After the pool returns (or breaks), a
    final in-process :func:`work` pass executes whatever is left —
    including shards orphaned behind expired leases — so this function
    returns only when the campaign is complete (unless ``max_shards``
    cut it short).
    """
    if jobs <= 1 or max_shards is not None:
        return work(
            directory,
            cache=cache,
            lease_ttl=lease_ttl,
            progress=progress,
            metrics=metrics,
            max_shards=max_shards,
            batch=batch,
            telemetry=telemetry,
        )
    store = CampaignStore(directory)
    campaign = store.load()
    cache_dir = str(cache.directory) if cache is not None else None
    breaks = 0
    stats = WorkStats(shards_total=len(campaign.shards))
    workers = min(jobs, len(campaign.shards))
    try:
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futs = [
                pool.submit(
                    _work_entry,
                    str(directory),
                    f"{_default_owner()}:w{i}",
                    cache_dir,
                    lease_ttl,
                    batch,
                    telemetry,
                )
                for i in range(workers)
            ]
            pending = set(futs)
            while pending:
                done, pending = concurrent.futures.wait(pending, timeout=0.2)
                for fut in done:
                    stats = stats.merged(fut.result())
                _poll_progress(store, campaign, progress)
    except concurrent.futures.process.BrokenProcessPool:
        breaks = 1
    # Finish (or verify) in-process: reclaims expired leases and blocks
    # until every shard has a manifest.
    tail = work(
        directory,
        cache=cache,
        lease_ttl=lease_ttl,
        progress=progress,
        metrics=metrics,
        batch=batch,
        telemetry=telemetry,
    )
    merged = stats.merged(tail)
    return WorkStats(
        shards_total=merged.shards_total,
        shards_claimed=merged.shards_claimed,
        shards_skipped=merged.shards_skipped,
        cells_run=merged.cells_run,
        cache_hits=merged.cache_hits,
        pool_breaks=breaks,
    )


def _poll_progress(store: CampaignStore, campaign: ShardedCampaign, progress) -> None:
    """Pool-mode progress: the parent reads completion off the manifests."""
    if progress is None or not hasattr(progress, "set_completed_cells"):
        return
    done_cells = sum(s.cells for s in campaign.shards if store.shard_done(s))
    progress.set_completed_cells(done_cells)


# ----------------------------------------------------------------------
# Campaign roots: many campaigns under one directory
# ----------------------------------------------------------------------
def prepare_campaign(root: Pathish, campaign: ShardedCampaign) -> pathlib.Path:
    """Initialize (or re-attach to) *campaign* under *root*; returns its dir.

    Campaigns nest under a key-prefixed subdirectory, so one root can
    host every grid a reproduction touches and resume finds them all.
    """
    cdir = pathlib.Path(root) / campaign.campaign_key[:16]
    CampaignStore(cdir).initialize(campaign)
    return cdir


def iter_campaign_dirs(root: Pathish) -> List[pathlib.Path]:
    """Campaign directories under *root* (or *root* itself), sorted."""
    rootp = pathlib.Path(root)
    if (rootp / "campaign.json").is_file():
        return [rootp]
    if not rootp.is_dir():
        return []
    return sorted(
        p for p in rootp.iterdir() if p.is_dir() and (p / "campaign.json").is_file()
    )


def campaign_status(directory: Pathish) -> List[ShardReport]:
    """Per-shard completion/ownership, in shard order."""
    store = CampaignStore(directory)
    campaign = store.load()
    out: List[ShardReport] = []
    for shard in campaign.shards:
        manifest = store.read_manifest(shard)
        if manifest is not None:
            out.append(
                ShardReport(
                    index=shard.index,
                    shard_id=shard.shard_id,
                    cells=shard.cells,
                    state="done",
                    owner=str(manifest.get("owner", "")),
                    wall_ns=int(manifest.get("shard_wall_ns", 0)),
                )
            )
            continue
        lease = store.read_lease(shard.shard_id)
        if lease is not None:
            out.append(
                ShardReport(
                    index=shard.index,
                    shard_id=shard.shard_id,
                    cells=shard.cells,
                    state="leased",
                    owner=str(lease.get("owner", "")),
                    wall_ns=0,
                )
            )
        else:
            out.append(
                ShardReport(
                    index=shard.index,
                    shard_id=shard.shard_id,
                    cells=shard.cells,
                    state="pending",
                    owner="",
                    wall_ns=0,
                )
            )
    return out


# ----------------------------------------------------------------------
# Streaming reduce
# ----------------------------------------------------------------------
def iter_result_docs(directory: Pathish) -> Iterator[Dict[str, Any]]:
    """Yield per-cell result documents in campaign cell order.

    Holds at most one shard's manifest in memory at a time.  Raises
    :class:`IncompleteCampaignError` (listing the missing shard indices)
    if any shard has no valid manifest.
    """
    store = CampaignStore(directory)
    campaign = store.load()
    missing = [s.index for s in campaign.shards if not store.shard_done(s)]
    if missing:
        raise IncompleteCampaignError(missing)
    for shard in campaign.shards:
        manifest = store.read_manifest(shard)
        if manifest is None:  # deleted between the check and the read
            raise IncompleteCampaignError([shard.index])
        yield from manifest["results"]


def merge_results(directory: Pathish) -> List[RunResult]:
    """A completed sweep campaign's results, in submission order."""
    from repro.io.results_json import run_result_from_dict

    return [run_result_from_dict(doc) for doc in iter_result_docs(directory)]


class _HashingWriter:
    """Text-writer wrapper that sha256s everything written through it.

    Lets the streaming merges compute the merged artifact's content
    address in the same pass that produces the bytes — provenance
    emission never re-reads (or changes) the artifact.
    """

    def __init__(self, fh) -> None:
        self._fh = fh
        self._hash = hashlib.sha256()

    def write(self, text: str) -> None:
        self._fh.write(text)
        self._hash.update(text.encode("utf-8"))

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def _iter_docs_collect_owners(
    store: "CampaignStore",
    campaign: ShardedCampaign,
    owners: List[Dict[str, Any]],
) -> Iterator[Dict[str, Any]]:
    """Like :func:`iter_result_docs`, also recording per-shard owners.

    Appends ``{"index", "shard", "owner"}`` to *owners* for each shard as
    its manifest streams by, so the merge can stamp worker attribution
    into the provenance manifest without a second pass over the (large)
    shard files.
    """
    missing = [s.index for s in campaign.shards if not store.shard_done(s)]
    if missing:
        raise IncompleteCampaignError(missing)
    for shard in campaign.shards:
        manifest = store.read_manifest(shard)
        if manifest is None:  # deleted between the check and the read
            raise IncompleteCampaignError([shard.index])
        owners.append(
            {
                "index": shard.index,
                "shard": shard.shard_id,
                "owner": str(manifest.get("owner", "")),
            }
        )
        yield from manifest["results"]


def _emit_provenance(
    campaign: ShardedCampaign,
    dest: pathlib.Path,
    artifact_sha256: str,
    cell_digests: Sequence[str],
    owners: Sequence[Dict[str, Any]],
) -> pathlib.Path:
    """Write the sibling ``repro-provenance`` manifest for one merge."""
    from repro.provenance import build_manifest, provenance_path, write_manifest

    manifest = build_manifest(
        kind=campaign.kind,
        campaign_key=campaign.campaign_key,
        cell_keys=campaign.cell_keys,
        cell_digests=cell_digests,
        artifact=dest,
        artifact_sha256=artifact_sha256,
        cells=campaign.cells,
        owners=owners,
    )
    return write_manifest(manifest, provenance_path(dest))


def write_merged_results(
    directory: Pathish, out: Optional[Pathish] = None
) -> pathlib.Path:
    """Stream a completed sweep campaign into its merged artifact.

    The document is canonical JSON (sorted keys, compact separators)
    over the campaign key and the ordered result list plus a small
    aggregate summary, written atomically.  Because every cell is
    deterministic, the bytes depend only on the campaign — not on which
    workers ran it, in how many attempts, or how it was interrupted.

    A ``repro-provenance`` manifest (cell keys + per-cell digests +
    artifact sha256 + per-shard owners) is written as a sibling file via
    :func:`repro.provenance.provenance_path`; the merged bytes
    themselves are unchanged by provenance emission.
    """
    store = CampaignStore(directory)
    campaign = store.load()
    dest = pathlib.Path(out) if out is not None else store.merged_path
    cells = 0
    truncated = 0
    events_total = 0
    digests: List[str] = []
    owners: List[Dict[str, Any]] = []
    with atomic_writer(dest) as raw:
        fh = _HashingWriter(raw)
        fh.write(
            '{"campaign":"%s","format":"%s","results":['
            % (campaign.campaign_key, MERGED_SWEEP_FORMAT)
        )
        for doc in _iter_docs_collect_owners(store, campaign, owners):
            if cells:
                fh.write(",")
            text = json.dumps(doc, **_CANON)
            fh.write(text)
            digests.append(hashlib.sha256(text.encode("utf-8")).hexdigest())
            cells += 1
            truncated += 1 if doc.get("truncated") else 0
            events_total += int(doc.get("events", 0))
        summary = {"cells": cells, "truncated": truncated, "events_total": events_total}
        fh.write(
            '],"summary":%s,"version":%d}\n'
            % (json.dumps(summary, **_CANON), MERGED_SWEEP_VERSION)
        )
    _emit_provenance(campaign, dest, fh.hexdigest(), digests, owners)
    return dest


def write_results_artifact(
    specs: Sequence[RunSpec],
    results: Sequence[RunResult],
    out: Pathish,
    shard_size: int = 16,
    owner: str = "local",
) -> pathlib.Path:
    """Write a merged sweep artifact + provenance from in-memory results.

    The serial and process-pool backends hold their results in memory
    rather than in a campaign directory; this produces the *same bytes*
    :func:`write_merged_results` would for a sharded run of the same
    cells at the same ``shard_size`` (the campaign key embeds both), so
    every executor backend emits interchangeable, verifiable artifacts.
    """
    from repro.io.results_json import run_result_to_dict

    if len(specs) != len(results):
        raise ValueError(f"{len(specs)} specs but {len(results)} results")
    campaign = ShardedCampaign("sweep", list(specs), shard_size=shard_size)
    dest = pathlib.Path(out)
    cells = 0
    truncated = 0
    events_total = 0
    digests: List[str] = []
    with atomic_writer(dest) as raw:
        fh = _HashingWriter(raw)
        fh.write(
            '{"campaign":"%s","format":"%s","results":['
            % (campaign.campaign_key, MERGED_SWEEP_FORMAT)
        )
        for result in results:
            doc = run_result_to_dict(result)
            if cells:
                fh.write(",")
            text = json.dumps(doc, **_CANON)
            fh.write(text)
            digests.append(hashlib.sha256(text.encode("utf-8")).hexdigest())
            cells += 1
            truncated += 1 if doc.get("truncated") else 0
            events_total += int(doc.get("events", 0))
        summary = {"cells": cells, "truncated": truncated, "events_total": events_total}
        fh.write(
            '],"summary":%s,"version":%d}\n'
            % (json.dumps(summary, **_CANON), MERGED_SWEEP_VERSION)
        )
    owners = [
        {"index": s.index, "shard": s.shard_id, "owner": owner}
        for s in campaign.shards
    ]
    # A sibling campaign document makes the artifact verifiable
    # standalone: `repro-mc2 verify` re-executes cells from it.
    atomic_write_text(
        dest.with_name(dest.stem + ".campaign.json"),
        json.dumps(campaign.to_dict(), indent=2) + "\n",
    )
    _emit_provenance(campaign, dest, fh.hexdigest(), digests, owners)
    return dest


def merge_scorecard(directory: Pathish) -> Scorecard:
    """A completed faults campaign's :class:`Scorecard` (in memory)."""
    outcomes = tuple(
        CellOutcome.from_dict(doc) for doc in iter_result_docs(directory)
    )
    return Scorecard(outcomes=outcomes)


def write_merged_scorecard(
    directory: Pathish, out: Optional[Pathish] = None
) -> pathlib.Path:
    """Stream a completed faults campaign into scorecard JSON.

    Byte-identical to ``Scorecard.save()`` of an uninterrupted serial
    :func:`~repro.faults.campaign.run_campaign` over the same cells: the
    outcome documents are streamed shard by shard in campaign order, and
    the summary is computed incrementally by
    :class:`~repro.faults.campaign.ScorecardSummaryAccumulator` — the
    whole outcome list is never resident at once.
    """
    store = CampaignStore(directory)
    campaign = store.load()
    dest = pathlib.Path(out) if out is not None else store.merged_path
    acc = ScorecardSummaryAccumulator()
    degradation = {"breaks": 0, "retried": 0, "serial_fallback": 0}
    digests: List[str] = []
    owners: List[Dict[str, Any]] = []
    with atomic_writer(dest) as raw:
        fh = _HashingWriter(raw)
        fh.write(
            '{"degradation":%s,"format":"%s","outcomes":['
            % (json.dumps(degradation, **_CANON), SCORECARD_FORMAT)
        )
        first = True
        for doc in _iter_docs_collect_owners(store, campaign, owners):
            outcome = CellOutcome.from_dict(doc)
            acc.add(outcome)
            if not first:
                fh.write(",")
            first = False
            text = json.dumps(outcome.to_dict(), **_CANON)
            fh.write(text)
            digests.append(hashlib.sha256(text.encode("utf-8")).hexdigest())
        fh.write(
            '],"summary":%s,"version":%d}\n'
            % (json.dumps(acc.summary(), **_CANON), SCORECARD_VERSION)
        )
    _emit_provenance(campaign, dest, fh.hexdigest(), digests, owners)
    return dest


# ----------------------------------------------------------------------
# High-level drivers
# ----------------------------------------------------------------------
def run_sharded_campaign(
    cells: Sequence[CampaignCell],
    root: Pathish,
    jobs: int = 1,
    shard_size: int = 16,
    lease_ttl: float = 60.0,
    progress=None,
    metrics=None,
    meta: Optional[Dict[str, Any]] = None,
    telemetry: bool = False,
) -> Tuple[Scorecard, pathlib.Path, WorkStats]:
    """Checkpointed fault campaign: execute (or resume) *cells* under *root*.

    Returns the merged scorecard, the campaign directory and the work
    stats.  Interrupt it at any point — including ``kill -9`` of any
    worker — and calling it again with the same cells (or running
    ``repro-mc2 faults resume <root>``) completes only the missing
    shards and merges to the identical artifact.
    """
    campaign = ShardedCampaign("faults", cells, shard_size=shard_size, meta=meta)
    cdir = prepare_campaign(root, campaign)
    if progress is not None and hasattr(progress, "begin"):
        progress.begin(len(campaign.cells))
    stats = run_workers(
        cdir,
        jobs=jobs,
        lease_ttl=lease_ttl,
        progress=progress,
        metrics=metrics,
        telemetry=telemetry,
    )
    if progress is not None and hasattr(progress, "finish"):
        progress.finish()
    write_merged_scorecard(cdir)
    return merge_scorecard(cdir), cdir, stats


def resume_campaign(
    directory: Pathish,
    jobs: int = 1,
    lease_ttl: float = 60.0,
    cache: Optional[ResultCache] = None,
    progress=None,
    metrics=None,
    telemetry: bool = False,
) -> WorkStats:
    """Re-attach to one campaign directory and drive it to completion.

    Expired leases are reclaimed, completed shards are skipped, the
    merged artifact is (re)written.  Works for both kinds; the caller
    can inspect ``CampaignStore(directory).load().kind`` to decide how
    to present the merged artifact.
    """
    store = CampaignStore(directory)
    campaign = store.load()
    if progress is not None and hasattr(progress, "begin"):
        progress.begin(len(campaign.cells))
    stats = run_workers(
        directory,
        jobs=jobs,
        cache=cache,
        lease_ttl=lease_ttl,
        progress=progress,
        metrics=metrics,
        telemetry=telemetry,
    )
    if progress is not None and hasattr(progress, "finish"):
        progress.finish()
    if campaign.kind == "faults":
        write_merged_scorecard(directory)
    else:
        write_merged_results(directory)
    return stats


# ----------------------------------------------------------------------
# Sweep executor backend
# ----------------------------------------------------------------------
class ShardedBackend(SweepExecutor):
    """A :class:`~repro.runtime.executor.SweepExecutor` that checkpoints.

    ``run(specs)`` content-addresses the spec list into a campaign under
    ``directory``, drives it with ``jobs`` workers, and merges — so a
    sweep killed at any point (including SIGKILL of the whole process
    tree) resumes from its completed shards on the next identical
    ``run()`` call, or via ``repro-mc2 sweep resume``.

    Unlike the pool backend, the campaign covers the *full* spec list
    (its identity must not depend on cache warmth); the per-cell result
    cache is consulted inside the workers instead of up front.
    """

    def __init__(
        self,
        directory: Pathish,
        jobs: int = 1,
        shard_size: int = 16,
        cache: Optional[ResultCache] = None,
        lease_ttl: float = 60.0,
        metrics=None,
        progress=None,
        batch_cells: bool = False,
        telemetry: bool = False,
    ) -> None:
        super().__init__(cache=cache, metrics=metrics, progress=progress)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.directory = pathlib.Path(directory)
        self.jobs = jobs
        self.shard_size = shard_size
        self.lease_ttl = lease_ttl
        #: Execute each shard's misses as one streaming batch (task-set
        #: reuse within the shard; manifests stay byte-identical).
        self.batch_cells = batch_cells
        #: Write per-worker telemetry streams + kernel phase profiles
        #: (observation only; results are byte-identical either way).
        self.telemetry = telemetry
        #: Campaign directory of the most recent run() (for resume/status).
        self.last_campaign_dir: Optional[pathlib.Path] = None

    def _execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        raise NotImplementedError  # run() is overridden wholesale

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        from repro.obs.report import CellReport, SweepReport

        specs = list(specs)
        campaign = ShardedCampaign("sweep", specs, shard_size=self.shard_size)
        cdir = prepare_campaign(self.directory, campaign)
        self.last_campaign_dir = cdir
        if self.progress is not None:
            self.progress.begin(len(specs))
        stats = run_workers(
            cdir,
            jobs=self.jobs,
            cache=self.cache,
            lease_ttl=self.lease_ttl,
            progress=self.progress,
            metrics=self.metrics,
            batch=self.batch_cells,
            telemetry=self.telemetry,
        )
        if self.progress is not None:
            self.progress.finish()
        results = merge_results(cdir)
        write_merged_results(cdir)

        store = CampaignStore(cdir)
        cells: List[CellReport] = []
        for shard in campaign.shards:
            manifest = store.read_manifest(shard) or {}
            cached = manifest.get("cached", [False] * shard.cells)
            wall = manifest.get("wall_ns", [0] * shard.cells)
            for off, pos in enumerate(range(shard.start, shard.stop)):
                spec = campaign.cells[pos]
                result = results[pos]
                cells.append(
                    CellReport(
                        index=pos,
                        key=campaign.cell_keys[pos][:12],
                        scenario=spec.scenario.name,
                        monitor=spec.monitor.label,
                        cached=bool(cached[off]),
                        wall_ns=int(wall[off]),
                        sim_end=result.sim_end,
                        events=result.events,
                        truncated=result.truncated,
                        backend=spec.kernel.backend,
                        batched=self.batch_cells and not bool(cached[off]),
                    )
                )
                self.metrics.histogram("executor.cell.ns").record(int(wall[off]))
        self.report = SweepReport(cells=cells)
        self.metrics.counter("executor.cells").inc(len(specs))
        self.metrics.counter("executor.cache_hits").inc(len(specs) - stats.cells_run)
        self.stats = SweepStats(
            cells_total=len(specs),
            cells_simulated=stats.cells_run,
            cache_hits=len(specs) - stats.cells_run,
            pool_breaks=stats.pool_breaks,
        )
        self.total = SweepStats(
            cells_total=self.total.cells_total + self.stats.cells_total,
            cells_simulated=self.total.cells_simulated + self.stats.cells_simulated,
            cache_hits=self.total.cache_hits + self.stats.cache_hits,
            pool_retried=self.total.pool_retried,
            pool_serial_fallback=self.total.pool_serial_fallback,
            pool_breaks=self.total.pool_breaks + stats.pool_breaks,
        )
        self._write_merged_out(specs, results)
        return results
