"""Sweep executors: run many :class:`RunSpec` cells, serially or in parallel.

The evaluation grids are embarrassingly parallel — cells share nothing —
so the executor interface is simply *"here are N specs, give me N
results in order"*:

* :class:`SerialBackend` runs cells in the calling process (the old
  nested-loop behaviour, now with caching);
* :class:`ProcessPoolBackend` fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor` in chunks.  Specs are
  small frozen dataclasses, so only the spec crosses the process
  boundary; the worker reconstructs the task set from its seed (or
  inline JSON) on its own side.

Both backends share the cache protocol: before simulating, each cell's
:meth:`~repro.runtime.spec.RunSpec.key` is looked up in the optional
:class:`~repro.runtime.cache.ResultCache`; only misses are simulated,
and fresh results are written back.  :attr:`SweepExecutor.stats`
reports, per ``run()`` call, how many cells were served from cache and
how many were actually simulated — the number a fully warmed cache
drives to zero.

Determinism: a cell's result depends only on its spec (the task-set
seed pins the single source of randomness), so backend choice and job
count never change the aggregated figures — only the wall clock.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.metrics import RunResult
from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec

__all__ = [
    "run_spec",
    "SweepStats",
    "SweepExecutor",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_executor",
]


def run_spec(spec: RunSpec) -> RunResult:
    """Execute one cell: materialize the task set, simulate, return the result.

    Module-level (and importing nothing exotic) so it pickles cleanly as
    a process-pool task.  Custom monitor kinds must be registered at
    *import* time of a module the worker also imports — with the default
    ``fork`` start method on Linux, anything registered in the parent is
    simply inherited.
    """
    from repro.experiments.runner import run_overload_experiment

    result = run_overload_experiment(
        spec.taskset.materialize(),
        spec.scenario.build(),
        spec.monitor,
        horizon=spec.horizon,
        confirm_window=spec.confirm_window,
        config=spec.kernel.to_config(),
        level_c_budgets=spec.level_c_budgets,
    )
    assert isinstance(result, RunResult)
    return result


@dataclass(frozen=True)
class SweepStats:
    """What one ``run()`` call actually did."""

    #: Cells requested.
    cells_total: int = 0
    #: Cells that had to be simulated (cache misses).
    cells_simulated: int = 0
    #: Cells served from the result cache.
    cache_hits: int = 0


class SweepExecutor:
    """Common sweep front-end: cache lookups around a simulation backend.

    Subclasses implement :meth:`_execute` (simulate these specs, in
    order); the base class handles cache consultation, write-back and
    accounting.  ``stats`` describes the most recent :meth:`run`;
    ``total`` accumulates across the executor's lifetime.
    """

    def __init__(self, cache: Optional[ResultCache] = None) -> None:
        self.cache = cache
        self.stats = SweepStats()
        self.total = SweepStats()

    def _execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        raise NotImplementedError

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Results for *specs*, in the same order."""
        specs = list(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)
        miss_idx: List[int] = []
        if self.cache is not None:
            keys = [s.key() for s in specs]
            for i, key in enumerate(keys):
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                else:
                    miss_idx.append(i)
        else:
            miss_idx = list(range(len(specs)))

        if miss_idx:
            fresh = self._execute([specs[i] for i in miss_idx])
            for i, result in zip(miss_idx, fresh):
                results[i] = result
                if self.cache is not None:
                    from repro.io.runspec_json import runspec_to_dict

                    self.cache.put(keys[i], runspec_to_dict(specs[i]), result)

        self.stats = SweepStats(
            cells_total=len(specs),
            cells_simulated=len(miss_idx),
            cache_hits=len(specs) - len(miss_idx),
        )
        self.total = SweepStats(
            cells_total=self.total.cells_total + self.stats.cells_total,
            cells_simulated=self.total.cells_simulated + self.stats.cells_simulated,
            cache_hits=self.total.cache_hits + self.stats.cache_hits,
        )
        return results  # type: ignore[return-value]


class SerialBackend(SweepExecutor):
    """Simulate cells one after another in the calling process."""

    def _execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        return [run_spec(s) for s in specs]


class ProcessPoolBackend(SweepExecutor):
    """Simulate cells across a pool of worker processes.

    Parameters
    ----------
    jobs:
        Worker count (default: ``os.cpu_count()``).
    chunksize:
        Specs per pool task; ``None`` picks ``ceil(n / (4 * jobs))``,
        which amortizes dispatch overhead while still load-balancing
        cells of uneven cost (short vs. truncated runs).
    cache:
        Optional shared result cache (consulted in the parent; workers
        never touch the disk cache).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
    ) -> None:
        super().__init__(cache=cache)
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize

    def _execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        if len(specs) <= 1 or self.jobs == 1:
            # Not worth a pool; also keeps single-cell CLI runs fork-free.
            return [run_spec(s) for s in specs]
        chunk = self.chunksize
        if chunk is None:
            chunk = max(1, -(-len(specs) // (4 * self.jobs)))
        workers = min(self.jobs, len(specs))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_spec, specs, chunksize=chunk))


def make_executor(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    max_entries: Optional[int] = None,
) -> SweepExecutor:
    """CLI-flag-shaped factory: ``--jobs N`` / ``--cache-dir PATH``."""
    cache = ResultCache(cache_dir, max_entries=max_entries) if cache_dir else None
    if jobs <= 1:
        return SerialBackend(cache=cache)
    return ProcessPoolBackend(jobs=jobs, cache=cache)
