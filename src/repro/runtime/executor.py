"""Sweep executors: run many :class:`RunSpec` cells, serially or in parallel.

The evaluation grids are embarrassingly parallel — cells share nothing —
so the executor interface is simply *"here are N specs, give me N
results in order"*:

* :class:`SerialBackend` runs cells in the calling process (the old
  nested-loop behaviour, now with caching);
* :class:`ProcessPoolBackend` fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor` in chunks.  Specs are
  small frozen dataclasses, so only the spec crosses the process
  boundary; the worker reconstructs the task set from its seed (or
  inline JSON) on its own side.

Both backends share the cache protocol: before simulating, each cell's
:meth:`~repro.runtime.spec.RunSpec.key` is looked up in the optional
:class:`~repro.runtime.cache.ResultCache`; only misses are simulated,
and fresh results are written back.  :attr:`SweepExecutor.stats`
reports, per ``run()`` call, how many cells were served from cache and
how many were actually simulated — the number a fully warmed cache
drives to zero.

Determinism: a cell's result depends only on its spec (the task-set
seed pins the single source of randomness), so backend choice and job
count never change the aggregated figures — only the wall clock.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.metrics import RunResult
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.report import CellReport, SweepReport
from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec

__all__ = [
    "run_spec",
    "SweepStats",
    "PoolDegradation",
    "map_pool_resilient",
    "SweepExecutor",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_executor",
]


def run_spec(spec: RunSpec) -> RunResult:
    """Execute one cell: materialize the task set, simulate, return the result.

    Module-level (and importing nothing exotic) so it pickles cleanly as
    a process-pool task.  Custom monitor kinds must be registered at
    *import* time of a module the worker also imports — with the default
    ``fork`` start method on Linux, anything registered in the parent is
    simply inherited.

    When ``spec.obs`` requests tracing, a
    :class:`~repro.obs.tracer.JsonlTracer` streams the run's events to
    ``<trace_dir>/run-<key prefix>.jsonl``.  Tracing is observation
    only: the returned :class:`RunResult` is identical either way.
    """
    from repro.experiments.runner import run_overload_experiment

    tracer = None
    if spec.obs.tracing:
        from repro.obs.tracer import JsonlTracer

        os.makedirs(spec.obs.trace_dir, exist_ok=True)
        name = spec.obs.trace_name or f"run-{spec.key()[:12]}.jsonl"
        tracer = JsonlTracer(
            os.path.join(spec.obs.trace_dir, name),
            meta={
                "spec_key": spec.key(),
                "scenario": spec.scenario.name,
                "monitor": spec.monitor.label,
            },
        )
    try:
        result = run_overload_experiment(
            spec.taskset.materialize(),
            spec.scenario.build(),
            spec.monitor,
            horizon=spec.horizon,
            confirm_window=spec.confirm_window,
            config=spec.kernel.to_config(),
            level_c_budgets=spec.level_c_budgets,
            tracer=tracer,
        )
    finally:
        if tracer is not None:
            tracer.close()
    assert isinstance(result, RunResult)
    return result


def _timed_run_spec(spec: RunSpec) -> Tuple[RunResult, int]:
    """:func:`run_spec` plus its wall-clock cost in nanoseconds.

    Module-level for the same pickling reason as :func:`run_spec` —
    this is what the process pool actually maps over, so per-cell
    timing happens on the worker side and rides home with the result.
    """
    t0 = time.perf_counter_ns()
    result = run_spec(spec)
    return result, time.perf_counter_ns() - t0


@dataclass(frozen=True)
class SweepStats:
    """What one ``run()`` call actually did."""

    #: Cells requested.
    cells_total: int = 0
    #: Cells that had to be simulated (cache misses).
    cells_simulated: int = 0
    #: Cells served from the result cache.
    cache_hits: int = 0
    #: Cells re-dispatched to a fresh pool after a worker death.
    pool_retried: int = 0
    #: Cells that fell back to in-process execution (the retry pool
    #: broke too).
    pool_serial_fallback: int = 0
    #: ``BrokenProcessPool`` events absorbed while executing.
    pool_breaks: int = 0


@dataclass(frozen=True)
class PoolDegradation:
    """How far a pool execution had to degrade to finish (see
    :func:`map_pool_resilient`)."""

    retried: int = 0
    serial_fallback: int = 0
    breaks: int = 0


def map_pool_resilient(
    fn,
    items: Sequence,
    workers: int,
    chunksize: int,
    on_result=None,
) -> Tuple[list, PoolDegradation]:
    """``pool.map(fn, items)`` that survives worker death.

    A killed worker (OOM, SIGKILL, interpreter crash) surfaces as
    :class:`concurrent.futures.process.BrokenProcessPool`, which by
    default poisons the whole sweep.  Because ``pool.map`` yields
    results strictly in submission order, everything collected before
    the break is valid — so the remainder is re-dispatched once on a
    fresh pool, and if that pool breaks too, the stragglers run
    in-process (``fn`` is deterministic, so a re-run is equivalent).
    Returns the in-order results plus a :class:`PoolDegradation`
    record of how far execution had to degrade.
    """
    items = list(items)
    results: list = []
    breaks = 0
    retried = 0
    for attempt in range(2):
        remaining = items[len(results):]
        if not remaining:
            break
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(remaining))
            ) as pool:
                for res in pool.map(fn, remaining, chunksize=chunksize):
                    results.append(res)
                    if on_result is not None:
                        on_result(res)
            break
        except concurrent.futures.process.BrokenProcessPool:
            breaks += 1
            if attempt == 0:
                retried = len(items) - len(results)
    serial_fallback = len(items) - len(results)
    for item in items[len(results):]:
        res = fn(item)
        results.append(res)
        if on_result is not None:
            on_result(res)
    return results, PoolDegradation(
        retried=retried, serial_fallback=serial_fallback, breaks=breaks
    )


class SweepExecutor:
    """Common sweep front-end: cache lookups around a simulation backend.

    Subclasses implement :meth:`_execute` (simulate these specs, in
    order); the base class handles cache consultation, write-back and
    accounting.  ``stats`` describes the most recent :meth:`run`;
    ``total`` accumulates across the executor's lifetime.

    Observability (:mod:`repro.obs`) is layered on top: every
    :meth:`run` rebuilds ``report`` (a per-cell
    :class:`~repro.obs.report.SweepReport` — cache status, wall time,
    truncation), per-cell wall times feed the ``executor.cell.ns``
    histogram of ``metrics``, and an optional
    :class:`~repro.obs.progress.ProgressReporter` gets a tick as each
    cell lands.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.progress = progress
        self.stats = SweepStats()
        self.total = SweepStats()
        self.report = SweepReport()
        #: How far the most recent backend execution degraded (set by
        #: pool backends; stays pristine for serial execution).
        self._degradation = PoolDegradation()

    def _execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        raise NotImplementedError

    def _execute_timed(self, specs: Sequence[RunSpec]) -> List[Tuple[RunResult, int]]:
        """Simulate *specs*, reporting (result, wall_ns) per cell.

        Built-in backends override this; a third-party subclass that
        only implements :meth:`_execute` still works — its cells are
        simply reported with an unknown (zero) wall time.
        """
        return [(r, 0) for r in self._execute(specs)]

    def _cell_finished(self, wall_ns: int) -> None:
        """Backend hook: one cell just finished simulating."""
        self.metrics.histogram("executor.cell.ns").record(wall_ns)
        if self.progress is not None:
            self.progress.cell_done(cached=False)

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Results for *specs*, in the same order."""
        specs = list(specs)
        keys: List[str] = []
        results: List[Optional[RunResult]] = [None] * len(specs)
        miss_idx: List[int] = []
        if self.cache is not None:
            keys = [s.key() for s in specs]
            for i, key in enumerate(keys):
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                else:
                    miss_idx.append(i)
        else:
            miss_idx = list(range(len(specs)))

        if self.progress is not None:
            self.progress.begin(len(specs))
            for _ in range(len(specs) - len(miss_idx)):
                self.progress.cell_done(cached=True)

        wall: Dict[int, int] = {}
        self._degradation = PoolDegradation()
        if miss_idx:
            timed = self._execute_timed([specs[i] for i in miss_idx])
            for i, (result, wall_ns) in zip(miss_idx, timed):
                results[i] = result
                wall[i] = wall_ns
                if self.cache is not None:
                    from repro.io.runspec_json import runspec_to_dict

                    self.cache.put(keys[i], runspec_to_dict(specs[i]), result)

        if self.progress is not None:
            self.progress.finish()

        self.report = SweepReport(
            cells=[
                CellReport(
                    index=i,
                    key=(keys[i][:12] if keys else ""),
                    scenario=spec.scenario.name,
                    monitor=spec.monitor.label,
                    cached=i not in wall,
                    wall_ns=wall.get(i, 0),
                    sim_end=result.sim_end,
                    events=result.events,
                    truncated=result.truncated,
                )
                for i, (spec, result) in enumerate(zip(specs, results))
            ]
        )
        self.metrics.counter("executor.cells").inc(len(specs))
        self.metrics.counter("executor.cache_hits").inc(len(specs) - len(miss_idx))

        deg = self._degradation
        self.stats = SweepStats(
            cells_total=len(specs),
            cells_simulated=len(miss_idx),
            cache_hits=len(specs) - len(miss_idx),
            pool_retried=deg.retried,
            pool_serial_fallback=deg.serial_fallback,
            pool_breaks=deg.breaks,
        )
        self.total = SweepStats(
            cells_total=self.total.cells_total + self.stats.cells_total,
            cells_simulated=self.total.cells_simulated + self.stats.cells_simulated,
            cache_hits=self.total.cache_hits + self.stats.cache_hits,
            pool_retried=self.total.pool_retried + deg.retried,
            pool_serial_fallback=self.total.pool_serial_fallback + deg.serial_fallback,
            pool_breaks=self.total.pool_breaks + deg.breaks,
        )
        return results  # type: ignore[return-value]


class SerialBackend(SweepExecutor):
    """Simulate cells one after another in the calling process."""

    def _execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        return [r for r, _ in self._execute_timed(specs)]

    def _execute_timed(self, specs: Sequence[RunSpec]) -> List[Tuple[RunResult, int]]:
        out: List[Tuple[RunResult, int]] = []
        for s in specs:
            timed = _timed_run_spec(s)
            self._cell_finished(timed[1])
            out.append(timed)
        return out


class ProcessPoolBackend(SweepExecutor):
    """Simulate cells across a pool of worker processes.

    Parameters
    ----------
    jobs:
        Worker count (default: ``os.cpu_count()``).
    chunksize:
        Specs per pool task; ``None`` picks ``ceil(n / (4 * jobs))``,
        which amortizes dispatch overhead while still load-balancing
        cells of uneven cost (short vs. truncated runs).
    cache:
        Optional shared result cache (consulted in the parent; workers
        never touch the disk cache).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        super().__init__(cache=cache, metrics=metrics, progress=progress)
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize

    def _execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        return [r for r, _ in self._execute_timed(specs)]

    def _execute_timed(self, specs: Sequence[RunSpec]) -> List[Tuple[RunResult, int]]:
        if len(specs) <= 1 or self.jobs == 1:
            # Not worth a pool; also keeps single-cell CLI runs fork-free.
            out: List[Tuple[RunResult, int]] = []
            for s in specs:
                timed = _timed_run_spec(s)
                self._cell_finished(timed[1])
                out.append(timed)
            return out
        chunk = self.chunksize
        if chunk is None:
            chunk = max(1, -(-len(specs) // (4 * self.jobs)))
        workers = min(self.jobs, len(specs))
        # pool.map yields in submission order as results land, so
        # progress ticks stream in while later chunks still run; the
        # resilient wrapper absorbs worker deaths (retry, then serial).
        out, self._degradation = map_pool_resilient(
            _timed_run_spec,
            specs,
            workers,
            chunk,
            on_result=lambda timed: self._cell_finished(timed[1]),
        )
        return out


def make_executor(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    max_entries: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[ProgressReporter] = None,
    checkpoint_dir: Optional[str] = None,
    shard_size: int = 16,
) -> SweepExecutor:
    """CLI-flag-shaped factory: ``--jobs N`` / ``--cache-dir PATH``.

    ``--checkpoint-dir`` selects the checkpointed
    :class:`~repro.runtime.shard.ShardedBackend`: the sweep is split
    into durable shards under *checkpoint_dir* and a killed run resumes
    from its completed shards (``repro-mc2 sweep resume``).
    """
    cache = ResultCache(cache_dir, max_entries=max_entries) if cache_dir else None
    if checkpoint_dir:
        # Imported lazily: shard builds on this module (and on
        # repro.faults), so a top-level import would be circular.
        from repro.runtime.shard import ShardedBackend

        return ShardedBackend(
            checkpoint_dir,
            jobs=jobs,
            shard_size=shard_size,
            cache=cache,
            metrics=metrics,
            progress=progress,
        )
    if jobs <= 1:
        return SerialBackend(cache=cache, metrics=metrics, progress=progress)
    return ProcessPoolBackend(jobs=jobs, cache=cache, metrics=metrics, progress=progress)
