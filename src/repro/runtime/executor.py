"""Sweep executors: run many :class:`RunSpec` cells, serially or in parallel.

The evaluation grids are embarrassingly parallel — cells share nothing —
so the executor interface is simply *"here are N specs, give me N
results in order"*:

* :class:`SerialBackend` runs cells in the calling process (the old
  nested-loop behaviour, now with caching);
* :class:`ProcessPoolBackend` fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor` in chunks.  Specs are
  small frozen dataclasses, so only the spec crosses the process
  boundary; the worker reconstructs the task set from its seed (or
  inline JSON) on its own side.

Both backends share the cache protocol: before simulating, each cell's
:meth:`~repro.runtime.spec.RunSpec.key` is looked up in the optional
:class:`~repro.runtime.cache.ResultCache`; only misses are simulated,
and fresh results are written back.  :attr:`SweepExecutor.stats`
reports, per ``run()`` call, how many cells were served from cache and
how many were actually simulated — the number a fully warmed cache
drives to zero.

Determinism: a cell's result depends only on its spec (the task-set
seed pins the single source of randomness), so backend choice and job
count never change the aggregated figures — only the wall clock.

**Batched cell execution** (``batch_cells=True``): sweep grids usually
share a handful of task-set specs (the seed axis) across many cells
(the scenario x monitor axes), and for short-horizon cells task-set
generation is a large fraction of the cost.  In batch mode a whole
slice of cells is simulated in one process by
:func:`run_specs_batch`, which materializes each distinct
``TaskSetSpec`` once and reuses it — safe because
:class:`~repro.model.taskset.TaskSet` is immutable and simulation
never mutates it.  Results are bit-for-bit identical to per-cell
execution; only the wall clock changes.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.metrics import RunResult
from repro.model.taskset import TaskSet
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.report import CellReport, SweepReport
from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec, TaskSetSpec

__all__ = [
    "run_spec",
    "run_specs_batch",
    "SweepStats",
    "PoolDegradation",
    "map_pool_resilient",
    "SweepExecutor",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_executor",
]


def _run_spec_on(spec: RunSpec, ts: TaskSet) -> RunResult:
    """Simulate *spec* against an already-materialized task set.

    The shared body of :func:`run_spec` and :func:`run_specs_batch`:
    everything downstream of task-set materialization, so the batch
    path can reuse one :class:`~repro.model.taskset.TaskSet` across
    every cell that references the same :class:`TaskSetSpec`.
    """
    from repro.experiments.runner import run_overload_experiment

    tracer = None
    if spec.obs.tracing:
        from repro.obs.tracer import JsonlTracer

        os.makedirs(spec.obs.trace_dir, exist_ok=True)
        name = spec.obs.trace_name or f"run-{spec.key()[:12]}.jsonl"
        tracer = JsonlTracer(
            os.path.join(spec.obs.trace_dir, name),
            meta={
                "spec_key": spec.key(),
                "scenario": spec.scenario.name,
                "monitor": spec.monitor.label,
            },
        )
    try:
        result = run_overload_experiment(
            ts,
            spec.scenario.build(),
            spec.monitor,
            horizon=spec.horizon,
            confirm_window=spec.confirm_window,
            config=spec.kernel.to_config(),
            level_c_budgets=spec.level_c_budgets,
            tracer=tracer,
            traffic=spec.traffic,
        )
    finally:
        if tracer is not None:
            tracer.close()
    assert isinstance(result, RunResult)
    return result


def run_spec(spec: RunSpec) -> RunResult:
    """Execute one cell: materialize the task set, simulate, return the result.

    Module-level (and importing nothing exotic) so it pickles cleanly as
    a process-pool task.  Custom monitor kinds must be registered at
    *import* time of a module the worker also imports — with the default
    ``fork`` start method on Linux, anything registered in the parent is
    simply inherited.

    When ``spec.obs`` requests tracing, a
    :class:`~repro.obs.tracer.JsonlTracer` streams the run's events to
    ``<trace_dir>/run-<key prefix>.jsonl``.  Tracing is observation
    only: the returned :class:`RunResult` is identical either way.
    """
    return _run_spec_on(spec, spec.taskset.materialize())


def _timed_run_spec(spec: RunSpec) -> Tuple[RunResult, int]:
    """:func:`run_spec` plus its wall-clock cost in nanoseconds.

    Module-level for the same pickling reason as :func:`run_spec` —
    this is what the process pool actually maps over, so per-cell
    timing happens on the worker side and rides home with the result.
    """
    t0 = time.perf_counter_ns()
    result = run_spec(spec)
    return result, time.perf_counter_ns() - t0


def _iter_timed_batch(specs: Sequence[RunSpec]):
    """Yield ``(result, wall_ns)`` per cell, sharing materialized task sets.

    Each distinct ``TaskSetSpec`` (frozen, hashable) is materialized at
    most once per batch; every later cell referencing it reuses the same
    :class:`~repro.model.taskset.TaskSet` instance.  Safe because task
    sets are immutable and simulation never mutates them — the results
    are bit-for-bit identical to per-cell execution.  A generator so
    streaming consumers (shard heartbeats, progress ticks) see each
    cell as it finishes, not the whole batch at the end.

    The first cell of a task set pays the materialization inside its
    wall time (matching :func:`_timed_run_spec`); later cells of the
    same task set don't — per-cell wall times are diagnostics, not part
    of any result artifact.
    """
    ts_cache: Dict[TaskSetSpec, TaskSet] = {}
    for spec in specs:
        t0 = time.perf_counter_ns()
        ts = ts_cache.get(spec.taskset)
        if ts is None:
            ts = ts_cache[spec.taskset] = spec.taskset.materialize()
        result = _run_spec_on(spec, ts)
        yield result, time.perf_counter_ns() - t0


def _timed_run_specs_batch(specs: Sequence[RunSpec]) -> List[Tuple[RunResult, int]]:
    """Batched :func:`_timed_run_spec`: one pool task simulates many cells.

    Module-level and list-returning so it pickles cleanly as a
    process-pool task (generators don't cross the process boundary).
    """
    return list(_iter_timed_batch(specs))


def run_specs_batch(specs: Sequence[RunSpec]) -> List[RunResult]:
    """Simulate *specs* in order in this process, sharing task sets.

    The "many short runs" entry point: a whole shard of sweep cells is
    simulated in one process, with each distinct task-set spec
    materialized once (see :func:`_iter_timed_batch`).  Results are
    identical to ``[run_spec(s) for s in specs]``.
    """
    return [result for result, _ in _iter_timed_batch(specs)]


@dataclass(frozen=True)
class SweepStats:
    """What one ``run()`` call actually did."""

    #: Cells requested.
    cells_total: int = 0
    #: Cells that had to be simulated (cache misses).
    cells_simulated: int = 0
    #: Cells served from the result cache.
    cache_hits: int = 0
    #: Cells re-dispatched to a fresh pool after a worker death.
    pool_retried: int = 0
    #: Cells that fell back to in-process execution (the retry pool
    #: broke too).
    pool_serial_fallback: int = 0
    #: ``BrokenProcessPool`` events absorbed while executing.
    pool_breaks: int = 0


@dataclass(frozen=True)
class PoolDegradation:
    """How far a pool execution had to degrade to finish (see
    :func:`map_pool_resilient`)."""

    retried: int = 0
    serial_fallback: int = 0
    breaks: int = 0


def map_pool_resilient(
    fn,
    items: Sequence,
    workers: int,
    chunksize: int,
    on_result=None,
) -> Tuple[list, PoolDegradation]:
    """``pool.map(fn, items)`` that survives worker death.

    A killed worker (OOM, SIGKILL, interpreter crash) surfaces as
    :class:`concurrent.futures.process.BrokenProcessPool`, which by
    default poisons the whole sweep.  Because ``pool.map`` yields
    results strictly in submission order, everything collected before
    the break is valid — so the remainder is re-dispatched once on a
    fresh pool, and if that pool breaks too, the stragglers run
    in-process (``fn`` is deterministic, so a re-run is equivalent).
    Returns the in-order results plus a :class:`PoolDegradation`
    record of how far execution had to degrade.
    """
    items = list(items)
    results: list = []
    breaks = 0
    retried = 0
    for attempt in range(2):
        remaining = items[len(results):]
        if not remaining:
            break
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(remaining))
            ) as pool:
                for res in pool.map(fn, remaining, chunksize=chunksize):
                    results.append(res)
                    if on_result is not None:
                        on_result(res)
            break
        except concurrent.futures.process.BrokenProcessPool:
            breaks += 1
            if attempt == 0:
                retried = len(items) - len(results)
    serial_fallback = len(items) - len(results)
    for item in items[len(results):]:
        res = fn(item)
        results.append(res)
        if on_result is not None:
            on_result(res)
    return results, PoolDegradation(
        retried=retried, serial_fallback=serial_fallback, breaks=breaks
    )


class SweepExecutor:
    """Common sweep front-end: cache lookups around a simulation backend.

    Subclasses implement :meth:`_execute` (simulate these specs, in
    order); the base class handles cache consultation, write-back and
    accounting.  ``stats`` describes the most recent :meth:`run`;
    ``total`` accumulates across the executor's lifetime.

    Observability (:mod:`repro.obs`) is layered on top: every
    :meth:`run` rebuilds ``report`` (a per-cell
    :class:`~repro.obs.report.SweepReport` — cache status, wall time,
    truncation), per-cell wall times feed the ``executor.cell.ns``
    histogram of ``metrics``, and an optional
    :class:`~repro.obs.progress.ProgressReporter` gets a tick as each
    cell lands.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.progress = progress
        self.stats = SweepStats()
        self.total = SweepStats()
        self.report = SweepReport()
        #: Optional path: when set (``--merged-out``), every :meth:`run`
        #: also writes the canonical merged artifact + its sibling
        #: ``repro-provenance`` manifest there, byte-identical to a
        #: sharded campaign of the same cells at ``merged_shard_size``.
        self.merged_out: Optional[str] = None
        self.merged_shard_size: int = 16
        #: How far the most recent backend execution degraded (set by
        #: pool backends; stays pristine for serial execution).
        self._degradation = PoolDegradation()

    def _execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        raise NotImplementedError

    def _execute_timed(self, specs: Sequence[RunSpec]) -> List[Tuple[RunResult, int]]:
        """Simulate *specs*, reporting (result, wall_ns) per cell.

        Built-in backends override this; a third-party subclass that
        only implements :meth:`_execute` still works — its cells are
        simply reported with an unknown (zero) wall time.
        """
        return [(r, 0) for r in self._execute(specs)]

    def _cell_finished(self, wall_ns: int) -> None:
        """Backend hook: one cell just finished simulating."""
        self.metrics.histogram("executor.cell.ns").record(wall_ns)
        if self.progress is not None:
            self.progress.cell_done(cached=False)

    def _slice_finished(self) -> None:
        """Backend hook: one batched slice of cells just finished."""
        self.metrics.counter("executor.batch_slices").inc()
        if self.progress is not None:
            self.progress.batch_slice()

    def _write_merged_out(
        self, specs: Sequence[RunSpec], results: Sequence[RunResult]
    ) -> None:
        """Emit the merged artifact + provenance manifest if requested."""
        if not self.merged_out:
            return
        # Imported lazily: shard builds on this module.
        from repro.runtime.shard import write_results_artifact

        write_results_artifact(
            specs, results, self.merged_out, shard_size=self.merged_shard_size
        )

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Results for *specs*, in the same order."""
        specs = list(specs)
        keys: List[str] = []
        results: List[Optional[RunResult]] = [None] * len(specs)
        miss_idx: List[int] = []
        if self.cache is not None:
            keys = [s.key() for s in specs]
            for i, key in enumerate(keys):
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                else:
                    miss_idx.append(i)
        else:
            miss_idx = list(range(len(specs)))

        if self.progress is not None:
            self.progress.begin(len(specs))
            for _ in range(len(specs) - len(miss_idx)):
                self.progress.cell_done(cached=True)

        wall: Dict[int, int] = {}
        self._degradation = PoolDegradation()
        if miss_idx:
            timed = self._execute_timed([specs[i] for i in miss_idx])
            for i, (result, wall_ns) in zip(miss_idx, timed):
                results[i] = result
                wall[i] = wall_ns
                if self.cache is not None:
                    from repro.io.runspec_json import runspec_to_dict

                    self.cache.put(keys[i], runspec_to_dict(specs[i]), result)

        if self.progress is not None:
            self.progress.finish()

        batched = bool(getattr(self, "batch_cells", False))
        self.report = SweepReport(
            cells=[
                CellReport(
                    index=i,
                    key=(keys[i][:12] if keys else ""),
                    scenario=spec.scenario.name,
                    monitor=spec.monitor.label,
                    cached=i not in wall,
                    wall_ns=wall.get(i, 0),
                    sim_end=result.sim_end,
                    events=result.events,
                    truncated=result.truncated,
                    backend=spec.kernel.backend,
                    batched=batched and i in wall,
                )
                for i, (spec, result) in enumerate(zip(specs, results))
            ]
        )
        self.metrics.counter("executor.cells").inc(len(specs))
        self.metrics.counter("executor.cache_hits").inc(len(specs) - len(miss_idx))

        deg = self._degradation
        self.stats = SweepStats(
            cells_total=len(specs),
            cells_simulated=len(miss_idx),
            cache_hits=len(specs) - len(miss_idx),
            pool_retried=deg.retried,
            pool_serial_fallback=deg.serial_fallback,
            pool_breaks=deg.breaks,
        )
        self.total = SweepStats(
            cells_total=self.total.cells_total + self.stats.cells_total,
            cells_simulated=self.total.cells_simulated + self.stats.cells_simulated,
            cache_hits=self.total.cache_hits + self.stats.cache_hits,
            pool_retried=self.total.pool_retried + deg.retried,
            pool_serial_fallback=self.total.pool_serial_fallback + deg.serial_fallback,
            pool_breaks=self.total.pool_breaks + deg.breaks,
        )
        self._write_merged_out(specs, results)  # type: ignore[arg-type]
        return results  # type: ignore[return-value]


class SerialBackend(SweepExecutor):
    """Simulate cells one after another in the calling process.

    ``batch_cells=True`` runs the whole miss list through
    :func:`_iter_timed_batch`, materializing each distinct task set
    once instead of once per cell — same results, fewer generator
    invocations.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[ProgressReporter] = None,
        batch_cells: bool = False,
    ) -> None:
        super().__init__(cache=cache, metrics=metrics, progress=progress)
        self.batch_cells = batch_cells

    def _execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        return [r for r, _ in self._execute_timed(specs)]

    def _execute_timed(self, specs: Sequence[RunSpec]) -> List[Tuple[RunResult, int]]:
        out: List[Tuple[RunResult, int]] = []
        if self.batch_cells:
            for timed in _iter_timed_batch(specs):
                self._cell_finished(timed[1])
                out.append(timed)
            if out:
                self._slice_finished()
            return out
        for s in specs:
            timed = _timed_run_spec(s)
            self._cell_finished(timed[1])
            out.append(timed)
        return out


class ProcessPoolBackend(SweepExecutor):
    """Simulate cells across a pool of worker processes.

    Parameters
    ----------
    jobs:
        Worker count (default: ``os.cpu_count()``).
    chunksize:
        Specs per pool task; ``None`` picks ``ceil(n / (4 * jobs))``,
        which amortizes dispatch overhead while still load-balancing
        cells of uneven cost (short vs. truncated runs).
    cache:
        Optional shared result cache (consulted in the parent; workers
        never touch the disk cache).
    batch_cells:
        Ship whole *slices* of the spec list to each worker
        (:func:`_timed_run_specs_batch`) instead of mapping cells
        one-by-one, so a worker materializes each distinct task set
        once per slice.  Batch chunks default to ``ceil(n / jobs)`` —
        larger than the cell-mode default, trading load balancing for
        task-set reuse (``chunksize`` overrides either way).  Results
        are identical; only the wall clock changes.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[ProgressReporter] = None,
        batch_cells: bool = False,
    ) -> None:
        super().__init__(cache=cache, metrics=metrics, progress=progress)
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize
        self.batch_cells = batch_cells

    def _execute(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        return [r for r, _ in self._execute_timed(specs)]

    def _execute_timed(self, specs: Sequence[RunSpec]) -> List[Tuple[RunResult, int]]:
        if len(specs) <= 1 or self.jobs == 1:
            # Not worth a pool; also keeps single-cell CLI runs fork-free.
            out: List[Tuple[RunResult, int]] = []
            if self.batch_cells:
                for timed in _iter_timed_batch(specs):
                    self._cell_finished(timed[1])
                    out.append(timed)
                if out:
                    self._slice_finished()
                return out
            for s in specs:
                timed = _timed_run_spec(s)
                self._cell_finished(timed[1])
                out.append(timed)
            return out
        workers = min(self.jobs, len(specs))
        if self.batch_cells:
            per = self.chunksize
            if per is None:
                per = max(1, -(-len(specs) // workers))
            slices = [specs[i : i + per] for i in range(0, len(specs), per)]

            def _batch_done(timed_slice: List[Tuple[RunResult, int]]) -> None:
                for timed in timed_slice:
                    self._cell_finished(timed[1])
                self._slice_finished()

            # Each pool task is one contiguous slice; map yields slices in
            # submission order, so flattening restores the cell order.
            nested, self._degradation = map_pool_resilient(
                _timed_run_specs_batch,
                slices,
                min(workers, len(slices)),
                1,
                on_result=_batch_done,
            )
            return [timed for timed_slice in nested for timed in timed_slice]
        chunk = self.chunksize
        if chunk is None:
            chunk = max(1, -(-len(specs) // (4 * self.jobs)))
        # pool.map yields in submission order as results land, so
        # progress ticks stream in while later chunks still run; the
        # resilient wrapper absorbs worker deaths (retry, then serial).
        out, self._degradation = map_pool_resilient(
            _timed_run_spec,
            specs,
            workers,
            chunk,
            on_result=lambda timed: self._cell_finished(timed[1]),
        )
        return out


def make_executor(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    max_entries: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[ProgressReporter] = None,
    checkpoint_dir: Optional[str] = None,
    shard_size: int = 16,
    batch_cells: bool = False,
    telemetry: bool = False,
    service_addr: Optional[str] = None,
    merged_out: Optional[str] = None,
) -> SweepExecutor:
    """CLI-flag-shaped factory: ``--jobs N`` / ``--cache-dir PATH``.

    ``--merged-out FILE`` makes every backend — serial and pool
    included — write the canonical merged artifact plus its sibling
    ``repro-provenance`` manifest to *FILE* after the run, so even an
    in-memory sweep leaves a verifiable (``repro-mc2 verify``) artifact
    byte-identical to a sharded campaign of the same cells.

    ``--checkpoint-dir`` selects the checkpointed
    :class:`~repro.runtime.shard.ShardedBackend`: the sweep is split
    into durable shards under *checkpoint_dir* and a killed run resumes
    from its completed shards (``repro-mc2 sweep resume``).

    ``--service HOST:PORT`` routes execution through a running
    ``repro-serve`` coordinator
    (:class:`~repro.serve.client.ServiceBackend`): the spec list is
    submitted as a content-addressed campaign and the coordinator's
    workers drain it.  The file-based backends are the degenerate
    single-machine case of the same seam — results and artifacts are
    identical either way.  Mutually exclusive with ``checkpoint_dir``
    (the coordinator owns its own campaign directories).

    ``--batch-cells`` turns on batched cell execution on every backend:
    each process simulates whole slices of the grid, materializing each
    distinct task set once per slice (identical results, less task-set
    regeneration; see the module docstring).

    ``--telemetry`` turns on kernel phase profiling
    (:mod:`repro.obs.telemetry`) and, on the sharded backend, per-worker
    NDJSON telemetry streams next to the heartbeat files.  Observation
    only: results and cache keys are identical either way.
    """
    if telemetry:
        from repro.obs.telemetry import enable_phase_profiling

        enable_phase_profiling(True)
    cache = ResultCache(cache_dir, max_entries=max_entries) if cache_dir else None
    executor: SweepExecutor
    if service_addr:
        if checkpoint_dir:
            raise ValueError("--service and --checkpoint-dir are mutually exclusive")
        # Imported lazily: repro.serve.client subclasses SweepExecutor,
        # so a top-level import here would be circular.
        from repro.serve.client import ServiceBackend

        executor = ServiceBackend(
            service_addr,
            shard_size=shard_size,
            cache=cache,
            metrics=metrics,
            progress=progress,
        )
    elif checkpoint_dir:
        # Imported lazily: shard builds on this module (and on
        # repro.faults), so a top-level import would be circular.
        from repro.runtime.shard import ShardedBackend

        executor = ShardedBackend(
            checkpoint_dir,
            jobs=jobs,
            shard_size=shard_size,
            cache=cache,
            metrics=metrics,
            progress=progress,
            batch_cells=batch_cells,
            telemetry=telemetry,
        )
    elif jobs <= 1:
        executor = SerialBackend(
            cache=cache, metrics=metrics, progress=progress, batch_cells=batch_cells
        )
    else:
        executor = ProcessPoolBackend(
            jobs=jobs,
            cache=cache,
            metrics=metrics,
            progress=progress,
            batch_cells=batch_cells,
        )
    executor.merged_out = merged_out
    executor.merged_shard_size = shard_size
    return executor
