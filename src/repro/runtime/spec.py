"""Frozen, hashable run specifications — one grid cell, declaratively.

A :class:`RunSpec` pins down everything that determines one overload
experiment's :class:`~repro.experiments.metrics.RunResult`:

* **which task set** (:class:`TaskSetSpec`): a generator seed plus
  :class:`~repro.workload.generator.GeneratorParams`, or an inline
  task-set JSON document for externally supplied workloads.  Workers
  reconstruct the task set on their side of the process boundary, so a
  spec is always cheaply picklable;
* **which overload** (:class:`ScenarioSpec`): the scenario's windows and
  overload level, by value (not by reference to a module constant);
* **which monitor** (:class:`MonitorSpec`): a registry key plus
  parameters — the plugin surface of
  :mod:`repro.runtime.registry`;
* **which kernel** (:class:`KernelSpec`): the JSON-able subset of
  :class:`~repro.sim.kernel.KernelConfig`;
* **run scale**: horizon, confirmation window, level-C budgets.

Everything is a plain frozen dataclass of primitives, so specs are
hashable (usable as dict keys), picklable (shippable to worker
processes) and canonically serializable
(:mod:`repro.io.runspec_json`), which is what makes the on-disk result
cache content-addressed: two specs with the same canonical JSON are the
same experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.model.taskset import TaskSet
from repro.runtime.registry import monitor_registry
from repro.sim.kernel import KernelConfig
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import OverloadScenario

__all__ = [
    "TaskSetSpec",
    "ScenarioSpec",
    "MonitorSpec",
    "KernelSpec",
    "ObsSpec",
    "RunSpec",
]


@dataclass(frozen=True)
class TaskSetSpec:
    """A reconstructible reference to a task set.

    Exactly one of ``seed`` / ``inline`` is set:

    * ``seed`` (+ optional ``params``) — regenerate with the Sec. 5
      methodology (:func:`repro.workload.generator.generate_taskset`).
      This is the canonical form: cheap to ship, stable to hash.
    * ``inline`` — a ``repro-taskset`` JSON document (see
      :mod:`repro.io.taskset_json`) embedded verbatim, for task sets
      that did not come from the generator.
    """

    seed: Optional[int] = None
    params: Optional[GeneratorParams] = None
    inline: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.seed is None) == (self.inline is None):
            raise ValueError("TaskSetSpec needs exactly one of seed= or inline=")
        if self.inline is not None and self.params is not None:
            raise ValueError("params only apply to generated task sets (seed=...)")

    @classmethod
    def generated(cls, seed: int, params: Optional[GeneratorParams] = None) -> "TaskSetSpec":
        """Reference the generator output for *seed* (+ *params*)."""
        return cls(seed=seed, params=params)

    @classmethod
    def from_taskset(cls, ts: TaskSet) -> "TaskSetSpec":
        """Embed an existing task set by value (lossless JSON form)."""
        from repro.io.taskset_json import taskset_to_json

        return cls(inline=taskset_to_json(ts))

    def materialize(self) -> TaskSet:
        """Build the actual :class:`~repro.model.taskset.TaskSet`."""
        if self.inline is not None:
            from repro.io.taskset_json import taskset_from_json

            return taskset_from_json(self.inline)
        return generate_taskset(self.seed, self.params)

    @property
    def label(self) -> str:
        """Short display form, e.g. ``seed:2015`` or ``inline(23 tasks)``."""
        if self.seed is not None:
            return f"seed:{self.seed}"
        return f"inline({self.inline.count('task_id')} tasks)"


@dataclass(frozen=True)
class ScenarioSpec:
    """An overload scenario by value: named windows at an overload level.

    An empty ``windows`` tuple is valid (e.g. ``CALM``): no scripted
    overload — used for open-system runs where overload comes from a
    :class:`~repro.workload.traffic.TrafficSpec` instead.
    """

    name: str
    windows: Tuple[Tuple[float, float], ...]
    overload_level: str = "B"

    @classmethod
    def from_scenario(cls, sc: OverloadScenario) -> "ScenarioSpec":
        return cls(
            name=sc.name,
            windows=tuple((w.start, w.end) for w in sc.windows),
            overload_level=sc.overload_level.name,
        )

    def build(self) -> OverloadScenario:
        """The equivalent :class:`~repro.workload.scenarios.OverloadScenario`."""
        from repro.model.behavior import OverloadWindow
        from repro.model.task import CriticalityLevel

        return OverloadScenario(
            name=self.name,
            windows=tuple(OverloadWindow(a, b) for a, b in self.windows),
            overload_level=CriticalityLevel[self.overload_level],
        )


@dataclass(frozen=True)
class MonitorSpec:
    """Declarative monitor choice for the sweeps.

    ``kind`` is a key in :data:`repro.runtime.registry.monitor_registry`;
    the built-in kinds are:

    * ``"simple"`` — Algorithm 3; ``param`` = recovery speed ``s``.
    * ``"adaptive"`` — Algorithm 4; ``param`` = aggressiveness ``a``.
    * ``"stepped"`` — extension: SIMPLE with gradual restoration;
      ``param`` = ``s``, ``extra`` = step factor (default 2.0).
    * ``"clamped"`` — extension: ADAPTIVE with a speed floor;
      ``param`` = ``a``, ``extra`` = floor (default 0.2).
    * ``"none"`` — no mechanism (baseline).

    Registered third-party kinds (``examples/custom_monitor.py``) work
    everywhere a built-in does — sweeps, the CLI's ``--monitor``, the
    result cache — because both :meth:`build` and :attr:`label` derive
    from the registry entry.
    """

    kind: str
    param: float = 1.0
    extra: Optional[float] = None

    def __post_init__(self) -> None:
        entry = monitor_registry.get(self.kind)  # raises listing known kinds
        if entry.validate is not None:
            entry.validate(self.param)

    def _resolved_extra(self) -> Optional[float]:
        if self.extra is not None:
            return self.extra
        return monitor_registry.get(self.kind).default_extra

    def build(self, kernel) -> "Monitor":  # noqa: F821 - forward ref, avoids core import
        """Instantiate the monitor against *kernel* via the registry."""
        entry = monitor_registry.get(self.kind)
        return entry.build(kernel, self.param, self._resolved_extra())

    @property
    def label(self) -> str:
        """Display label, e.g. ``SIMPLE(s=0.6)`` — also registry-derived."""
        entry = monitor_registry.get(self.kind)
        return entry.label(self.param, self._resolved_extra())


@dataclass(frozen=True)
class KernelSpec:
    """The serializable subset of :class:`~repro.sim.kernel.KernelConfig`.

    ``release_delay`` (an arbitrary callable) has no canonical JSON form
    and is deliberately absent: sporadic-jitter experiments go through
    :func:`~repro.experiments.runner.run_overload_experiment` directly.

    ``backend`` selects the simulator core
    (:data:`repro.sim.backend.kernel_backend_registry`); it is part of
    the canonical JSON whenever it differs from ``"reference"``, so
    results produced by different backends never share a result-cache
    key.  (Backends are gated to byte-identical traces, but the cache
    must stay honest about *what produced* an entry.)
    """

    use_virtual_time: bool = True
    record_intervals: bool = False
    monitor_latency: float = 0.0
    measure_overhead: bool = False
    backend: str = "reference"

    def __post_init__(self) -> None:
        from repro.sim.backend import kernel_backend_registry

        kernel_backend_registry.get(self.backend)  # raises listing known kinds

    @classmethod
    def from_config(cls, config: KernelConfig) -> "KernelSpec":
        if config.release_delay is not None:
            raise ValueError(
                "KernelConfig.release_delay is a callable and cannot be captured "
                "in a RunSpec; call run_overload_experiment directly instead"
            )
        return cls(
            use_virtual_time=config.use_virtual_time,
            record_intervals=config.record_intervals,
            monitor_latency=config.monitor_latency,
            measure_overhead=config.measure_overhead,
            backend=config.backend,
        )

    def to_config(self) -> KernelConfig:
        return KernelConfig(
            use_virtual_time=self.use_virtual_time,
            record_intervals=self.record_intervals,
            monitor_latency=self.monitor_latency,
            measure_overhead=self.measure_overhead,
            backend=self.backend,
        )


@dataclass(frozen=True)
class ObsSpec:
    """Observability configuration for a run (:mod:`repro.obs`).

    Observability is **result-neutral by construction** — tracers and
    metrics only observe, they never alter scheduling decisions — so
    this spec is deliberately *excluded* from the canonical JSON and
    hence from the result-cache key: tracing a sweep does not
    invalidate its cached cells, and two specs differing only in
    ``obs`` are the same experiment.  (Note the corollary: a cell
    served from the cache was not re-simulated, so it produces no
    trace file.)

    Attributes
    ----------
    trace_dir:
        Write one JSONL event trace per simulated cell into this
        directory (created on demand); ``None`` disables tracing.
    trace_name:
        File-name override for single-run use; the default is
        ``run-<spec key prefix>.jsonl``.
    """

    trace_dir: Optional[str] = None
    trace_name: Optional[str] = None

    @property
    def tracing(self) -> bool:
        """Whether a trace file should be produced."""
        return self.trace_dir is not None


@dataclass(frozen=True)
class RunSpec:
    """One sweep cell: everything that determines one ``RunResult``.

    Executing a spec is :func:`repro.runtime.executor.run_spec`; hashing
    it is :meth:`key` (sha256 of the canonical JSON, the result cache's
    address).  Simulation is deterministic given a spec — the only
    randomness is the task-set generator, whose seed the spec pins — so
    equal keys mean bit-for-bit equal results.  The ``obs`` component
    is observation-only and excluded from the hash (see
    :class:`ObsSpec`).
    """

    taskset: TaskSetSpec
    scenario: ScenarioSpec
    monitor: MonitorSpec
    kernel: KernelSpec = field(default_factory=KernelSpec)
    horizon: float = 30.0
    confirm_window: float = 0.5
    level_c_budgets: bool = True
    obs: ObsSpec = field(default_factory=ObsSpec)
    #: Open-system workload (:class:`~repro.workload.traffic.TrafficSpec`):
    #: seeded arrival sources served by aperiodic server tasks appended to
    #: the materialized task set at run time.  Enters the canonical JSON
    #: only when set, so pre-traffic specs keep their exact cache keys.
    traffic: Optional["TrafficSpec"] = None  # noqa: F821 - forward ref

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.confirm_window < 0:
            raise ValueError(f"confirm_window must be >= 0, got {self.confirm_window}")

    def canonical_json(self) -> str:
        """Canonical JSON form (sorted keys, no incidental whitespace)."""
        from repro.io.runspec_json import runspec_canonical_json

        return runspec_canonical_json(self)

    def key(self) -> str:
        """Content address: sha256 hex digest of :meth:`canonical_json`."""
        from repro.io.runspec_json import spec_key

        return spec_key(self)
