"""Content-addressed on-disk cache of sweep results.

Each entry is one JSON file named by the sha256 of its spec's canonical
JSON (sharded two-hex-chars deep, git-object style), holding both the
spec document and the :class:`~repro.experiments.metrics.RunResult` —
the spec rides along for auditability, the key alone addresses the
entry.  Because simulation is deterministic given a spec, a hit is
exactly the result a fresh run would produce; re-running a sweep whose
grid did not change performs zero simulations.

Writes are atomic (temp file + ``os.replace`` + fsync, via
:mod:`repro.util.atomicio`) so concurrent sweeps sharing a cache
directory can only ever observe complete entries — a writer killed at
any instant (including ``kill -9`` mid-write) leaves at most a stray
``*.tmp`` next to the entry, and a torn/corrupt file is treated as a
miss, never an error.

Read-back is *content-address checked*: an entry is only trusted if its
recorded key matches the filename key, its stored spec re-hashes to
that key, and (for entries written with ``result_sha256``) its result
document re-digests to the recorded digest.  A mismatch — bit rot, a
hand-edited file, an entry transplanted between keys — is a miss with a
stderr warning, so a poisoned cache can degrade performance but never
results.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
from typing import Optional, Union

from repro.experiments.metrics import RunResult
from repro.util.atomicio import atomic_write_text

# NOTE: repro.io.canonical is imported lazily inside methods — importing
# the repro.io package at module level would close an import cycle
# (repro.io -> experiments.figures -> runtime -> cache).

__all__ = ["ResultCache", "default_cache_dir"]

_FORMAT = "repro-runcache"
_VERSION = 1


def default_cache_dir() -> pathlib.Path:
    """``$XDG_CACHE_HOME/repro-mc2`` (or ``~/.cache/repro-mc2``)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = pathlib.Path(base) if base else pathlib.Path.home() / ".cache"
    return root / "repro-mc2"


class ResultCache:
    """Spec-keyed result store under one directory.

    Parameters
    ----------
    directory:
        Cache root (created on first write).  ``None`` selects
        :func:`default_cache_dir`.
    max_entries:
        Optional size cap; when a :meth:`put` pushes the entry count
        past it, the oldest entries (by file modification time) are
        evicted until the cap holds.  ``None`` means unbounded.
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path, None] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.directory = pathlib.Path(directory) if directory else default_cache_dir()
        self.max_entries = max_entries

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / f"{key}.json"

    @staticmethod
    def _spec_address(spec_doc: dict) -> str:
        """The content address a stored spec document hashes to.

        Mirrors :func:`repro.io.runspec_json.spec_key`: the key covers
        the spec's *core* dict only — the advisory ``"obs"`` block is
        excluded, so observability settings never split cache entries.
        """
        from repro.io.canonical import canonical_json, sha256_hex

        core = {k: v for k, v in spec_doc.items() if k != "obs"}
        return sha256_hex(canonical_json(core))

    def _corrupt(self, path: pathlib.Path, why: str) -> None:
        print(
            f"repro-mc2: warning: cache entry {path} failed its "
            f"content-address check ({why}); treating as a miss",
            file=sys.stderr,
        )

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for *key*, or ``None`` on a miss.

        A hit must survive three content-address checks — recorded key
        vs. filename key, stored spec vs. key, stored result vs. its
        recorded digest — so a corrupted or transplanted entry warns on
        stderr and misses instead of silently returning wrong results.
        """
        from repro.io.canonical import doc_digest
        from repro.io.results_json import run_result_from_dict

        path = self._path(key)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if doc.get("format") != _FORMAT:
            return None
        if doc.get("key") != key:
            self._corrupt(path, f"recorded key {str(doc.get('key'))[:12]} != {key[:12]}")
            return None
        spec_doc = doc.get("spec")
        if isinstance(spec_doc, dict) and spec_doc:
            try:
                address = self._spec_address(spec_doc)
            except (TypeError, ValueError):
                address = "<unhashable>"
            if address != key:
                self._corrupt(path, f"spec re-hashes to {address[:12]}, not {key[:12]}")
                return None
        recorded_digest = doc.get("result_sha256")
        try:
            result_doc = doc["result"]
            if recorded_digest is not None and doc_digest(result_doc) != recorded_digest:
                self._corrupt(path, "result digest mismatch")
                return None
            return run_result_from_dict(result_doc)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: str, spec_doc: dict, result: RunResult) -> None:
        """Store *result* under *key*, evicting past ``max_entries``."""
        from repro.io.canonical import doc_digest
        from repro.io.results_json import run_result_to_dict

        result_doc = run_result_to_dict(result)
        doc = {
            "format": _FORMAT,
            "version": _VERSION,
            "key": key,
            "spec": spec_doc,
            "result": result_doc,
            "result_sha256": doc_digest(result_doc),
        }
        atomic_write_text(self._path(key), json.dumps(doc, indent=2) + "\n")
        if self.max_entries is not None:
            self.prune(self.max_entries)

    def _entries(self) -> list[pathlib.Path]:
        if not self.directory.is_dir():
            return []
        return [
            p
            for shard in self.directory.iterdir()
            if shard.is_dir()
            for p in shard.glob("*.json")
        ]

    def __len__(self) -> int:
        return len(self._entries())

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def prune(self, max_entries: int) -> int:
        """Evict oldest entries beyond *max_entries*; returns evictions."""
        entries = self._entries()
        excess = len(entries) - max_entries
        if excess <= 0:
            return 0
        entries.sort(key=lambda p: (p.stat().st_mtime, p.name))
        evicted = 0
        for p in entries[:excess]:
            try:
                p.unlink()
                evicted += 1
            except OSError:
                pass
        return evicted

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        entries = self._entries()
        for p in entries:
            try:
                p.unlink()
            except OSError:
                pass
        return len(entries)
