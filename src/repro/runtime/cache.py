"""Content-addressed on-disk cache of sweep results.

Each entry is one JSON file named by the sha256 of its spec's canonical
JSON (sharded two-hex-chars deep, git-object style), holding both the
spec document and the :class:`~repro.experiments.metrics.RunResult` —
the spec rides along for auditability, the key alone addresses the
entry.  Because simulation is deterministic given a spec, a hit is
exactly the result a fresh run would produce; re-running a sweep whose
grid did not change performs zero simulations.

Writes are atomic (temp file + ``os.replace`` + fsync, via
:mod:`repro.util.atomicio`) so concurrent sweeps sharing a cache
directory can only ever observe complete entries — a writer killed at
any instant (including ``kill -9`` mid-write) leaves at most a stray
``*.tmp`` next to the entry, and a torn/corrupt file is treated as a
miss, never an error.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Optional, Union

from repro.experiments.metrics import RunResult
from repro.util.atomicio import atomic_write_text

__all__ = ["ResultCache", "default_cache_dir"]

_FORMAT = "repro-runcache"
_VERSION = 1


def default_cache_dir() -> pathlib.Path:
    """``$XDG_CACHE_HOME/repro-mc2`` (or ``~/.cache/repro-mc2``)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = pathlib.Path(base) if base else pathlib.Path.home() / ".cache"
    return root / "repro-mc2"


class ResultCache:
    """Spec-keyed result store under one directory.

    Parameters
    ----------
    directory:
        Cache root (created on first write).  ``None`` selects
        :func:`default_cache_dir`.
    max_entries:
        Optional size cap; when a :meth:`put` pushes the entry count
        past it, the oldest entries (by file modification time) are
        evicted until the cap holds.  ``None`` means unbounded.
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path, None] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.directory = pathlib.Path(directory) if directory else default_cache_dir()
        self.max_entries = max_entries

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for *key*, or ``None`` on a miss."""
        from repro.io.results_json import run_result_from_dict

        path = self._path(key)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if doc.get("format") != _FORMAT:
            return None
        try:
            return run_result_from_dict(doc["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: str, spec_doc: dict, result: RunResult) -> None:
        """Store *result* under *key*, evicting past ``max_entries``."""
        from repro.io.results_json import run_result_to_dict

        doc = {
            "format": _FORMAT,
            "version": _VERSION,
            "key": key,
            "spec": spec_doc,
            "result": run_result_to_dict(result),
        }
        atomic_write_text(self._path(key), json.dumps(doc, indent=2) + "\n")
        if self.max_entries is not None:
            self.prune(self.max_entries)

    def _entries(self) -> list[pathlib.Path]:
        if not self.directory.is_dir():
            return []
        return [
            p
            for shard in self.directory.iterdir()
            if shard.is_dir()
            for p in shard.glob("*.json")
        ]

    def __len__(self) -> int:
        return len(self._entries())

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def prune(self, max_entries: int) -> int:
        """Evict oldest entries beyond *max_entries*; returns evictions."""
        entries = self._entries()
        excess = len(entries) - max_entries
        if excess <= 0:
            return 0
        entries.sort(key=lambda p: (p.stat().st_mtime, p.name))
        evicted = 0
        for p in entries[:excess]:
            try:
                p.unlink()
                evicted += 1
            except OSError:
                pass
        return evicted

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        entries = self._entries()
        for p in entries:
            try:
                p.unlink()
            except OSError:
                pass
        return len(entries)
