"""String-keyed plugin registries for monitors and schedulers.

Historically :class:`~repro.runtime.spec.MonitorSpec` dispatched on an
``if``/``elif`` chain and duplicated the label formatting alongside it;
adding a policy meant editing core files in two places.  Both the
builder and the label now come from one :class:`MonitorKind` entry in
:data:`monitor_registry`, and third-party code (see
``examples/custom_monitor.py``) registers new kinds at import time:

    from repro.runtime.registry import MonitorKind, monitor_registry

    monitor_registry.register("additive", MonitorKind(
        kind="additive",
        build=lambda kernel, param, extra: AdditiveDecreaseMonitor(...),
        label=lambda param, extra: f"ADDITIVE(s={param:g})",
    ))

:data:`scheduler_registry` is the same surface for the per-level
scheduling policies the kernel consults (level A table-driven, level B
partitioned EDF, level C global GEL-v, level D best-effort), so analysis
tools and future kernel variants can look policies up by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Iterator, Optional, Tuple, TypeVar

__all__ = [
    "Registry",
    "MonitorKind",
    "monitor_registry",
    "scheduler_registry",
]

T = TypeVar("T")


class Registry(Generic[T]):
    """A minimal string-keyed plugin registry.

    Registration is explicit and collision-safe: re-registering a key
    raises unless ``override=True`` is passed (tests and notebooks
    legitimately re-register while iterating on a policy).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._entries: Dict[str, T] = {}

    def register(self, key: str, entry: T, *, override: bool = False) -> T:
        """Add *entry* under *key*; returns the entry for chaining."""
        if not key or not isinstance(key, str):
            raise ValueError(f"{self.name} registry key must be a non-empty string, got {key!r}")
        if key in self._entries and not override:
            raise ValueError(
                f"{self.name} kind {key!r} is already registered; "
                f"pass override=True to replace it"
            )
        self._entries[key] = entry
        return entry

    def unregister(self, key: str) -> None:
        """Remove *key* (missing keys raise, like :meth:`get`)."""
        if key not in self._entries:
            raise KeyError(self._unknown_message(key))
        del self._entries[key]

    def get(self, key: str) -> T:
        """Look *key* up; unknown keys raise with the registered kinds listed."""
        try:
            return self._entries[key]
        except KeyError:
            raise ValueError(self._unknown_message(key)) from None

    def _unknown_message(self, key: str) -> str:
        known = ", ".join(sorted(self._entries)) or "<none>"
        return f"unknown {self.name} kind {key!r}; registered kinds: {known}"

    def keys(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._entries)


def _default_validate(param: float) -> None:
    """The paper's parameter domain: recovery speed/aggressiveness in (0, 1]."""
    if not 0.0 < param <= 1.0:
        raise ValueError(f"monitor parameter must be in (0, 1], got {param}")


@dataclass(frozen=True)
class MonitorKind:
    """One registered monitor policy.

    Attributes
    ----------
    kind:
        Registry key, e.g. ``"simple"``.
    build:
        ``(kernel, param, extra) -> Monitor`` factory.  ``extra`` arrives
        already defaulted (``default_extra`` substituted when the spec
        leaves it ``None``).
    label:
        ``(param, extra) -> str`` display label, e.g. ``SIMPLE(s=0.6)``.
    default_extra:
        Value substituted for a ``None`` ``extra`` (step factor, floor...).
    validate:
        ``(param) -> None`` raising :class:`ValueError` on a bad
        parameter; ``None`` skips validation (the ``"none"`` baseline
        takes no parameter).
    """

    kind: str
    build: Callable[[object, float, Optional[float]], object]
    label: Callable[[float, Optional[float]], str]
    default_extra: Optional[float] = None
    validate: Optional[Callable[[float], None]] = field(default=_default_validate)


#: Monitor policies addressable from a :class:`~repro.runtime.spec.MonitorSpec`.
monitor_registry: Registry[MonitorKind] = Registry("monitor")

#: Per-level scheduling policies (lookup surface for tools and plugins;
#: the kernel's fast path binds them directly).
scheduler_registry: Registry[Callable] = Registry("scheduler")


def _register_builtin_monitors() -> None:
    from repro.core.monitor import AdaptiveMonitor, NullMonitor, SimpleMonitor
    from repro.core.policies import ClampedAdaptiveMonitor, SteppedRestoreMonitor

    monitor_registry.register(
        "simple",
        MonitorKind(
            kind="simple",
            build=lambda kernel, param, extra: SimpleMonitor(kernel, s=param),
            label=lambda param, extra: f"SIMPLE(s={param:g})",
        ),
    )
    monitor_registry.register(
        "adaptive",
        MonitorKind(
            kind="adaptive",
            build=lambda kernel, param, extra: AdaptiveMonitor(kernel, a=param),
            label=lambda param, extra: f"ADAPTIVE(a={param:g})",
        ),
    )
    monitor_registry.register(
        "stepped",
        MonitorKind(
            kind="stepped",
            build=lambda kernel, param, extra: SteppedRestoreMonitor(
                kernel, s=param, step_factor=extra
            ),
            label=lambda param, extra: f"STEPPED(s={param:g},x{extra:g})",
            default_extra=2.0,
        ),
    )
    monitor_registry.register(
        "clamped",
        MonitorKind(
            kind="clamped",
            build=lambda kernel, param, extra: ClampedAdaptiveMonitor(
                kernel, a=param, floor=extra
            ),
            label=lambda param, extra: f"CLAMPED(a={param:g},>={extra:g})",
            default_extra=0.2,
        ),
    )
    monitor_registry.register(
        "none",
        MonitorKind(
            kind="none",
            build=lambda kernel, param, extra: NullMonitor(kernel),
            label=lambda param, extra: "NONE",
            validate=None,
        ),
    )


def _register_builtin_schedulers() -> None:
    from repro.schedulers.best_effort import pick_best_effort
    from repro.schedulers.gel_global import select_gel_jobs
    from repro.schedulers.pedf import pick_edf
    from repro.schedulers.table_driven import pick_table_driven

    scheduler_registry.register("table_driven", pick_table_driven)
    scheduler_registry.register("pedf", pick_edf)
    scheduler_registry.register("gel", select_gel_jobs)
    scheduler_registry.register("best_effort", pick_best_effort)


_register_builtin_monitors()
_register_builtin_schedulers()
