"""Declarative run specifications and sweep executors.

The paper's evaluation is a grid — scenario x parameter x task set — and
every figure, benchmark and CLI sweep walks some slice of it.  This
package turns one grid cell into a frozen, hashable, picklable
:class:`~repro.runtime.spec.RunSpec` and provides the machinery to run
many of them:

* :mod:`repro.runtime.registry` — string-keyed plugin registries for
  monitor policies and per-level schedulers, so extensions register
  themselves instead of patching ``if``/``elif`` chains in core modules;
* :mod:`repro.runtime.spec` — ``RunSpec`` and its component specs
  (task-set reference, scenario, monitor, kernel knobs), all plain
  frozen dataclasses with canonical JSON forms (:mod:`repro.io.runspec_json`);
* :mod:`repro.runtime.cache` — a content-addressed on-disk result cache
  keyed by the sha256 of a spec's canonical JSON;
* :mod:`repro.runtime.executor` — ``SerialBackend`` and
  ``ProcessPoolBackend`` sweep executors that check the cache, simulate
  only the missing cells, and report how much work they actually did;
* :mod:`repro.runtime.shard` — the checkpointed, sharded campaign
  orchestrator (``ShardedBackend``, ``run_sharded_campaign``,
  ``resume_campaign``): content-addressed shards, lease files, atomic
  per-shard manifests and streaming merges, so a killed sweep resumes
  from its completed shards instead of restarting.
"""

from repro.runtime.cache import ResultCache
from repro.runtime.executor import (
    ProcessPoolBackend,
    SerialBackend,
    SweepExecutor,
    SweepStats,
    make_executor,
    run_spec,
)
from repro.runtime.registry import (
    MonitorKind,
    Registry,
    monitor_registry,
    scheduler_registry,
)
from repro.runtime.shard import (
    CampaignStore,
    ShardedBackend,
    ShardedCampaign,
    WorkStats,
    campaign_status,
    iter_campaign_dirs,
    prepare_campaign,
    resume_campaign,
    run_sharded_campaign,
)
from repro.runtime.spec import (
    KernelSpec,
    MonitorSpec,
    ObsSpec,
    RunSpec,
    ScenarioSpec,
    TaskSetSpec,
)

__all__ = [
    "Registry",
    "MonitorKind",
    "monitor_registry",
    "scheduler_registry",
    "TaskSetSpec",
    "ScenarioSpec",
    "MonitorSpec",
    "KernelSpec",
    "ObsSpec",
    "RunSpec",
    "ResultCache",
    "SweepExecutor",
    "SweepStats",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_executor",
    "run_spec",
    "ShardedCampaign",
    "CampaignStore",
    "ShardedBackend",
    "WorkStats",
    "prepare_campaign",
    "iter_campaign_dirs",
    "campaign_status",
    "run_sharded_campaign",
    "resume_campaign",
]
