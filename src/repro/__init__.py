"""repro: Recovering from Overload in Multicore Mixed-Criticality Systems.

A from-scratch Python reproduction of Erickson, Kim & Anderson (IPPS
2015): the MC² mixed-criticality architecture with GEL-v scheduling at
level C, the SVO task model, virtual-time overload recovery with the
SIMPLE and ADAPTIVE userspace monitors, the supporting schedulability
analysis, and the paper's full experimental evaluation.

Quick start::

    from repro import (
        generate_taskset, SHORT, MonitorSpec, run_overload_experiment,
    )

    ts = generate_taskset(seed=2015)             # Sec. 5 avionics workload
    result = run_overload_experiment(ts, SHORT, MonitorSpec("simple", 0.6))
    print(result.row())                          # dissipation time etc.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.analysis import (
    DissipationBound,
    SpeedChoice,
    select_recovery_speed,
    SchedulabilityResult,
    SupplyModel,
    check_level_c,
    dissipation_bound,
    gel_response_bounds,
)
from repro.core import (
    AdaptiveMonitor,
    CompletionReport,
    Monitor,
    NullMonitor,
    SimpleMonitor,
    SpeedProfile,
    VirtualClock,
    assign_tolerances,
    gedf_relative_pps,
    gfl_relative_pps,
)
from repro.core.policies import ClampedAdaptiveMonitor, SteppedRestoreMonitor
from repro.core.tolerance import fixed_tolerances
from repro.experiments import (
    MonitorSpec,
    calibrate_tolerances,
    full_reproduction,
    RunResult,
    adaptive_sweep,
    figure6,
    figure7,
    figure8,
    measure_overheads,
    run_overload_experiment,
)
from repro.model import (
    ConstantBehavior,
    CriticalityLevel,
    Job,
    OverloadWindow,
    Task,
    TaskSet,
    TraceBehavior,
    WindowedOverloadBehavior,
)
from repro.io import taskset_from_json, taskset_to_json
from repro.obs import (
    JsonlTracer,
    MetricsRegistry,
    NullTracer,
    SpanTimer,
    summarize_trace,
    write_chrome_trace,
)
from repro.runtime import (
    KernelSpec,
    ObsSpec,
    ProcessPoolBackend,
    ResultCache,
    RunSpec,
    ScenarioSpec,
    SerialBackend,
    TaskSetSpec,
    make_executor,
    monitor_registry,
    scheduler_registry,
)
from repro.sim import KernelConfig, MC2Kernel, Trace, simulate
from repro.viz import svg_gantt
from repro.workload import (
    DOUBLE,
    LONG,
    SHORT,
    GeneratorParams,
    OverloadScenario,
    generate_taskset,
    generate_tasksets,
    standard_scenarios,
)

__version__ = "1.0.0"

__all__ = [
    # model
    "CriticalityLevel",
    "Task",
    "Job",
    "TaskSet",
    "ConstantBehavior",
    "TraceBehavior",
    "WindowedOverloadBehavior",
    "OverloadWindow",
    # core
    "VirtualClock",
    "SpeedProfile",
    "Monitor",
    "NullMonitor",
    "SimpleMonitor",
    "AdaptiveMonitor",
    "ClampedAdaptiveMonitor",
    "SteppedRestoreMonitor",
    "CompletionReport",
    "gfl_relative_pps",
    "gedf_relative_pps",
    "assign_tolerances",
    "fixed_tolerances",
    # analysis
    "SupplyModel",
    "gel_response_bounds",
    "check_level_c",
    "SchedulabilityResult",
    "dissipation_bound",
    "DissipationBound",
    "SpeedChoice",
    "select_recovery_speed",
    # sim
    "MC2Kernel",
    "KernelConfig",
    "Trace",
    "simulate",
    # workload
    "generate_taskset",
    "generate_tasksets",
    "GeneratorParams",
    "OverloadScenario",
    "SHORT",
    "LONG",
    "DOUBLE",
    "standard_scenarios",
    # runtime
    "RunSpec",
    "TaskSetSpec",
    "ScenarioSpec",
    "KernelSpec",
    "ObsSpec",
    "ResultCache",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_executor",
    "monitor_registry",
    "scheduler_registry",
    # experiments
    "MonitorSpec",
    "RunResult",
    "run_overload_experiment",
    "figure6",
    "adaptive_sweep",
    "figure7",
    "figure8",
    "measure_overheads",
    "calibrate_tolerances",
    "full_reproduction",
    # obs
    "JsonlTracer",
    "NullTracer",
    "MetricsRegistry",
    "SpanTimer",
    "summarize_trace",
    "write_chrome_trace",
    "svg_gantt",
    "taskset_to_json",
    "taskset_from_json",
    "__version__",
]
