"""Benchmark + regeneration of Fig. 7: dissipation time for ADAPTIVE.

Sweeps the aggressiveness a in {0.2 .. 1.0} and asserts the paper's
shape: ADAPTIVE's dissipation depends only weakly on the overload length
(unlike SIMPLE's), and is often smaller than SIMPLE's.
"""

from __future__ import annotations

from repro.experiments.figures import (
    DEFAULT_SWEEP_VALUES,
    adaptive_sweep,
    figure6,
    figure7,
)
from repro.runtime.executor import SerialBackend
from repro.workload.scenarios import standard_scenarios


def bench_fig7_dissipation_adaptive(benchmark, taskset_specs):
    executor = SerialBackend()
    sweep = benchmark.pedantic(
        lambda: adaptive_sweep(taskset_specs, a_values=DEFAULT_SWEEP_VALUES,
                               scenarios=standard_scenarios(), executor=executor),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["cells_simulated"] = executor.total.cells_simulated
    fig = figure7(sweep)
    print()
    print(fig.render(unit_scale=1e3, unit="ms"))

    # Shape: weak dependence on overload length — the LONG/SHORT ratio
    # under ADAPTIVE is clearly below SIMPLE's ~2x.
    ratios = [
        fig.point("LONG", a).ci.mean / max(fig.point("SHORT", a).ci.mean, 1e-9)
        for a in DEFAULT_SWEEP_VALUES
    ]
    assert min(ratios) < 1.8, f"ADAPTIVE LONG/SHORT ratios: {ratios}"

    # Shape: ADAPTIVE beats SIMPLE's baseline (s = 1) dissipation.
    fig6_data = figure6(taskset_specs, s_values=(1.0,),
                        scenarios=standard_scenarios(), executor=executor)
    for name in ("SHORT", "LONG", "DOUBLE"):
        adaptive_best = min(fig.point(name, a).ci.mean for a in DEFAULT_SWEEP_VALUES)
        assert adaptive_best < fig6_data.point(name, 1.0).ci.mean

    for series in fig.series:
        for p in series.points:
            benchmark.extra_info[f"{series.label}@{p.x:g}"] = round(p.ci.mean, 4)
