"""Benchmark: sweep wall-clock for serial vs. process-pool executors.

Runs a fixed Fig. 6 grid (SHORT/LONG/DOUBLE x the full s sweep x the
shared task sets, 45 cells) uncached through ``SerialBackend`` and
``ProcessPoolBackend`` at ``jobs`` in {1, 2, 4, 8}, and records each
configuration's wall-clock plus its speedup over serial in
``extra_info`` (JSON in pytest-benchmark's report, like the other
``bench_*`` scripts).  Run standalone to get the same document on
stdout:

    PYTHONPATH=src python benchmarks/bench_executor_scaling.py

Sanity assertions only check that every backend produced the identical
figure — wall-clock ratios depend on the host and are reported, not
asserted.
"""

from __future__ import annotations

import json
import time

from repro.experiments.figures import DEFAULT_SWEEP_VALUES, figure6
from repro.runtime.executor import ProcessPoolBackend, SerialBackend
from repro.runtime.spec import TaskSetSpec
from repro.workload.generator import taskset_seeds
from repro.workload.scenarios import standard_scenarios

JOB_COUNTS = (1, 2, 4, 8)


def _sweep(taskset_specs, executor):
    return figure6(taskset_specs, s_values=DEFAULT_SWEEP_VALUES,
                   scenarios=standard_scenarios(), executor=executor)


def _measure(taskset_specs):
    """{label: (seconds, FigureData)} for serial + each pool width."""
    timings = {}
    t0 = time.perf_counter()
    baseline = _sweep(taskset_specs, SerialBackend())
    timings["serial"] = (time.perf_counter() - t0, baseline)
    for jobs in JOB_COUNTS:
        t0 = time.perf_counter()
        fig = _sweep(taskset_specs, ProcessPoolBackend(jobs=jobs))
        timings[f"process:{jobs}"] = (time.perf_counter() - t0, fig)
    return timings


def _report(timings):
    serial_s, baseline = timings["serial"]
    cells = sum(p.ci.n for s in baseline.series for p in s.points)
    doc = {"cells": cells, "serial_s": round(serial_s, 3), "backends": {}}
    for label, (seconds, fig) in timings.items():
        assert fig == baseline, f"{label} diverged from the serial figure"
        doc["backends"][label] = {
            "wall_s": round(seconds, 3),
            "speedup": round(serial_s / seconds, 2) if seconds else float("inf"),
        }
    return doc


def bench_executor_scaling(benchmark, taskset_specs):
    timings = {}

    def run():
        timings.update(_measure(taskset_specs))
        return timings

    benchmark.pedantic(run, rounds=1, iterations=1)
    doc = _report(timings)
    print()
    print(json.dumps(doc, indent=2))
    for label, entry in doc["backends"].items():
        benchmark.extra_info[label] = entry["wall_s"]
        benchmark.extra_info[f"{label}:speedup"] = entry["speedup"]


if __name__ == "__main__":
    specs = [TaskSetSpec.generated(seed) for seed in taskset_seeds(3, 2015)]
    print(json.dumps(_report(_measure(specs)), indent=2))
