"""Benchmark + regeneration of Fig. 6: dissipation time for SIMPLE.

Sweeps s(t) in {0.2, 0.4, 0.6, 0.8, 1.0} over SHORT/LONG/DOUBLE on the
shared task sets, prints the figure's series, and asserts the paper's
shape claims:

* dissipation decreases as s decreases (s = 1 is the no-slowdown baseline);
* LONG dissipation is roughly twice SHORT's;
* DOUBLE is close to SHORT for small s but worse at s = 1;
* s = 0.6 already halves dissipation vs. s = 1 and keeps it below about
  twice the overload length.
"""

from __future__ import annotations

from repro.experiments.figures import DEFAULT_SWEEP_VALUES, figure6
from repro.runtime.executor import SerialBackend
from repro.workload.scenarios import standard_scenarios


def bench_fig6_dissipation_simple(benchmark, taskset_specs):
    executor = SerialBackend()
    fig = benchmark.pedantic(
        lambda: figure6(taskset_specs, s_values=DEFAULT_SWEEP_VALUES,
                        scenarios=standard_scenarios(), executor=executor),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["cells_simulated"] = executor.total.cells_simulated
    print()
    print(fig.render(unit_scale=1e3, unit="ms"))

    # Shape claim 1: monotone in s for every scenario.
    for label in ("SHORT", "LONG", "DOUBLE"):
        means = [fig.point(label, s).ci.mean for s in DEFAULT_SWEEP_VALUES]
        assert all(a <= b + 1e-9 for a, b in zip(means, means[1:])), (
            f"{label}: dissipation should not decrease as s grows: {means}"
        )

    # Shape claim 2: LONG ~ 2x SHORT (allow 1.4x - 3x).
    for s in DEFAULT_SWEEP_VALUES:
        ratio = fig.point("LONG", s).ci.mean / fig.point("SHORT", s).ci.mean
        assert 1.3 <= ratio <= 3.5, f"LONG/SHORT at s={s}: {ratio:.2f}"

    # Shape claim 3: DOUBLE ~ SHORT at small s, worse at s = 1.
    assert fig.point("DOUBLE", 0.2).ci.mean <= 1.6 * fig.point("SHORT", 0.2).ci.mean
    assert fig.point("DOUBLE", 1.0).ci.mean > fig.point("SHORT", 1.0).ci.mean

    # Shape claim 4: s=0.6 halves dissipation vs s=1 and stays under
    # ~2x the overload length for SHORT (0.5 s overload).
    short_06 = fig.point("SHORT", 0.6).ci.mean
    short_10 = fig.point("SHORT", 1.0).ci.mean
    assert short_06 <= 0.6 * short_10
    assert short_06 <= 2.2 * 0.5

    for series in fig.series:
        for p in series.points:
            benchmark.extra_info[f"{series.label}@{p.x:g}"] = round(p.ci.mean, 4)
