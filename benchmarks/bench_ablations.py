"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Level-C budgets** (footnotes 2-3): the paper-faithful configuration
  enforces level-C execution budgets, so overload consists of A/B
  occupancy; without budgets level-C demand itself inflates 10x and
  recovery takes far longer.
* **Tolerance margin**: widening tolerances beyond the analytical bound
  delays overload detection and lengthens recovery episodes slightly,
  but cannot create false positives (which margin 1.0 already avoids).
* **Monitor latency**: the paper's monitor is a userspace process; we
  sweep an injected notification latency and check dissipation degrades
  gracefully.
"""

from __future__ import annotations


from repro.core.tolerance import assign_tolerances
from repro.experiments.runner import MonitorSpec, run_overload_experiment
from repro.sim.kernel import KernelConfig
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import SHORT

SPEC = MonitorSpec("simple", 0.6)


def bench_ablation_level_c_budgets(benchmark, tasksets):
    ts = tasksets[0]

    def run():
        with_b = run_overload_experiment(ts, SHORT, SPEC, level_c_budgets=True)
        without = run_overload_experiment(ts, SHORT, SPEC, level_c_budgets=False,
                                          horizon=60.0)
        return with_b, without

    with_b, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation: level-C execution budgets (SHORT, SIMPLE s=0.6)")
    print(f"  budgets on : dissipation = {with_b.dissipation * 1e3:8.1f} ms")
    print(f"  budgets off: dissipation = {without.dissipation * 1e3:8.1f} ms")
    assert without.dissipation > 2.0 * with_b.dissipation
    benchmark.extra_info["with_budgets_ms"] = round(with_b.dissipation * 1e3, 1)
    benchmark.extra_info["without_budgets_ms"] = round(without.dissipation * 1e3, 1)


def bench_ablation_tolerance_margin(benchmark):
    base = generate_taskset(2015, GeneratorParams(assign_tolerances=False))

    def run():
        out = {}
        for margin in (1.0, 2.0, 4.0):
            ts = assign_tolerances(base, margin=margin)
            out[margin] = run_overload_experiment(ts, SHORT, SPEC)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation: tolerance margin (SHORT, SIMPLE s=0.6)")
    for margin, r in results.items():
        print(f"  margin {margin:3.1f}: dissipation = {r.dissipation * 1e3:8.1f} ms, "
              f"misses = {r.miss_count}")
    # Wider tolerances can only reduce the number of detected misses.
    assert results[4.0].miss_count <= results[1.0].miss_count
    # Recovery still happens even with the widest margin (genuine overload).
    assert results[4.0].episodes >= 1


def bench_ablation_monitor_latency(benchmark, tasksets):
    ts = tasksets[0]

    def run():
        out = {}
        for latency in (0.0, 0.001, 0.01):
            cfg = KernelConfig(monitor_latency=latency)
            out[latency] = run_overload_experiment(ts, SHORT, SPEC, config=cfg)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation: monitor notification latency (SHORT, SIMPLE s=0.6)")
    for latency, r in results.items():
        print(f"  latency {latency * 1e3:5.1f} ms: "
              f"dissipation = {r.dissipation * 1e3:8.1f} ms")
    # All variants still recover.
    assert all(not r.truncated for r in results.values())
    # A 10 ms monitor latency changes dissipation only modestly (< 50%).
    d0, d10 = results[0.0].dissipation, results[0.01].dissipation
    assert abs(d10 - d0) <= 0.5 * d0 + 0.05
