"""Kernel throughput: dispatcher variants and kernel backends, one harness.

Two comparisons ride the same cells:

* **Dispatcher** (within the reference backend): the baseline
  dispatcher re-sorts the whole level-C pool at every scheduling point
  — O(n log n) per event — while the incremental dispatcher keeps lazy
  heaps and per-task heads, paying O(log n) per touched job.
* **Backend**: the struct-of-arrays core (``KernelConfig(backend="soa")``)
  replaces per-job/event/processor objects with flat parallel arrays and
  a fused event loop; its gate is **>= 2x** the reference backend's
  events/sec on the 8-CPU cells.

Every variant's trace fingerprint is checked for equality, so a
fast-but-wrong kernel cannot "win".  Repetitions are interleaved across
variants (rep 1 of every variant, then rep 2, ...) so slow drift in
machine load cancels out of the ratios instead of biasing whichever
variant ran last.

Standalone (CI runs this; artifacts are uploaded)::

    PYTHONPATH=src python benchmarks/bench_kernel_throughput.py \
        --smoke --out kernel-throughput.json \
        --check benchmarks/baseline_kernel_throughput.json

``--check`` compares the measured *speedup ratios* (machine-independent,
unlike raw events/sec) against a recorded baseline and fails if any cell
regressed by more than 30 %; it also enforces the absolute soa gate.

Also collectable as a pytest benchmark::

    pytest benchmarks/bench_kernel_throughput.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Any, Dict, Tuple

from repro.core.monitor import NullMonitor
from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel
from repro.sim.backend import create_kernel
from repro.sim.diffcheck import fingerprint
from repro.sim.kernel import KernelConfig
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.traffic import (
    MMPPSource,
    PoissonSource,
    ServerSpec,
    TrafficFlow,
    TrafficSpec,
)

#: Allowed drop in a cell's speedup ratio before --check fails.
CHECK_TOLERANCE = 0.30

#: Required soa-vs-reference throughput ratio on the 8-CPU cells.
SOA_GATE = 2.0

#: (name, m, util_range, traffic) — both 8-CPU cells land >= 64 level-C
#: tasks (light per-task utilizations pack many tasks into the fixed
#: 65 % level-C share); "large" is where the baseline's per-event sort
#: bites.  "aperiodic-4cpu" layers open-system traffic (Poisson + MMPP
#: flows through polling/deferrable server banks) on top of the
#: periodic workload — short server periods make it release-heavy, the
#: regime where grant lookups ride the hot path.  It must not be the
#: last cell: the pytest wrapper pins the final cell to "large-8cpu".
CELLS: Tuple[Tuple[str, int, Tuple[float, float], bool], ...] = (
    ("small-2cpu", 2, (0.1, 0.4), False),
    ("medium-8cpu", 8, (0.04, 0.1), False),
    ("aperiodic-4cpu", 4, (0.1, 0.4), True),
    ("large-8cpu", 8, (0.01, 0.03), False),
)


def _aperiodic_traffic(m: int) -> TrafficSpec:
    """A heavy aperiodic plane: saturating Poisson + bursty MMPP flows."""
    return TrafficSpec(flows=(
        TrafficFlow(
            PoissonSource(rate=150.0 * m, mean_demand=0.002, seed=5),
            ServerSpec(period=0.02, budget=0.004, count=2 * m),
        ),
        TrafficFlow(
            MMPPSource(rates=(20.0 * m, 400.0 * m), dwells=(0.4, 0.1),
                       mean_demand=0.002, seed=7),
            ServerSpec(period=0.025, budget=0.005, level="D",
                       policy="deferrable", count=m),
        ),
    ))

#: (label, dispatcher, backend) — the timed variants.  "incremental" on
#: the reference backend is the pivot both speedups are measured against.
VARIANTS: Tuple[Tuple[str, str, str], ...] = (
    ("baseline", "baseline", "reference"),
    ("incremental", "incremental", "reference"),
    ("soa", "incremental", "soa"),
)


def _run_once(ts, dispatcher: str, horizon: float, backend: str = "reference",
              traffic: TrafficSpec = None):
    # TrafficBehavior carries per-run grant state: build it fresh per
    # run (sharing one across repetitions would corrupt the grants).
    behavior = ConstantBehavior()
    if traffic is not None:
        behavior = traffic.build_behavior(behavior, horizon)
    kernel = create_kernel(
        ts,
        behavior=behavior,
        config=KernelConfig(dispatcher=dispatcher, backend=backend),
    )
    monitor = NullMonitor(kernel)
    kernel.attach_monitor(monitor)
    t0 = time.perf_counter_ns()
    trace = kernel.run(horizon)
    elapsed_ns = time.perf_counter_ns() - t0
    return elapsed_ns, kernel, trace, monitor


def _measure_cell(
    name: str,
    m: int,
    util_range: Tuple[float, float],
    seed: int,
    horizon: float,
    reps: int,
    traffic: bool = False,
) -> Dict[str, Any]:
    ts = generate_taskset(seed, GeneratorParams(m=m, util_range=util_range))
    tspec = _aperiodic_traffic(m) if traffic else None
    if tspec is not None:
        ts = tspec.augment(ts)
    n_level_c = sum(1 for t in ts if t.level is CriticalityLevel.C)

    prints: Dict[str, Any] = {}
    best: Dict[str, int] = {}
    events: Dict[str, int] = {}
    for label, dispatcher, backend in VARIANTS:  # warm-up
        _run_once(ts, dispatcher, min(horizon, 0.25), backend, tspec)
    for _ in range(reps):  # interleaved: one rep of each variant per pass
        for label, dispatcher, backend in VARIANTS:
            elapsed_ns, kernel, trace, monitor = _run_once(
                ts, dispatcher, horizon, backend, tspec
            )
            if label not in best or elapsed_ns < best[label]:
                best[label] = elapsed_ns
            events[label] = kernel.events_processed
            prints[label] = fingerprint(trace, kernel, monitor)
    rates = {label: events[label] / (best[label] / 1e9) for label in best}

    # A fast variant that computes a different schedule is a bug, not a
    # win — this pins all three to one behaviour.
    for label in ("incremental", "soa"):
        assert prints["baseline"] == prints[label], (
            f"cell {name}: {label} diverged from baseline"
        )

    return {
        "cell": name,
        "m": m,
        "util_range": list(util_range),
        "level_c_tasks": n_level_c,
        "tasks": len(ts),
        "horizon": horizon,
        "events": events["incremental"],
        "baseline_events_per_sec": rates["baseline"],
        "incremental_events_per_sec": rates["incremental"],
        "soa_events_per_sec": rates["soa"],
        "speedup": rates["incremental"] / rates["baseline"],
        "soa_speedup": rates["soa"] / rates["incremental"],
    }


def measure(
    seed: int = 2015, horizon: float = 10.0, reps: int = 3
) -> Dict[str, Any]:
    """Time every variant over every cell; return the comparison doc."""
    return {
        "format": "repro-kernel-throughput",
        "version": 2,
        "seed": seed,
        "horizon": horizon,
        "reps": reps,
        "cells": [
            _measure_cell(name, m, util, seed, horizon, reps, traffic)
            for name, m, util, traffic in CELLS
        ],
    }


def check_against(doc: Dict[str, Any], baseline: Dict[str, Any]) -> list:
    """Regressions vs. a recorded baseline (empty = pass).

    Ratios of two runs on the same machine cancel the machine's absolute
    speed, so a recorded baseline stays meaningful across CI runners; the
    30 % tolerance absorbs scheduling noise.  Two families of checks:

    * the incremental-vs-baseline dispatcher speedup per cell (parity
      with the recorded reference figures);
    * the soa-vs-reference backend speedup per cell, plus the absolute
      >= 2x gate on the 8-CPU cells.
    """
    recorded = {c["cell"]: c for c in baseline["cells"]}
    problems = []
    for cell in doc["cells"]:
        want = recorded.get(cell["cell"])
        if want is not None:
            floor = want["speedup"] * (1.0 - CHECK_TOLERANCE)
            if cell["speedup"] < floor:
                problems.append(
                    f"{cell['cell']}: speedup {cell['speedup']:.2f}x fell below "
                    f"{floor:.2f}x (recorded {want['speedup']:.2f}x - "
                    f"{CHECK_TOLERANCE:.0%})"
                )
            want_soa = want.get("soa_speedup")
            if want_soa is not None:
                floor = want_soa * (1.0 - CHECK_TOLERANCE)
                if cell["soa_speedup"] < floor:
                    problems.append(
                        f"{cell['cell']}: soa speedup {cell['soa_speedup']:.2f}x "
                        f"fell below {floor:.2f}x (recorded {want_soa:.2f}x - "
                        f"{CHECK_TOLERANCE:.0%})"
                    )
        if cell["m"] >= 8 and cell["soa_speedup"] < SOA_GATE:
            problems.append(
                f"{cell['cell']}: soa backend at {cell['soa_speedup']:.2f}x "
                f"reference, below the {SOA_GATE:.1f}x gate"
            )
    return problems


def _print_cells(doc: Dict[str, Any]) -> None:
    for cell in doc["cells"]:
        print(
            f"{cell['cell']:>12}: "
            f"{cell['baseline_events_per_sec']:>11,.0f} ev/s baseline, "
            f"{cell['incremental_events_per_sec']:>11,.0f} ev/s incremental "
            f"({cell['speedup']:.2f}x), "
            f"{cell['soa_events_per_sec']:>11,.0f} ev/s soa "
            f"({cell['soa_speedup']:.2f}x) "
            f"[{cell['level_c_tasks']} level-C tasks, {cell['events']} events]"
        )


def bench_kernel_throughput(benchmark):
    """pytest-benchmark wrapper around one measured comparison."""
    doc = benchmark.pedantic(
        lambda: measure(horizon=3.0, reps=2), rounds=1, iterations=1
    )
    print()
    _print_cells(doc)
    for cell in doc["cells"]:
        benchmark.extra_info[cell["cell"] + "_speedup"] = round(cell["speedup"], 2)
        benchmark.extra_info[cell["cell"] + "_soa_speedup"] = round(
            cell["soa_speedup"], 2
        )
    large = doc["cells"][-1]
    assert large["level_c_tasks"] >= 64
    assert large["speedup"] >= 1.5, "incremental dispatch lost its edge"
    # The strict SOA_GATE is enforced by --check over the full-horizon
    # measurement; the short smoke run here gets the usual noise margin.
    for cell in doc["cells"]:
        if cell["m"] >= 8:
            floor = SOA_GATE * (1.0 - CHECK_TOLERANCE)
            assert cell["soa_speedup"] >= floor, (
                f"{cell['cell']}: soa backend at {cell['soa_speedup']:.2f}x, "
                f"below the smoke floor {floor:.2f}x ({SOA_GATE:.1f}x gate - "
                f"{CHECK_TOLERANCE:.0%})"
            )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="fast CI mode: shorter horizon, fewer repetitions")
    ap.add_argument("--reps", type=int, default=None,
                    help="timed repetitions per cell (default 3; smoke 2)")
    ap.add_argument("--seed", type=int, default=2015)
    ap.add_argument("--out", metavar="FILE",
                    help="write the comparison as JSON to FILE")
    ap.add_argument("--check", metavar="BASELINE",
                    help="fail if any cell's speedup regressed >30%% vs "
                         "BASELINE, or the soa 8-CPU gate is missed")
    args = ap.parse_args(argv)

    reps = args.reps if args.reps is not None else (2 if args.smoke else 3)
    horizon = 3.0 if args.smoke else 10.0
    doc = measure(seed=args.seed, horizon=horizon, reps=reps)

    _print_cells(doc)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = check_against(doc, baseline)
        for p in problems:
            print(f"REGRESSION: {p}")
        if problems:
            return 1
        print(f"speedups within {CHECK_TOLERANCE:.0%} of {args.check}; "
              f"soa gate ({SOA_GATE:.1f}x on 8-CPU cells) held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
