"""Kernel dispatch throughput: incremental vs. baseline dispatcher.

The baseline dispatcher re-sorts the whole level-C pool (and rescans the
A/B pools) at every scheduling point — O(n log n) per event.  The
incremental dispatcher keeps lazy heaps and per-task heads, paying
O(log n) per touched job.  This benchmark times identical runs under
both on growing platforms and reports events/sec plus the speedup
ratio; the two dispatchers' traces are also checked for equality, so a
fast-but-wrong dispatcher cannot "win".

Standalone (CI runs this; artifacts are uploaded)::

    PYTHONPATH=src python benchmarks/bench_kernel_throughput.py \
        --smoke --out kernel-throughput.json \
        --check benchmarks/baseline_kernel_throughput.json

``--check`` compares the measured *speedup ratios* (machine-independent,
unlike raw events/sec) against a recorded baseline and fails if any cell
regressed by more than 30 %.

Also collectable as a pytest benchmark::

    pytest benchmarks/bench_kernel_throughput.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Any, Dict, Tuple

from repro.core.monitor import NullMonitor
from repro.model.behavior import ConstantBehavior
from repro.model.task import CriticalityLevel
from repro.sim.diffcheck import fingerprint
from repro.sim.kernel import KernelConfig, MC2Kernel
from repro.workload.generator import GeneratorParams, generate_taskset

#: Allowed drop in a cell's speedup ratio before --check fails.
CHECK_TOLERANCE = 0.30

#: (name, m, util_range) — both 8-CPU cells land >= 64 level-C tasks
#: (light per-task utilizations pack many tasks into the fixed 65 %
#: level-C share); "large" is where the baseline's per-event sort bites.
CELLS: Tuple[Tuple[str, int, Tuple[float, float]], ...] = (
    ("small-2cpu", 2, (0.1, 0.4)),
    ("medium-8cpu", 8, (0.04, 0.1)),
    ("large-8cpu", 8, (0.01, 0.03)),
)


def _run_once(ts, dispatcher: str, horizon: float):
    kernel = MC2Kernel(
        ts,
        behavior=ConstantBehavior(),
        config=KernelConfig(dispatcher=dispatcher),
    )
    monitor = NullMonitor(kernel)
    kernel.attach_monitor(monitor)
    t0 = time.perf_counter_ns()
    trace = kernel.run(horizon)
    elapsed_ns = time.perf_counter_ns() - t0
    return elapsed_ns, kernel, trace, monitor


def _measure_cell(
    name: str,
    m: int,
    util_range: Tuple[float, float],
    seed: int,
    horizon: float,
    reps: int,
) -> Dict[str, Any]:
    ts = generate_taskset(seed, GeneratorParams(m=m, util_range=util_range))
    n_level_c = sum(1 for t in ts if t.level is CriticalityLevel.C)

    prints = {}
    rates = {}
    for dispatcher in ("baseline", "incremental"):
        _run_once(ts, dispatcher, min(horizon, 0.25))  # warm-up
        best_ns, events = None, 0
        for _ in range(reps):
            elapsed_ns, kernel, trace, monitor = _run_once(ts, dispatcher, horizon)
            if best_ns is None or elapsed_ns < best_ns:
                best_ns = elapsed_ns
            events = kernel.engine.events_processed
        prints[dispatcher] = fingerprint(trace, kernel, monitor)
        rates[dispatcher] = events / (best_ns / 1e9)

    # A fast dispatcher that computes a different schedule is a bug,
    # not a win.
    assert prints["baseline"] == prints["incremental"], (
        f"cell {name}: dispatchers diverged"
    )

    return {
        "cell": name,
        "m": m,
        "util_range": list(util_range),
        "level_c_tasks": n_level_c,
        "tasks": len(ts),
        "horizon": horizon,
        "events": events,
        "baseline_events_per_sec": rates["baseline"],
        "incremental_events_per_sec": rates["incremental"],
        "speedup": rates["incremental"] / rates["baseline"],
    }


def measure(
    seed: int = 2015, horizon: float = 10.0, reps: int = 3
) -> Dict[str, Any]:
    """Time both dispatchers over every cell; return the comparison doc."""
    return {
        "format": "repro-kernel-throughput",
        "version": 1,
        "seed": seed,
        "horizon": horizon,
        "reps": reps,
        "cells": [
            _measure_cell(name, m, util, seed, horizon, reps)
            for name, m, util in CELLS
        ],
    }


def check_against(doc: Dict[str, Any], baseline: Dict[str, Any]) -> list:
    """Speedup-ratio regressions vs. a recorded baseline (empty = pass).

    Ratios of two runs on the same machine cancel the machine's absolute
    speed, so a recorded baseline stays meaningful across CI runners; the
    30 % tolerance absorbs scheduling noise.
    """
    recorded = {c["cell"]: c["speedup"] for c in baseline["cells"]}
    problems = []
    for cell in doc["cells"]:
        want = recorded.get(cell["cell"])
        if want is None:
            continue
        floor = want * (1.0 - CHECK_TOLERANCE)
        if cell["speedup"] < floor:
            problems.append(
                f"{cell['cell']}: speedup {cell['speedup']:.2f}x fell below "
                f"{floor:.2f}x (recorded {want:.2f}x - {CHECK_TOLERANCE:.0%})"
            )
    return problems


def bench_kernel_throughput(benchmark):
    """pytest-benchmark wrapper around one measured comparison."""
    doc = benchmark.pedantic(
        lambda: measure(horizon=2.0, reps=1), rounds=1, iterations=1
    )
    print()
    for cell in doc["cells"]:
        print(
            f"{cell['cell']:>12}: {cell['incremental_events_per_sec']:>12,.0f} ev/s "
            f"incremental, {cell['baseline_events_per_sec']:>12,.0f} ev/s baseline "
            f"({cell['speedup']:.2f}x, {cell['level_c_tasks']} level-C tasks)"
        )
        benchmark.extra_info[cell["cell"] + "_speedup"] = round(cell["speedup"], 2)
    large = doc["cells"][-1]
    assert large["level_c_tasks"] >= 64
    assert large["speedup"] >= 1.5, "incremental dispatch lost its edge"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="fast CI mode: shorter horizon, fewer repetitions")
    ap.add_argument("--reps", type=int, default=None,
                    help="timed repetitions per cell (default 3; smoke 2)")
    ap.add_argument("--seed", type=int, default=2015)
    ap.add_argument("--out", metavar="FILE",
                    help="write the comparison as JSON to FILE")
    ap.add_argument("--check", metavar="BASELINE",
                    help="fail if any cell's speedup regressed >30%% vs BASELINE")
    args = ap.parse_args(argv)

    reps = args.reps if args.reps is not None else (2 if args.smoke else 3)
    horizon = 3.0 if args.smoke else 10.0
    doc = measure(seed=args.seed, horizon=horizon, reps=reps)

    for cell in doc["cells"]:
        print(
            f"{cell['cell']:>12}: {cell['incremental_events_per_sec']:>12,.0f} ev/s "
            f"incremental, {cell['baseline_events_per_sec']:>12,.0f} ev/s baseline "
            f"-> {cell['speedup']:.2f}x "
            f"({cell['level_c_tasks']} level-C tasks, {cell['events']} events)"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = check_against(doc, baseline)
        for p in problems:
            print(f"REGRESSION: {p}")
        if problems:
            return 1
        print(f"speedups within {CHECK_TOLERANCE:.0%} of {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
