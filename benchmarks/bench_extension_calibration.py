"""Extension benchmark: analytical vs. calibrated tolerances.

Tolerances gate overload *detection*: the first recovery episode starts
when the first job misses its tolerance.  Calibrated tolerances (worst
observed normal lateness x margin) are usually much tighter than the
analytical bounds, so detection happens earlier in the overload window —
at the cost of relying on a calibration run instead of a proof.

Reported per variant: detection latency (first episode start, i.e. time
from the overload's start at t = 0 until the monitor reacts) and
dissipation time.
"""

from __future__ import annotations


from repro.core.tolerance import assign_tolerances
from repro.experiments.calibration import calibrate_tolerances
from repro.experiments.runner import MonitorSpec, run_overload_experiment
from repro.util.stats import mean_ci
from repro.workload.generator import GeneratorParams, generate_tasksets
from repro.workload.scenarios import SHORT

SPEC = MonitorSpec("simple", 0.6)

#: A *milder* overload than the paper's 10x: with every CPU saturated,
#: no level-C job completes inside the window and detection is
#: completion-limited rather than tolerance-limited, hiding the effect
#: this benchmark measures.  A 2x overrun degrades responses gradually,
#: so tighter tolerances genuinely detect earlier.
MILD = GeneratorParams(assign_tolerances=False, ratio_b=2.0, ratio_a=4.0)


def bench_extension_calibrated_tolerances(benchmark):
    bases = generate_tasksets(3, base_seed=2015, params=MILD)

    def sweep():
        out = {"analytical": [], "calibrated": []}
        for base in bases:
            variants = {
                "analytical": assign_tolerances(base),
                "calibrated": calibrate_tolerances(base, horizon=3.0, margin=1.5),
            }
            for name, ts in variants.items():
                run = run_overload_experiment(ts, SHORT, SPEC, keep_artifacts=True)
                first = run.monitor.episodes[0].start if run.monitor.episodes else None
                out[name].append((first, run.result))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nTolerance assignment: analytical bound vs calibration "
          "(mild 2x overload, SIMPLE 0.6)")
    print(f"  {'variant':<12}{'detected':>10}{'detection (ms)':>16}")
    detected = {}
    for name, rows in results.items():
        hits = [first for first, _ in rows if first is not None]
        detected[name] = len(hits)
        det = f"{mean_ci(hits).mean * 1e3:14.1f}" if hits else f"{'—':>14}"
        print(f"  {name:<12}{len(hits):>7d}/{len(rows)}{det:>16}")

    # The analytical bounds are loose enough to *absorb* this mild
    # overload entirely — no miss, no recovery — while calibrated
    # tolerances (tight around observed behaviour) flag it immediately.
    # Neither is wrong: the analytical variant proves the degraded
    # responses still lie within its guaranteed envelope, the calibrated
    # variant buys sensitivity at the price of an empirical basis.
    assert detected["calibrated"] == len(bases)
    assert detected["analytical"] < len(bases)
    benchmark.extra_info["detected_calibrated"] = detected["calibrated"]
    benchmark.extra_info["detected_analytical"] = detected["analytical"]
