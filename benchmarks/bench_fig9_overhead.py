"""Benchmark + regeneration of Fig. 9: scheduling overheads.

Times the simulator's scheduler path with the virtual-time mechanism
enabled (SIMPLE under overload) and disabled (plain GEL), reporting
average and maximum per-invocation costs — the simulator analogue of the
paper's Feather-Trace measurement (DESIGN.md, substitution 3).

Reproduced claim: the virtual-time mechanism adds only modest
average-case overhead (the paper saw ~+40 % average, ~2x worst case on
its kernel; our Python scheduler path shows the same order).
"""

from __future__ import annotations


from repro.experiments.overhead import measure_overheads


def bench_fig9_scheduling_overheads(benchmark, tasksets):
    res = benchmark.pedantic(
        lambda: measure_overheads(tasksets[:2], horizon=3.0,
                                  trim_max_quantile=0.999),
        rounds=1, iterations=1,
    )
    print()
    print(res.render())
    # The idle-mechanism variants schedule identical event sequences —
    # that's what makes the comparison apples-to-apples.
    assert res.samples_with_vt == res.samples_without_vt
    # Average-case overhead of the mechanism stays modest (well under 2x;
    # the paper reports ~1.4x on its kernel).
    assert res.avg_ratio < 2.0, f"average overhead ratio {res.avg_ratio:.2f}x"
    # The active-recovery path costs more than the idle mechanism on
    # average (it also runs change_speed bookkeeping).
    assert res.avg_with_vt_active > 0
    benchmark.extra_info["avg_ratio"] = round(res.avg_ratio, 3)
    benchmark.extra_info["max_ratio"] = round(res.max_ratio, 3)
    benchmark.extra_info["avg_with_vt_us"] = round(res.avg_with_vt, 3)
    benchmark.extra_info["avg_without_vt_us"] = round(res.avg_without_vt, 3)
    benchmark.extra_info["avg_active_us"] = round(res.avg_with_vt_active, 3)
