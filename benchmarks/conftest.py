"""Shared benchmark fixtures.

The benchmarks regenerate every figure of the paper's evaluation at a
reduced scale (fewer task sets than the paper's 20) so that
``pytest benchmarks/ --benchmark-only`` completes in minutes.  The
full-scale reproduction — 20 task sets, all parameter values — is run by
``examples/reproduce_paper.py`` and recorded in EXPERIMENTS.md.

Each benchmark prints the regenerated figure's series (run pytest with
``-s`` to see them live); the numbers also land in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.workload.generator import generate_tasksets

#: Number of generated task sets per benchmark (paper: 20).
BENCH_TASKSETS = 3


@pytest.fixture(scope="session")
def tasksets():
    """Paper-methodology task sets (m = 4), shared across benchmarks."""
    return generate_tasksets(BENCH_TASKSETS, base_seed=2015)
