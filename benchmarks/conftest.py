"""Shared benchmark fixtures.

The benchmarks regenerate every figure of the paper's evaluation at a
reduced scale (fewer task sets than the paper's 20) so that
``pytest benchmarks/ --benchmark-only`` completes in minutes.  The
full-scale reproduction — 20 task sets, all parameter values — is run by
``examples/reproduce_paper.py`` and recorded in EXPERIMENTS.md.

Each benchmark prints the regenerated figure's series (run pytest with
``-s`` to see them live); the numbers also land in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.runtime.spec import TaskSetSpec
from repro.workload.generator import generate_tasksets, taskset_seeds

#: Number of generated task sets per benchmark (paper: 20).
BENCH_TASKSETS = 3

#: Shared RNG base seed (the paper's publication year, as everywhere).
BENCH_BASE_SEED = 2015


@pytest.fixture(scope="session")
def tasksets():
    """Paper-methodology task sets (m = 4), shared across benchmarks."""
    return generate_tasksets(BENCH_TASKSETS, base_seed=BENCH_BASE_SEED)


@pytest.fixture(scope="session")
def taskset_specs():
    """The same task sets as seed-carrying specs (worker-reconstructible)."""
    return [TaskSetSpec.generated(seed)
            for seed in taskset_seeds(BENCH_TASKSETS, BENCH_BASE_SEED)]
