"""Extension benchmark: sensitivity to the utilization distribution.

The paper evaluates only Brandenburg's "uniform medium" family
(U(0.1, 0.4)).  This extension regenerates the Fig. 6 headline point
(SHORT, SIMPLE s = 0.6) under light / medium / heavy per-task
utilizations at the same total level-C share (65 % of the system):

* **light** (U(0.001, 0.1)) — many tiny tasks;
* **medium** (U(0.1, 0.4)) — the paper's setting;
* **heavy** (U(0.5, 0.85), capped below the per-CPU availability of
  0.9 so the sets stay schedulable) — few big tasks.

The recovery mechanism must work across the whole family (everything
recovers, tolerances sound); the interesting readout is how dissipation
shifts with task granularity.
"""

from __future__ import annotations


from repro.experiments.runner import MonitorSpec, run_overload_experiment
from repro.model.task import CriticalityLevel as L
from repro.util.stats import mean_ci
from repro.workload.generator import GeneratorParams, generate_tasksets
from repro.workload.scenarios import SHORT

SPEC = MonitorSpec("simple", 0.6)

FAMILIES = {
    "light": GeneratorParams(util_range=(0.001, 0.1)),
    "medium": GeneratorParams(util_range=(0.1, 0.4)),
    "heavy": GeneratorParams(util_range=(0.5, 0.9), level_c_util_cap=0.85),
}


def bench_extension_util_distributions(benchmark):
    def sweep():
        out = {}
        for name, params in FAMILIES.items():
            sets = generate_tasksets(3, base_seed=2015, params=params)
            out[name] = (sets, [run_overload_experiment(ts, SHORT, SPEC)
                                for ts in sets])
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nUtilization-distribution sensitivity (SHORT, SIMPLE s=0.6):")
    print(f"  {'family':<8}{'C tasks':>9}{'dissipation (ms)':>20}")
    for name, (sets, runs) in results.items():
        n_c = mean_ci([len(ts.level(L.C)) for ts in sets])
        d = mean_ci([r.dissipation for r in runs])
        print(f"  {name:<8}{n_c.mean:>9.1f}{d.mean * 1e3:>14.1f} ±{d.half_width * 1e3:4.1f}")
        # The mechanism works across the family.
        assert all(not r.truncated for r in runs), name
        assert all(r.episodes >= 1 for r in runs), name
    # Granularity sanity: light => many more tasks than heavy.
    light_n = sum(len(ts.level(L.C)) for ts in results["light"][0])
    heavy_n = sum(len(ts.level(L.C)) for ts in results["heavy"][0])
    assert light_n > 3 * heavy_n
    for name, (_, runs) in results.items():
        benchmark.extra_info[name + "_ms"] = round(
            mean_ci([r.dissipation for r in runs]).mean * 1e3, 1
        )
