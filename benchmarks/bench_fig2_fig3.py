"""Benchmark + regeneration of the paper's Figs. 2 and 3 (example schedules).

Regenerates all five example schedules — Fig. 2(a)/(b)/(c) and
Fig. 3(a)/(b) plus the recovery variant — and checks the prose waypoints
while timing the simulation of the Fig. 2(c) recovery schedule.
"""

from __future__ import annotations


from repro.experiments.examples_fig2 import (
    figure2_taskset,
    figure3_taskset,
    run_example,
)
from repro.model.task import CriticalityLevel as L


def bench_fig2_recovery_schedule(benchmark):
    """Fig. 2(c): overload at t=12, SIMPLE s=0.5, recovery by t=30."""
    ts = figure2_taskset()

    run = benchmark(lambda: run_example(ts, overloaded=True, recovery_speed=0.5,
                                        until=72.0))
    changes = run.trace.speed_changes
    assert changes[0][1] == 0.5 and changes[-1][1] == 1.0
    j26 = run.trace.job(2, 6)
    print("\nFig. 2 regeneration (see also examples/figure2_walkthrough.py)")
    print(f"  slowdown at t={changes[0][0]:g} (paper: 19), "
          f"recovery at t={changes[-1][0]:g} (paper: 29)")
    print(f"  tau2,6: released {j26.release:g}, completes {j26.completion:g}, "
          f"R={j26.response_time:g} (paper: 41/47/6)")
    benchmark.extra_info["slowdown_at"] = changes[0][0]
    benchmark.extra_info["recovery_at"] = changes[-1][0]


def bench_fig2_overload_degradation(benchmark):
    """Fig. 2(b): permanent degradation without recovery."""
    ts = figure2_taskset()
    run = benchmark(lambda: run_example(ts, overloaded=True, until=72.0))
    j26 = run.trace.job(2, 6)
    assert j26.response_time > 7.0
    print(f"\nFig. 2(b): tau2,6 R={j26.response_time:g} (no-overload R=7; paper: 10)")


def bench_fig3_per_task_bottleneck(benchmark):
    """Fig. 3(b): a single task with zero per-task slack cannot recover."""
    ts = figure3_taskset()
    run = benchmark(lambda: run_example(ts, overloaded=True, until=240.0))
    tail = [j for j in run.trace.completed(L.C) if j.release > 120.0]
    lat = [j.completion - (j.release + 5.0) for j in tail]
    assert min(lat) > 3.0  # permanently above the normal-mode pattern
    print(f"\nFig. 3(b): tail lateness stays in [{min(lat):g}, {max(lat):g}] "
          "(normal pattern peaks at 3)")


def bench_fig3_recovery(benchmark):
    """Fig. 3 + Sec. 3 recovery: virtual time restores normal behavior."""
    ts = figure3_taskset()
    run = benchmark(lambda: run_example(ts, overloaded=True, recovery_speed=0.5,
                                        until=240.0))
    assert len(run.monitor.episodes) == 1
    tail = [j for j in run.trace.completed(L.C) if j.release > 120.0]
    lat = [j.completion - (j.release + 5.0) for j in tail]
    assert max(lat) <= 3.0
    print(f"\nFig. 3 recovery: episode {run.monitor.episodes[0]}, "
          f"tail lateness back to <= 3")
