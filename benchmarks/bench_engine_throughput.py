"""Simulator micro-benchmarks: raw event throughput and analysis cost.

Not a paper figure — these track the substrate's own performance so
regressions in the kernel/engine hot path are visible.
"""

from __future__ import annotations


from repro.analysis.bounds import gel_response_bounds
from repro.model.behavior import ConstantBehavior
from repro.sim.kernel import MC2Kernel
from repro.workload.generator import generate_taskset


def bench_kernel_event_throughput(benchmark, tasksets):
    """Events/second through the full MC² kernel on a paper workload."""
    ts = tasksets[0]

    def run():
        kernel = MC2Kernel(ts, behavior=ConstantBehavior())
        kernel.run(2.0)
        return kernel.engine.events_processed

    events = benchmark(run)
    assert events > 1000
    benchmark.extra_info["events"] = events


def bench_taskset_generation(benchmark):
    """Sec. 5 generator cost (includes the tolerance analysis)."""
    seeds = iter(range(10_000))
    ts = benchmark(lambda: generate_taskset(next(seeds)))
    assert len(ts) > 10


def bench_response_bounds(benchmark, tasksets):
    """The GEL bound computation on a paper-scale task set."""
    ts = tasksets[0]
    res = benchmark(lambda: gel_response_bounds(ts))
    assert res.is_finite
