"""Tracing + telemetry overhead: the observability zero/low-cost gates.

The observability layer's zero-cost-when-disabled claim is a measurable
property: with the default :class:`~repro.obs.tracer.NullTracer`, a run
must cost the same as before the layer existed (producers check one
``tracer.enabled`` bool per potential event), while the streaming
:class:`~repro.obs.tracer.JsonlTracer` pays JSON serialization per
event.  This benchmark times identical overload runs under both and
reports the ratio.

It also gates **kernel phase profiling**
(:func:`repro.obs.telemetry.enable_phase_profiling`, the hot part of
campaign telemetry): profiling-on runs are interleaved with
profiling-off runs on the same task set and compared min-to-min, the
results are asserted identical (telemetry is observation only), and
``--check`` fails the process unless the overhead ratio is ≤ 1.02 —
the ≤2% budget counts ride on existing loop variables and 1-in-128
wall-clock sampling were designed to meet.

Standalone (CI runs this; artifacts are uploaded)::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py \
        --smoke --check --out trace-overhead.json --trace-out sample-trace.jsonl

Also collectable as a pytest benchmark::

    pytest benchmarks/bench_trace_overhead.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import tempfile
import time
from typing import Any, Dict, Optional

from repro.experiments.runner import run_overload_experiment
from repro.obs.tracer import JsonlTracer
from repro.runtime.spec import MonitorSpec
from repro.workload.generator import generate_taskset
from repro.workload.scenarios import SHORT


def _run_once(ts, tracer=None, horizon: float = 5.0):
    return run_overload_experiment(
        ts, SHORT, MonitorSpec("simple", 0.6), horizon=horizon, tracer=tracer
    )


def _time_runs(ts, reps: int, make_tracer, horizon: float):
    """Wall-clock ns per run; tracers are created/closed inside the timing
    (that's part of the cost a traced sweep cell pays)."""
    samples = []
    for _ in range(reps):
        tracer = make_tracer()
        t0 = time.perf_counter_ns()
        result = _run_once(ts, tracer=tracer, horizon=horizon)
        samples.append(time.perf_counter_ns() - t0)
        if tracer is not None:
            tracer.close()
    return samples, result


def measure(
    reps: int = 5,
    seed: int = 2015,
    horizon: float = 5.0,
    trace_out: Optional[str] = None,
) -> Dict[str, Any]:
    """Compare NullTracer vs. JsonlTracer wall-clock on identical runs."""
    ts = generate_taskset(seed)
    _run_once(ts, horizon=horizon)  # warm-up (imports, allocator)

    null_ns, null_result = _time_runs(ts, reps, lambda: None, horizon)

    trace_path = trace_out or os.path.join(
        tempfile.mkdtemp(prefix="repro-trace-bench-"), "sample-trace.jsonl"
    )

    def make_jsonl():
        return JsonlTracer(trace_path, meta={"scenario": SHORT.name,
                                             "benchmark": "trace_overhead"})

    jsonl_ns, jsonl_result = _time_runs(ts, reps, make_jsonl, horizon)
    with open(trace_path, "r", encoding="utf-8") as fh:
        trace_events = sum(1 for _ in fh)

    # Tracing must not change the simulation.
    assert jsonl_result == null_result, "tracing changed the RunResult"

    def stats(xs):
        return {
            "mean_ms": statistics.mean(xs) / 1e6,
            "min_ms": min(xs) / 1e6,
            "max_ms": max(xs) / 1e6,
        }

    return {
        "format": "repro-trace-overhead",
        "version": 1,
        "reps": reps,
        "seed": seed,
        "horizon": horizon,
        "null_tracer": stats(null_ns),
        "jsonl_tracer": stats(jsonl_ns),
        "overhead_ratio": statistics.mean(jsonl_ns) / statistics.mean(null_ns),
        "trace_path": trace_path,
        "trace_events": trace_events,
        "events_processed": null_result.events,
    }


#: Telemetry-on wall-clock budget relative to telemetry-off (the ≤2% gate).
PHASE_OVERHEAD_BUDGET = 1.02


def measure_phase_overhead(
    reps: int = 7, seed: int = 2015, horizon: float = 5.0
) -> Dict[str, Any]:
    """Phase profiling off vs. on, interleaved, min-to-min.

    Interleaving the two variants cancels machine drift (thermal,
    background load) and comparing minima discards scheduler noise —
    the minimum is the run least perturbed by the OS, which is what the
    instrumentation cost should be judged against.  Also proves
    result-neutrality: every profiled run must produce a
    :class:`~repro.experiments.metrics.RunResult` equal to the
    unprofiled one.
    """
    from repro.obs.telemetry import PHASE_PROFILER, enable_phase_profiling

    ts = generate_taskset(seed)
    enable_phase_profiling(True)
    _run_once(ts, horizon=horizon)  # warm-up both code paths
    enable_phase_profiling(False)
    _run_once(ts, horizon=horizon)

    off_ns, on_ns = [], []
    off_result = on_result = None
    PHASE_PROFILER.reset()
    try:
        for _ in range(reps):
            enable_phase_profiling(False)
            t0 = time.perf_counter_ns()
            off_result = _run_once(ts, horizon=horizon)
            off_ns.append(time.perf_counter_ns() - t0)
            enable_phase_profiling(True)
            t0 = time.perf_counter_ns()
            on_result = _run_once(ts, horizon=horizon)
            on_ns.append(time.perf_counter_ns() - t0)
    finally:
        enable_phase_profiling(False)

    # Telemetry is observation only: identical results either way.
    assert on_result == off_result, "phase profiling changed the RunResult"

    phases = PHASE_PROFILER.snapshot()
    PHASE_PROFILER.reset()
    return {
        "format": "repro-phase-overhead",
        "version": 1,
        "reps": reps,
        "seed": seed,
        "horizon": horizon,
        "off_min_ms": min(off_ns) / 1e6,
        "on_min_ms": min(on_ns) / 1e6,
        "overhead_ratio": min(on_ns) / min(off_ns),
        "budget_ratio": PHASE_OVERHEAD_BUDGET,
        "events_processed": off_result.events,
        "phases": phases,
    }


def bench_trace_overhead(benchmark):
    """pytest-benchmark wrapper around one measured comparison."""
    doc = benchmark.pedantic(lambda: measure(reps=3), rounds=1, iterations=1)
    print()
    print(json.dumps({k: doc[k] for k in
                      ("null_tracer", "jsonl_tracer", "overhead_ratio")}, indent=2))
    benchmark.extra_info["overhead_ratio"] = round(doc["overhead_ratio"], 3)
    # Streaming JSON per event costs real time, but stays within an order
    # of magnitude of the untraced run on this workload.
    assert doc["overhead_ratio"] < 10.0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="fast CI mode: fewer repetitions, shorter horizon")
    ap.add_argument("--reps", type=int, default=None,
                    help="timed repetitions per variant (default 5; smoke 3)")
    ap.add_argument("--seed", type=int, default=2015)
    ap.add_argument("--out", metavar="FILE",
                    help="write the comparison as JSON to FILE")
    ap.add_argument("--trace-out", metavar="FILE",
                    help="keep the sample JSONL trace at FILE")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero if telemetry (phase profiling) "
                         f"overhead exceeds {PHASE_OVERHEAD_BUDGET:.2f}x")
    args = ap.parse_args(argv)

    reps = args.reps if args.reps is not None else (3 if args.smoke else 5)
    horizon = 2.0 if args.smoke else 5.0
    doc = measure(reps=reps, seed=args.seed, horizon=horizon,
                  trace_out=args.trace_out)
    phase_doc = measure_phase_overhead(
        reps=max(reps, 5), seed=args.seed, horizon=horizon
    )
    doc["phase_profiling"] = phase_doc

    print(f"null tracer : {doc['null_tracer']['mean_ms']:8.1f} ms/run")
    print(f"jsonl tracer: {doc['jsonl_tracer']['mean_ms']:8.1f} ms/run "
          f"({doc['trace_events']} events -> {doc['trace_path']})")
    print(f"overhead    : {doc['overhead_ratio']:.2f}x")
    print(f"phase off   : {phase_doc['off_min_ms']:8.1f} ms/run (min)")
    print(f"phase on    : {phase_doc['on_min_ms']:8.1f} ms/run (min)")
    print(f"telemetry   : {phase_doc['overhead_ratio']:.3f}x "
          f"(budget {PHASE_OVERHEAD_BUDGET:.2f}x)")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check and phase_doc["overhead_ratio"] > PHASE_OVERHEAD_BUDGET:
        print(f"FAIL: telemetry overhead {phase_doc['overhead_ratio']:.3f}x "
              f"exceeds the {PHASE_OVERHEAD_BUDGET:.2f}x budget")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
