"""Extension benchmark: the paper's monitors vs. our follow-up policies.

Compares, on the shared task sets under SHORT:

* SIMPLE(0.6)        — the paper's recommended configuration;
* ADAPTIVE(0.6)      — faster dissipation, drastic throttling (Sec. 5);
* CLAMPED(0.6, 0.3)  — ADAPTIVE with a floor: bounded throttling;
* STEPPED(0.2, x2)   — aggressive slowdown with gradual restoration.

Reported: dissipation time and minimum virtual speed.  The interesting
cell is CLAMPED: dissipation close to ADAPTIVE's while the release
throttle never drops below the floor — addressing the paper's stated
objection to ADAPTIVE ("jobs are released at a drastically lower
frequency during the recovery period").
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import MonitorSpec, run_overload_experiment
from repro.util.stats import mean_ci
from repro.workload.scenarios import SHORT

POLICIES = (
    MonitorSpec("simple", 0.6),
    MonitorSpec("adaptive", 0.6),
    MonitorSpec("clamped", 0.6, 0.3),
    MonitorSpec("stepped", 0.2, 2.0),
)


def bench_extension_policies(benchmark, tasksets):
    def sweep():
        out = {}
        for spec in POLICIES:
            out[spec.label] = [
                run_overload_experiment(ts, SHORT, spec) for ts in tasksets
            ]
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nExtension policies under SHORT (mean over task sets):")
    print(f"  {'policy':<22}{'dissipation (ms)':>18}{'min speed':>12}")
    stats = {}
    for label, runs in results.items():
        d = mean_ci([r.dissipation for r in runs])
        s = mean_ci([r.min_speed for r in runs])
        stats[label] = (d.mean, s.mean)
        print(f"  {label:<22}{d.mean * 1e3:>12.1f} ±{d.half_width * 1e3:4.1f}"
              f"{s.mean:>12.3f}")
        assert all(not r.truncated for r in runs)

    simple_d, _ = stats["SIMPLE(s=0.6)"]
    adaptive_d, adaptive_s = stats["ADAPTIVE(a=0.6)"]
    clamped_d, clamped_s = stats["CLAMPED(a=0.6,>=0.3)"]
    stepped_d, stepped_s = stats["STEPPED(s=0.2,x2)"]

    # ADAPTIVE beats SIMPLE on dissipation but throttles far harder.
    assert adaptive_d < simple_d
    assert adaptive_s < 0.3
    # CLAMPED keeps the floor while staying well below SIMPLE's dissipation.
    assert clamped_s >= 0.3 - 1e-9
    assert clamped_d < simple_d
    # STEPPED restores gradually: min speed is its s, dissipation at most
    # modestly above plain SIMPLE(0.2)'s (checked loosely vs SIMPLE 0.6).
    assert stepped_s == pytest.approx(0.2)
    assert stepped_d < simple_d
    for label, (d, s) in stats.items():
        benchmark.extra_info[label] = {"dissipation_ms": round(d * 1e3, 1),
                                       "min_speed": round(s, 3)}
