"""Benchmark + regeneration of Fig. 8: minimum s(t) chosen by ADAPTIVE.

Asserts the paper's shape claims:

* the minimum chosen speed grows with the aggressiveness a;
* under LONG the minimum speed is about half of SHORT's (response times
  roughly double with a doubled overload, and s = a (Y+xi)/R);
* SHORT and DOUBLE choose nearly identical minimum speeds (recovery
  usually completes before DOUBLE's second window, whose length equals
  SHORT's).
"""

from __future__ import annotations


from repro.experiments.figures import (
    DEFAULT_SWEEP_VALUES,
    adaptive_sweep,
    figure8,
)
from repro.workload.scenarios import standard_scenarios


def bench_fig8_min_speed_adaptive(benchmark, tasksets):
    sweep = benchmark.pedantic(
        lambda: adaptive_sweep(tasksets, a_values=DEFAULT_SWEEP_VALUES,
                               scenarios=standard_scenarios()),
        rounds=1, iterations=1,
    )
    fig = figure8(sweep)
    print()
    print(fig.render(unit_scale=1.0, unit="speed"))

    # Shape: monotone in a for every scenario.
    for label in ("SHORT", "LONG", "DOUBLE"):
        means = [fig.point(label, a).ci.mean for a in DEFAULT_SWEEP_VALUES]
        assert all(x <= y + 1e-9 for x, y in zip(means, means[1:]))
        assert all(0.0 < v < 1.0 for v in means)

    # Shape: LONG's minimum speed about half of SHORT's.
    for a in DEFAULT_SWEEP_VALUES:
        ratio = fig.point("LONG", a).ci.mean / fig.point("SHORT", a).ci.mean
        assert 0.3 <= ratio <= 0.8, f"LONG/SHORT min-speed ratio at a={a}: {ratio:.2f}"

    # Shape: SHORT ~ DOUBLE.
    for a in DEFAULT_SWEEP_VALUES:
        ratio = fig.point("DOUBLE", a).ci.mean / fig.point("SHORT", a).ci.mean
        assert 0.6 <= ratio <= 1.4, f"DOUBLE/SHORT min-speed ratio at a={a}: {ratio:.2f}"

    for series in fig.series:
        for p in series.points:
            benchmark.extra_info[f"{series.label}@{p.x:g}"] = round(p.ci.mean, 4)
