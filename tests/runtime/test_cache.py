"""Tests for the content-addressed result cache (repro.runtime.cache)."""

import json
import os

import pytest

from repro.experiments.metrics import RunResult
from repro.runtime.cache import ResultCache, default_cache_dir


def result(dissipation=0.5) -> RunResult:
    return RunResult(
        scenario="SHORT",
        monitor="SIMPLE(s=0.6)",
        dissipation=dissipation,
        truncated=False,
        min_speed=0.6,
        miss_count=10,
        episodes=1,
        max_response_c=0.1,
        sim_end=2.0,
        events=1234,
    )


KEY = "ab" + "0" * 62


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(KEY) is None
        assert KEY not in cache
        assert len(cache) == 0

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec_doc = {"spec": "doc"}
        key = ResultCache._spec_address(spec_doc)
        cache.put(key, spec_doc, result())
        assert key in cache
        assert len(cache) == 1
        assert cache.get(key) == result()

    def test_entries_sharded_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, result())
        assert (tmp_path / KEY[:2] / f"{KEY}.json").is_file()

    def test_entry_carries_spec_for_audit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"seed": 2015}, result())
        doc = json.loads((tmp_path / KEY[:2] / f"{KEY}.json").read_text())
        assert doc["spec"] == {"seed": 2015}
        assert doc["key"] == KEY

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, result())
        (tmp_path / KEY[:2] / f"{KEY}.json").write_text("{not json", encoding="utf-8")
        assert cache.get(KEY) is None

    def test_truncated_result_doc_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, result())
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        doc = json.loads(path.read_text())
        del doc["result"]["dissipation"]
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert cache.get(KEY) is None

    def test_wrong_format_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, result())
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        doc = json.loads(path.read_text())
        doc["format"] = "other"
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert cache.get(KEY) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" + "0" * 62, {}, result())
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_default_dir_used_when_unset(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        cache = ResultCache()
        assert cache.directory == tmp_path / "repro-mc2"
        assert default_cache_dir() == tmp_path / "repro-mc2"


class TestContentAddressChecks:
    """Read-back re-verifies the content address; a mismatch is a warned miss."""

    def test_tampered_result_reads_as_miss_with_warning(self, tmp_path, capsys):
        """A bit-flip in the stored result is caught by the result digest."""
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, result(dissipation=0.5))
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        doc = json.loads(path.read_text())
        doc["result"]["dissipation"] = 0.9  # silent corruption, still valid JSON
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert cache.get(KEY) is None
        err = capsys.readouterr().err
        assert "content-address check" in err
        assert "result digest mismatch" in err

    def test_transplanted_entry_reads_as_miss(self, tmp_path, capsys):
        """An entry copied under another key fails the recorded-key check."""
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, result())
        other = "cd" + "0" * 62
        src = tmp_path / KEY[:2] / f"{KEY}.json"
        dst = tmp_path / other[:2] / f"{other}.json"
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_text(src.read_text(), encoding="utf-8")
        assert cache.get(other) is None
        assert "recorded key" in capsys.readouterr().err
        # The original entry is untouched and still hits.
        assert cache.get(KEY) == result()

    def test_tampered_spec_reads_as_miss(self, tmp_path, capsys):
        """A stored spec that no longer hashes to the key is rejected."""
        cache = ResultCache(tmp_path)
        spec_doc = {"seed": 7, "scenario": "SHORT"}
        key = ResultCache._spec_address(spec_doc)
        cache.put(key, spec_doc, result())
        path = tmp_path / key[:2] / f"{key}.json"
        doc = json.loads(path.read_text())
        doc["spec"]["seed"] = 8
        # Keep the result digest honest so only the spec check can fire.
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert cache.get(key) is None
        assert "spec re-hashes to" in capsys.readouterr().err

    def test_spec_address_ignores_obs_block(self):
        """Observability settings never split cache entries."""
        base = {"seed": 7, "scenario": "SHORT"}
        with_obs = dict(base, obs={"telemetry": True})
        assert ResultCache._spec_address(base) == ResultCache._spec_address(with_obs)

    def test_legacy_entry_without_result_digest_still_hits(self, tmp_path):
        """Entries written before result_sha256 existed stay readable."""
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, result())
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        doc = json.loads(path.read_text())
        del doc["result_sha256"]
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert cache.get(KEY) == result()


class TestCrashSafety:
    """Writes are atomic: a crash at any point never corrupts the cache."""

    def test_crash_before_replace_leaves_entry_absent(self, tmp_path, monkeypatch):
        """Simulate kill -9 between the temp-file write and os.replace."""
        cache = ResultCache(tmp_path)

        def crash(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr("repro.util.atomicio.os.replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            cache.put(KEY, {}, result())
        monkeypatch.undo()
        # The interrupted write is a miss, never an error or a torn read.
        assert cache.get(KEY) is None
        assert KEY not in cache
        # And the cache remains fully usable afterwards.
        cache.put(KEY, {}, result())
        assert cache.get(KEY) == result()

    def test_stray_tmp_files_invisible_to_reads_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, result())
        # A crashed writer's leftover, next to a good entry.
        stray = tmp_path / KEY[:2] / f"{KEY}.json.1234.tmp"
        stray.write_text('{"format": "repro-runcache", "partial', encoding="utf-8")
        assert len(cache) == 1
        assert cache.get(KEY) == result()

    def test_concurrent_overwrite_is_last_writer_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, result(dissipation=1.0))
        cache.put(KEY, {}, result(dissipation=2.0))
        assert cache.get(KEY) == result(dissipation=2.0)
        assert len(cache) == 1


class TestEviction:
    def _age(self, cache, key, age_seconds):
        path = cache._path(key)
        stamp = os.path.getmtime(path) - age_seconds
        os.utime(path, (stamp, stamp))

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [f"{i:02d}" + "f" * 62 for i in range(4)]
        for i, key in enumerate(keys):
            cache.put(key, {}, result(dissipation=float(i)))
            self._age(cache, key, age_seconds=100 - i)  # keys[0] oldest
        assert cache.prune(2) == 2
        assert keys[0] not in cache and keys[1] not in cache
        assert keys[2] in cache and keys[3] in cache

    def test_prune_noop_under_cap(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {}, result())
        assert cache.prune(5) == 0
        assert KEY in cache

    def test_max_entries_enforced_on_put(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        keys = [f"{i:02d}" + "e" * 62 for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, {}, result())
            self._age(cache, key, age_seconds=50 - i)
        cache.put("ff" + "e" * 62, {}, result())
        assert len(cache) == 2

    def test_max_entries_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)
