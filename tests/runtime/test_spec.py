"""Tests for RunSpec and its canonical serialization / hashing."""

import hashlib
import json

import pytest

from repro.io.runspec_json import (
    runspec_canonical_json,
    runspec_from_dict,
    runspec_from_json,
    runspec_to_dict,
    spec_key,
)
from repro.runtime.spec import (
    KernelSpec,
    MonitorSpec,
    RunSpec,
    ScenarioSpec,
    TaskSetSpec,
)
from repro.sim.kernel import KernelConfig
from repro.workload.generator import GeneratorParams, generate_taskset
from repro.workload.scenarios import DOUBLE, SHORT


def make_spec(**overrides) -> RunSpec:
    base = dict(
        taskset=TaskSetSpec.generated(2015, GeneratorParams(m=2)),
        scenario=ScenarioSpec.from_scenario(SHORT),
        monitor=MonitorSpec("simple", 0.6),
    )
    base.update(overrides)
    return RunSpec(**base)


class TestTaskSetSpec:
    def test_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            TaskSetSpec()
        with pytest.raises(ValueError):
            TaskSetSpec(seed=1, inline="{}")
        with pytest.raises(ValueError):
            TaskSetSpec(inline="{}", params=GeneratorParams())

    def test_generated_materializes_deterministically(self):
        ref = TaskSetSpec.generated(7, GeneratorParams(m=2))
        a, b = ref.materialize(), ref.materialize()
        assert len(a) == len(b)
        assert [t.period for t in a] == [t.period for t in b]

    def test_inline_round_trip(self):
        ts = generate_taskset(11, GeneratorParams(m=2))
        ref = TaskSetSpec.from_taskset(ts)
        back = ref.materialize()
        assert len(back) == len(ts)
        assert back.m == ts.m

    def test_labels(self):
        assert TaskSetSpec.generated(9).label == "seed:9"
        ts = generate_taskset(9, GeneratorParams(m=2))
        assert "inline" in TaskSetSpec.from_taskset(ts).label


class TestScenarioSpec:
    def test_round_trip(self):
        spec = ScenarioSpec.from_scenario(DOUBLE)
        sc = spec.build()
        assert sc.name == "DOUBLE"
        assert [(w.start, w.end) for w in sc.windows] == [(0.0, 0.5), (1.5, 2.0)]
        assert sc.overload_level.name == "B"

    def test_empty_windows_allowed(self):
        """Window-less scenarios (CALM) are valid: open-system runs get
        their overload from traffic, not scripted windows."""
        spec = ScenarioSpec(name="CALM", windows=())
        sc = spec.build()
        assert sc.windows == ()
        assert sc.last_overload_end == 0.0


class TestKernelSpec:
    def test_config_round_trip(self):
        cfg = KernelConfig(use_virtual_time=False, monitor_latency=0.25)
        spec = KernelSpec.from_config(cfg)
        back = spec.to_config()
        assert back.use_virtual_time is False
        assert back.monitor_latency == 0.25

    def test_release_delay_rejected(self):
        cfg = KernelConfig(release_delay=lambda task, k: 0.0)
        with pytest.raises(ValueError, match="release_delay"):
            KernelSpec.from_config(cfg)


class TestRunSpecValidation:
    def test_horizon_positive(self):
        with pytest.raises(ValueError):
            make_spec(horizon=0.0)

    def test_confirm_window_nonnegative(self):
        with pytest.raises(ValueError):
            make_spec(confirm_window=-1.0)

    def test_hashable_and_usable_as_dict_key(self):
        d = {make_spec(): 1}
        assert d[make_spec()] == 1


class TestCanonicalJson:
    def test_equal_specs_equal_keys(self):
        assert spec_key(make_spec()) == spec_key(make_spec())

    def test_key_is_sha256_of_canonical_json(self):
        spec = make_spec()
        expected = hashlib.sha256(
            runspec_canonical_json(spec).encode("utf-8")
        ).hexdigest()
        assert spec.key() == expected
        assert spec.canonical_json() == runspec_canonical_json(spec)

    def test_field_order_does_not_matter(self):
        # Keyword order at construction cannot leak into the canonical text.
        a = RunSpec(
            taskset=TaskSetSpec.generated(1),
            scenario=ScenarioSpec.from_scenario(SHORT),
            monitor=MonitorSpec("simple", 0.6),
            horizon=30.0,
        )
        b = RunSpec(
            horizon=30.0,
            monitor=MonitorSpec("simple", 0.6),
            scenario=ScenarioSpec.from_scenario(SHORT),
            taskset=TaskSetSpec.generated(1),
        )
        assert runspec_canonical_json(a) == runspec_canonical_json(b)

    def test_canonical_text_has_sorted_keys_and_no_spaces(self):
        text = runspec_canonical_json(make_spec())
        assert ": " not in text and ", " not in text
        doc = json.loads(text)
        assert list(doc) == sorted(doc)

    def test_float_formatting_is_shortest_repr(self):
        # 0.6 must serialize as the literal shortest repr, stable across
        # runs and platforms (it is the cache key's raw material).
        text = runspec_canonical_json(make_spec(monitor=MonitorSpec("simple", 0.6)))
        assert '"param":0.6' in text

    def test_distinct_floats_distinct_keys(self):
        near = 0.6 + 1e-15  # a genuinely different float
        assert near != 0.6
        a = make_spec(monitor=MonitorSpec("simple", 0.6))
        b = make_spec(monitor=MonitorSpec("simple", near))
        assert spec_key(a) != spec_key(b)

    def test_any_field_change_changes_key(self):
        base = make_spec()
        variants = [
            make_spec(taskset=TaskSetSpec.generated(2016, GeneratorParams(m=2))),
            make_spec(scenario=ScenarioSpec.from_scenario(DOUBLE)),
            make_spec(monitor=MonitorSpec("adaptive", 0.6)),
            make_spec(horizon=31.0),
            make_spec(level_c_budgets=False),
            make_spec(kernel=KernelSpec(monitor_latency=0.001)),
        ]
        keys = {spec_key(v) for v in variants}
        assert spec_key(base) not in keys
        assert len(keys) == len(variants)

    def test_dict_round_trip(self):
        spec = make_spec(
            monitor=MonitorSpec("clamped", 0.6, 0.3),
            scenario=ScenarioSpec.from_scenario(DOUBLE),
        )
        assert runspec_from_dict(runspec_to_dict(spec)) == spec
        assert runspec_from_json(spec.canonical_json()) == spec

    def test_inline_taskset_round_trip(self):
        ts = generate_taskset(5, GeneratorParams(m=2))
        spec = make_spec(taskset=TaskSetSpec.from_taskset(ts))
        back = runspec_from_dict(runspec_to_dict(spec))
        assert back == spec
        assert spec_key(back) == spec_key(spec)

    def test_bad_header_rejected(self):
        doc = runspec_to_dict(make_spec())
        doc["format"] = "something-else"
        with pytest.raises(ValueError, match="format"):
            runspec_from_dict(doc)
        doc2 = runspec_to_dict(make_spec())
        doc2["version"] = 99
        with pytest.raises(ValueError, match="version"):
            runspec_from_dict(doc2)
